(** The design service's line protocol.

    Requests are single lines.  Lines starting with [@] are session
    control; anything else is a designer command executed by
    {!Designer.Engine} against the connection's open variant:

    {v
    @list                 list the variants (sorted): name, lineage
                          ([parent@stamp] or [root]), era — one line each
    @branch V W [@at STAMP]
                          fork variant W off V (lineage recorded); @at
                          forks after V's first STAMP operations
    @merge W into V [--dry-run]
                          rebase W's ops past the fork point onto V;
                          per-op clean/auto-merged/conflict report;
                          --dry-run reports without writing
    @open <variant>       attach to a variant (shared session)
    @open <variant> readonly
                          attach without write access: mutating commands
                          are refused with [!readonly]
    @new <variant>        create a variant, then attach
    @close                detach; last detach snapshots the session
    @ping                 liveness probe
    @stats [json]         observability snapshot (text, or JSON with [json])
    @query <expr>         read-side query over materialized views (see
                          {!Query.Parser}; [@query all ...] spans variants)
    @quit                 close the connection
    focus ww:Person       ... any designer command line ...
    v}

    Every request yields one response: zero or more body lines, each
    prefixed [". "] so arbitrary command output (schemas, reports) can
    never be mistaken for a status, then an optional [#version <n>] meta
    line (the variant's publication stamp, monotone per variant), then
    exactly one status line:

    {v
    !ok                   accepted; mutations are durable on disk
    !err <message>        rejected (parse error, read-only variant, ...)
    !readonly <message>   refused: the connection attached readonly
    !busy <reason>        shed by backpressure, followed by
    !retry-after <ms>     ... when to come back
    v}

    [!busy] is always immediately followed by its [!retry-after] line;
    clients treat [!retry-after] as the terminator. *)

(* --- transport addresses -------------------------------------------------- *)

type address = Unix_path of string | Tcp of string * int

(* A string with a '/' is always a filesystem path; otherwise [host:port]
   with a numeric port is TCP.  This keeps every pre-TCP invocation
   ([swsd serve DIR --socket /run/swsd.sock], [swsd stats sock]) parsing
   exactly as before: relative socket paths without slashes are unusual,
   and can always be written as [./name.sock]. *)
let parse_address s =
  let s = String.trim s in
  if s = "" then Result.Error "empty address"
  else if String.contains s '/' then Result.Ok (Unix_path s)
  else
    match String.rindex_opt s ':' with
    | Some i when i > 0 && i < String.length s - 1 -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p <= 0xffff -> Result.Ok (Tcp (host, p))
        | Some _ -> Result.Error (s ^ ": port out of range")
        | None -> Result.Ok (Unix_path s))
    | _ -> Result.Ok (Unix_path s)

let address_to_string = function
  | Unix_path p -> p
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

type request =
  | List
  | Open of { variant : string; readonly : bool }
  | New of string
  | Close
  | Ping
  | Stats of [ `Text | `Json ]
  | Query of string
      (** a read-side query (the text after [@query], verbatim; parsed by
          {!Query.Parser} — scope and plan live in the query language) *)
  | Branch of { parent : string; child : string; at : int option }
      (** [@branch V W [@at STAMP]]: fork variant [W] off [V], recording
          lineage; [at] forks after V's first [at] operations *)
  | Merge of { source : string; dest : string; dry_run : bool }
      (** [@merge W into V [--dry-run]]: rebase W's ops past the fork point
          onto V and report clean/auto-merged/conflict per op; [--dry-run]
          reports without writing *)
  | Quit
  | Command of string  (** a designer command line, verbatim *)

type status =
  | Ok
  | Err of string
  | Readonly of string
  | Busy of { reason : string; retry_after_ms : int }

type response = { body : string list; status : status; version : int option }

let ok ?version body = { body; status = Ok; version }
let err ?(body = []) ?version message = { body; status = Err message; version }
let readonly message = { body = []; status = Readonly message; version = None }

let busy ?(body = []) ~retry_after_ms reason =
  { body; status = Busy { reason; retry_after_ms }; version = None }

let parse_request line =
  let line = String.trim line in
  let word, rest =
    match String.index_opt line ' ' with
    | None -> (line, "")
    | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
  in
  match (word, rest) with
  | "@list", "" -> Result.Ok List
  | "@open", v when v <> "" -> (
      match String.split_on_char ' ' v with
      | [ variant ] -> Result.Ok (Open { variant; readonly = false })
      | [ variant; "readonly" ] -> Result.Ok (Open { variant; readonly = true })
      | _ -> Result.Error "usage: @open <variant> [readonly]")
  | "@new", v when v <> "" -> Result.Ok (New v)
  | "@close", "" -> Result.Ok Close
  | "@ping", "" -> Result.Ok Ping
  | "@stats", "" -> Result.Ok (Stats `Text)
  | "@stats", "json" -> Result.Ok (Stats `Json)
  | "@query", q when q <> "" -> Result.Ok (Query q)
  | "@branch", v -> (
      match String.split_on_char ' ' v |> List.filter (fun s -> s <> "") with
      | [ parent; child ] -> Result.Ok (Branch { parent; child; at = None })
      | [ parent; child; "@at"; stamp ] -> (
          match int_of_string_opt stamp with
          | Some at when at >= 0 ->
              Result.Ok (Branch { parent; child; at = Some at })
          | _ -> Result.Error ("@branch: bad stamp " ^ stamp))
      | _ -> Result.Error "usage: @branch <parent> <child> [@at STAMP]")
  | "@merge", v -> (
      match String.split_on_char ' ' v |> List.filter (fun s -> s <> "") with
      | [ source; "into"; dest ] ->
          Result.Ok (Merge { source; dest; dry_run = false })
      | [ source; "into"; dest; "--dry-run" ] ->
          Result.Ok (Merge { source; dest; dry_run = true })
      | _ -> Result.Error "usage: @merge <branch> into <variant> [--dry-run]")
  | "@query", "" ->
      Result.Error
        "usage: @query [all] [explain] \
         <name|attr|isa|partof|wheel|diff|lineage|branches> ..."
  | "@quit", "" -> Result.Ok Quit
  | _ when String.length line > 0 && line.[0] = '@' ->
      Result.Error ("unknown control request: " ^ line)
  | _ when line = "" -> Result.Error "empty request"
  | _ -> Result.Ok (Command line)

(* --- rendering ------------------------------------------------------------ *)

let body_prefix = ". "

(* One logical body entry may span lines (a rendered schema); each physical
   line gets the prefix. *)
let body_lines body =
  List.concat_map (String.split_on_char '\n') body
  |> List.map (fun l -> body_prefix ^ l)

let status_lines = function
  | Ok -> [ "!ok" ]
  | Err m -> [ "!err " ^ m ]
  | Readonly m -> [ "!readonly " ^ m ]
  | Busy { reason; retry_after_ms } ->
      [ "!busy " ^ reason; Printf.sprintf "!retry-after %d" retry_after_ms ]

let version_lines = function
  | None -> []
  | Some v -> [ Printf.sprintf "#version %d" v ]

let to_lines r = body_lines r.body @ version_lines r.version @ status_lines r.status

let to_string r = String.concat "\n" (to_lines r) ^ "\n"

let is_terminator line =
  let starts p =
    String.length line >= String.length p && String.sub line 0 (String.length p) = p
  in
  starts "!ok" || starts "!err" || starts "!readonly" || starts "!retry-after"
