(** Socket plumbing shared by {!Server}, {!Router}, and the clients:
    bind/connect over both transports ({!Protocol.address}), partial-write
    loops, a buffered line reader, and the blocking protocol client.

    This lives below [server.ml] (the library interface module) so that
    {!Router} and {!Shard_pool} can use the same plumbing without a
    dependency cycle through [Server]. *)

module Io = Repository.Io

exception Bind_error of string

(* A client hanging up mid-response must surface as EPIPE on the write,
   never as a process-killing SIGPIPE.  Process-wide, idempotent; called
   by every accept loop ([Server.run], [Router.run]) so embedded servers
   (tests, benches) are covered too, not only [swsd serve] which installs
   full signal handlers. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let sockaddr_of = function
  | Protocol.Unix_path p -> Unix.ADDR_UNIX p
  | Protocol.Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> raise (Bind_error (host ^ ": cannot resolve host")))
      in
      Unix.ADDR_INET (ip, port)

let domain_of = function
  | Protocol.Unix_path _ -> Unix.PF_UNIX
  | Protocol.Tcp _ -> Unix.PF_INET

(* --- binding --------------------------------------------------------------- *)

(* Probe a Unix socket path before binding.  A path can hold:
   - a live listener (connect succeeds)      -> refuse to steal it;
   - a dead socket from a kill -9'd server   -> unlink and take over;
   - a non-socket file                       -> refuse to clobber it. *)
let prepare_unix_path path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Result.Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Result.Error (path ^ ": " ^ Unix.error_message e)
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let probe =
        match Io.retry_eintr (fun () -> Unix.connect fd (Unix.ADDR_UNIX path)) with
        | () -> `Live
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Dead
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Gone
        | exception Unix.Unix_error (e, _, _) -> `Err (Unix.error_message e)
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match probe with
      | `Live -> Result.Error (path ^ ": a server is already listening here")
      | `Err m -> Result.Error (path ^ ": " ^ m)
      | `Gone -> Result.Ok ()
      | `Dead -> (
          (* stale socket left by a crashed server: safe to reclaim *)
          match Unix.unlink path with
          | () | (exception Unix.Unix_error (Unix.ENOENT, _, _)) -> Result.Ok ()
          | exception Unix.Unix_error (e, _, _) ->
              Result.Error (path ^ ": " ^ Unix.error_message e)))
  | _ -> Result.Error (path ^ ": exists and is not a socket; refusing to replace it")

(** Bind and listen on [address].  For Unix sockets, a stale socket file
    from a crashed server is detected (probe-connect) and unlinked; a
    path with a live listener — or holding a non-socket file — is an
    error.  For TCP, [SO_REUSEADDR] is set; port 0 picks a free port
    (recover it with {!bound_address}). *)
let bind ?(backlog = 64) address =
  let prepared =
    match address with
    | Protocol.Unix_path p -> prepare_unix_path p
    | Protocol.Tcp _ -> Result.Ok ()
  in
  match prepared with
  | Result.Error _ as e -> e
  | Result.Ok () -> (
      match
        let fd = Unix.socket (domain_of address) Unix.SOCK_STREAM 0 in
        (match address with
        | Protocol.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
        | Protocol.Unix_path _ -> ());
        (try Unix.bind fd (sockaddr_of address)
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        Unix.listen fd backlog;
        fd
      with
      | fd -> Result.Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          Result.Error
            (Protocol.address_to_string address ^ ": " ^ Unix.error_message e)
      | exception Bind_error m -> Result.Error m)

(** The address a listener actually bound — resolves TCP port 0 to the
    kernel-assigned port.  [address] is the address passed to {!bind}. *)
let bound_address fd address =
  match address with
  | Protocol.Unix_path _ -> address
  | Protocol.Tcp (host, _) -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> Protocol.Tcp (host, port)
      | _ | (exception Unix.Unix_error _) -> address)

(* --- connecting ------------------------------------------------------------ *)

(* The startup race: a client racing a server that is still binding sees
   ECONNREFUSED (socket exists, nobody listening) or ENOENT (file not
   created yet).  Both are transient; [Retry] only retries [Sys_error],
   so wrap them and let everything else escape untouched. *)
let transient_connect_errors =
  [ Unix.ECONNREFUSED; Unix.ENOENT; Unix.ECONNRESET; Unix.EAGAIN ]

let connect_once address =
  let fd = Unix.socket (domain_of address) Unix.SOCK_STREAM 0 in
  match Io.retry_eintr (fun () -> Unix.connect fd (sockaddr_of address)) with
  | () -> fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

(** Connect to [address].  [retry_for] (seconds, default [0.] = a single
    attempt) bounds a {!Retry} full-jitter backoff loop over the transient
    startup failures (ECONNREFUSED / ENOENT / ECONNRESET) so callers can
    ride out a server that is still binding — and so N followers
    reconnecting after a leader failure spread their storm instead of
    synchronizing on a fixed sleep.  [policy]/[rand]/[sleep]/[on_retry]
    are injection points for the backoff (tests pin the jitter stream and
    record delays without sleeping); the default policy retries until the
    deadline with delays capped at 250 ms, self-seeded per call. *)
let connect ?(retry_for = 0.) ?policy ?rand ?sleep ?on_retry address =
  let attempt () =
    try connect_once address
    with Unix.Unix_error (e, _, _) when List.mem e transient_connect_errors ->
      raise (Sys_error (Unix.error_message e))
  in
  let outcome =
    if retry_for <= 0. then (
      match attempt () with v -> Result.Ok v | exception e -> Result.Error e)
    else
      let policy =
        match policy with
        | Some p -> p
        | None ->
            { Retry.default with Retry.max_attempts = max_int; max_delay = 0.25 }
      in
      Retry.with_retries ?rand ?sleep ?on_retry
        ~deadline:(Unix.gettimeofday () +. retry_for) policy attempt
  in
  match outcome with
  | Result.Ok fd -> Result.Ok fd
  | Result.Error (Sys_error m) ->
      Result.Error (Protocol.address_to_string address ^ ": " ^ m)
  | Result.Error (Unix.Unix_error (e, _, _)) ->
      Result.Error
        (Protocol.address_to_string address ^ ": " ^ Unix.error_message e)
  | Result.Error e -> raise e

(* --- IO helpers ------------------------------------------------------------ *)

(** Write all of [text], looping over partial writes; EINTR is retried and
    EAGAIN waits for writability.  Raises [Unix.Unix_error] (EPIPE when
    the peer hung up) — never writes a short response silently. *)
let write_all fd text =
  let b = Bytes.of_string text in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Io.retry_eintr (fun () -> Unix.write fd b off (len - off)) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (match Unix.select [] [ fd ] [] 1.0 with
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go off
  in
  go 0

type reader = { fd : Unix.file_descr; mutable buf : string }

let reader fd = { fd; buf = "" }
let reader_fd r = r.fd

(** One newline-terminated line (newline stripped); [None] at EOF. *)
let read_line r =
  let rec go () =
    match String.index_opt r.buf '\n' with
    | Some i ->
        let line = String.sub r.buf 0 i in
        r.buf <- String.sub r.buf (i + 1) (String.length r.buf - i - 1);
        Some line
    | None -> (
        let chunk = Bytes.create 4096 in
        match Io.retry_eintr (fun () -> Unix.read r.fd chunk 0 4096) with
        | 0 -> if r.buf = "" then None else (
            let line = r.buf in
            r.buf <- "";
            Some line)
        | n ->
            r.buf <- r.buf ^ Bytes.sub_string chunk 0 n;
            go ())
  in
  go ()

(** Exactly [n] bytes (consuming the line buffer first); [None] when the
    stream ends short.  Replication frames interleave header lines with
    length-prefixed binary payloads on one connection, so this shares the
    buffer with {!read_line}. *)
let read_exact r n =
  let rec go () =
    let have = String.length r.buf in
    if have >= n then begin
      let s = String.sub r.buf 0 n in
      r.buf <- String.sub r.buf n (have - n);
      Some s
    end
    else
      let chunk = Bytes.create 4096 in
      match Io.retry_eintr (fun () -> Unix.read r.fd chunk 0 4096) with
      | 0 -> None
      | m ->
          r.buf <- r.buf ^ Bytes.sub_string chunk 0 m;
          go ()
  in
  if n = 0 then Some "" else go ()

(* --- a minimal client (CLI, tests, bench, router backends) ----------------- *)

module Client = struct
  type c = { r : reader }

  let connect_to ?retry_for address =
    match connect ?retry_for address with
    | Result.Ok fd -> Result.Ok { r = reader fd }
    | Result.Error _ as e -> e

  let connect ?retry_for path =
    match Protocol.parse_address path with
    | Result.Error _ as e -> e
    | Result.Ok a -> connect_to ?retry_for a

  let fd c = c.r.fd
  let read_line c = read_line c.r

  (** Read body lines up to and including the status; [None] on EOF. *)
  let read_response c =
    let rec go acc =
      match read_line c with
      | None -> None
      | Some line ->
          if Protocol.is_terminator line then Some (List.rev (line :: acc))
          else go (line :: acc)
    in
    go []

  let request c line =
    write_all c.r.fd (line ^ "\n");
    read_response c

  let close c = try Unix.close c.r.fd with Unix.Unix_error _ -> ()
end
