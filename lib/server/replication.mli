(** Journal-shipping replication (DESIGN.md §14).

    The leader streams acked journal records — the exact bytes its commit
    paths appended, after the fsync that made them durable — to follower
    processes over {!Transport}; each follower replays them through the
    same recovery path [@open] uses and serves the existing read-only
    protocol ([@open <v> readonly]) from published snapshots.  Shipped
    deltas carry the leader's publication stamp and followers publish
    with {!Publish.publish_at}, so a follower's [#version] never exceeds
    the leader's: clients demand read-your-writes by staying on the
    leader (or comparing stamps) and accept bounded staleness on any
    follower.  Snapshot shipping covers bootstrap and catch-up after a
    gap; {!promote} turns a follower into the writer after the leader
    dies, fencing the old generation through the store manifest
    ({!Store.fence} / the [era] field of {!Service.config}). *)

exception Stream_error of string
(** The stream can no longer be trusted (replay rejection, damaged
    record run, a stale leader's era).  Both ends treat it as a dropped
    connection: the follower reconnects and re-bootstraps. *)

(** {1 The hub (leader side)} *)

type hub
(** Installed on a leader service; fans every durable commit out to the
    connected follower streams through a bounded event ring.  A follower
    that falls a full ring behind is re-seeded from a fresh snapshot
    rather than stalling the leader. *)

val hub : ?ring:int -> Service.t -> hub
(** Create the hub and install its sink on the service (at most one per
    service; the last installed wins).  Registers the [swsd.repl.*]
    leader instruments on the service's registry.  [ring] bounds the
    event ring (default 1024, clamped to [2, 2^20]): a follower that
    falls more than [ring] events behind is re-seeded from a fresh
    snapshot ([+reset]) instead of stalling the leader. *)

val hub_service : hub -> Service.t

val stop_hub : hub -> unit
(** Wake every stream loop so it can wind down; called by {!Server.run}
    on the way out. *)

val serve_stream :
  hub -> send:(Repository.Journal.Frame.t -> unit) -> alive:(unit -> bool) -> unit
(** Serve one follower's frame stream over an arbitrary transport:
    [+hello], bootstrap ([+root], then [+file]*/[+start] per variant),
    [+live], then tail the ring until [alive] fails or the hub stops.
    Exceptions from [send] (dead peer) escape to the caller.  Exposed
    for the in-process chaos suite; socket servers use
    {!serve_follower}. *)

val serve_follower : hub -> Unix.file_descr -> Transport.reader -> unit
(** Run a socket follower to completion: {!serve_stream} over the fd,
    plus an ack-reader thread feeding the [swsd.repl.lag] gauge.
    Returns when the follower disconnects or the hub stops; the caller
    (the server's [@follow] interception) closes the fd. *)

(** {1 The follower} *)

(** The replay state machine, factored from the socket pump so tests can
    drive it frame-by-frame in process. *)
module Apply : sig
  type t

  val create : Service.t -> t
  (** The service must be in follower mode ([config.follower = true]);
      the applier owns its repository files and publishes every replayed
      state at the leader's stamp. *)

  val frame :
    t -> ack:(variant:string -> stamp:int -> unit) -> Repository.Journal.Frame.t -> unit
  (** Apply one frame; [ack] fires with each newly durable stamp.
      @raise Stream_error when the stream cannot be trusted further —
      drop the connection and re-bootstrap. *)

  val invalidate_all : t -> unit
  (** Mark every variant stale before a reconnect: records are ignored
      until the fresh bootstrap's [+start] re-seeds each variant.
      Already-published snapshots keep serving (bounded staleness). *)

  val live : t -> bool
  (** Bootstrap complete; the stream is tailing ([+live] seen). *)

  val era : t -> int
  (** The leader's write era from [+hello]. *)

  val stamp : t -> string -> int
  (** Last applied leader stamp for the variant (0 before its [+start]).
      Never exceeds the stamp the leader issued. *)
end

(** A complete socket follower: bootstrap, background applier thread,
    reconnect with jittered backoff ({!Transport.connect}). *)
module Follower : sig
  type t

  val create :
    ?config:Service.config ->
    ?io:Repository.Io.t ->
    ?obs:Obs.t ->
    leader:Protocol.address ->
    string ->
    (t, string) result
  (** Bootstrap a follower of [leader] into the directory: dial, read
      the stream head to materialize the repository root, open the
      service in follower mode ([config.follower] is forced on), and
      start the applier thread.  The service serves [@open <v> readonly]
      from replicated snapshots; wrap it with {!Server.of_service} to
      put it on a socket. *)

  val service : t -> Service.t
  val live : t -> bool
  val stamp : t -> string -> int

  val stop : t -> unit
  (** Stop replaying and join the applier.  The service itself is shut
      down by the caller (normally via {!Server.run} winding down). *)
end

(** {1 Promotion} *)

val promote :
  ?src_io:Repository.Io.t ->
  ?dst_io:Repository.Io.t ->
  src:string ->
  dst:string ->
  unit ->
  (int * (string * (unit, string) result) list, string) result
(** Turn the replica repository at [dst] into the writer for everything
    the (dead) leader repository at [src] holds.  The leader's directory
    is authoritative — every acked write is in its journal, a torn tail
    is by construction unacknowledged — so each variant is recovered
    through fsck's longest-replayable-prefix rule, installed into [dst]
    via {!Store.save_session}, and {e both} manifests are fenced at a
    fresh era (1 + the highest either side has seen).  Safe with
    [src = dst] (self-recovery after a crash with no replica).  Returns
    the new era and per-variant outcomes; a variant whose base schema is
    unrecoverable is reported, not silently dropped. *)

(** {1 The supervised pool (leader + replicas)} *)

(** A leader plus N follower processes under one supervisor: dead
    followers respawn in place (the stream is self-seeding); a dead
    leader triggers promotion of the first live follower onto the
    leader's socket ([--promote-from], stale-socket reclaim), and the
    remaining followers reconnect and re-bootstrap from it. *)
module Pool : sig
  type t

  val create :
    ?worker_args:string list ->
    ?sockets_dir:string ->
    exe:string ->
    dir:string ->
    replicas:int ->
    unit ->
    t

  val start : ?wait_for:float -> t -> (unit, string) result
  val stop : ?grace:float -> t -> unit

  val leader_socket : t -> string
  val follower_socket : t -> int -> string
  val leader_dir : t -> string
  (** The current leader's repository directory (moves on promotion). *)

  val leader_pid : t -> int
  val promotions : t -> int

  val kill_leader : ?wait_for:float -> t -> (unit, string) result
  (** SIGKILL the leader and wait until the supervisor has promoted a
      follower in its place (the chaos/bench scenario). *)
end
