(** Two-level writer lock manager for variant repositories.

    In-process, a table of per-variant locks serializes the write path of
    one server: a mutating request holds its variant's lock for the
    duration of its execution (engine step + journal append), so two
    sessions can never interleave journal records.  Read-class requests
    bypass this table entirely — they are served lock-free from the
    snapshot the writer publishes ({!Publish}), so a convoy here can
    never make a variant unreadable.  Waiting is bounded twice over — by
    a per-variant queue bound (excess requests are shed immediately so
    the accept loop never blocks behind a convoy) and by the request
    deadline.

    Across processes, an advisory file lock ([.lock] in the locked
    directory, [lockf]) keeps a second server — or a [swsd repl --save]
    pointed at the same variant — from interleaving appends with us.  POSIX
    record locks are per-process, which is exactly right: threads of one
    server share the file lock and serialize through the in-process table
    instead. *)

(* --- in-process ----------------------------------------------------------- *)

type entry = {
  mutex : Mutex.t;
  mutable waiters : int;  (** requests queued on this key *)
}

type t = {
  table : (string, entry) Hashtbl.t;
  table_mutex : Mutex.t;  (** guards [table] and every [waiters] count *)
}

let create () = { table = Hashtbl.create 8; table_mutex = Mutex.create () }

let entry_of t key =
  Mutex.lock t.table_mutex;
  let e =
    match Hashtbl.find_opt t.table key with
    | Some e -> e
    | None ->
        let e = { mutex = Mutex.create (); waiters = 0 } in
        Hashtbl.add t.table key e;
        e
  in
  Mutex.unlock t.table_mutex;
  e

type failure =
  | Busy of int  (** shed on arrival: [waiters] already queued *)
  | Timed_out  (** queued, but the deadline passed before the lock freed *)

(* OCaml's [Condition] has no timed wait, so bounded waiting polls
   [try_lock], backing off exponentially from 50 us to 1 ms.  The fine
   initial cadence matters under group commit: a flush wakes a cohort of
   writers at once and each holds the lock only for an engine step
   (~100 us), so a fixed millisecond poll would dominate every handoff
   and stretch the cohort's regroup window to many times the actual
   serial work.  The cap keeps a long wait (a convoy behind a slow
   probe) from spinning. *)
let poll_min = 5e-5
let poll_interval = 0.001

(** Run [f] holding [key]'s lock.  Sheds immediately with [Busy] when
    [max_waiters] requests are already queued on the key, and with
    [Timed_out] when the lock cannot be acquired by [deadline] (absolute,
    per [now]).

    [observe] (if given) reports, after the lock is released, how long the
    request waited for the lock, how long it held it, and how many other
    requests were queued on the key when it was admitted — the
    observability layer feeds lock-wait/hold histograms and queue-depth
    gauges from it.  It runs outside the lock and its timings come from
    [now]. *)
let with_key ?(max_waiters = 8) ?(sleep = Thread.delay)
    ?(now = Unix.gettimeofday) ?observe t key ~deadline f =
  let e = entry_of t key in
  let arrived = match observe with Some _ -> now () | None -> 0.0 in
  let run ~depth () =
    let acquired = match observe with Some _ -> now () | None -> 0.0 in
    let r = Ok (Fun.protect ~finally:(fun () -> Mutex.unlock e.mutex) f) in
    (match observe with
    | Some g ->
        g ~waited:(acquired -. arrived) ~held:(now () -. acquired) ~depth
    | None -> ());
    r
  in
  (* an uncontended lock admits regardless of the queue bound; the bound
     only sheds requests that would actually have to wait *)
  if Mutex.try_lock e.mutex then run ~depth:0 ()
  else
    let admitted =
      Mutex.lock t.table_mutex;
      let ok = e.waiters < max_waiters in
      if ok then e.waiters <- e.waiters + 1;
      let n = e.waiters in
      Mutex.unlock t.table_mutex;
      if ok then Ok n else Error (Busy n)
    in
    match admitted with
    | Error _ as err -> err
    | Ok depth ->
        let leave () =
          Mutex.lock t.table_mutex;
          e.waiters <- e.waiters - 1;
          Mutex.unlock t.table_mutex
        in
        let rec acquire delay =
          if Mutex.try_lock e.mutex then begin
            leave ();
            run ~depth ()
          end
          else if now () > deadline then begin
            leave ();
            Error Timed_out
          end
          else begin
            sleep delay;
            acquire (Float.min poll_interval (delay *. 2.0))
          end
        in
        acquire poll_min

let waiters t key =
  Mutex.lock t.table_mutex;
  let n =
    match Hashtbl.find_opt t.table key with Some e -> e.waiters | None -> 0
  in
  Mutex.unlock t.table_mutex;
  n

(* --- cross-process (advisory file locks) ---------------------------------- *)

type file_lock = { fd : Unix.file_descr; path : string }

let lock_file_name = ".lock"

(** Try to take the advisory lock [path] (created 0o644 if absent) without
    blocking.  [Error] when another process holds it, or on IO failure. *)
let lock_file path =
  match
    Repository.Io.retry_eintr (fun () ->
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644)
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error (path ^ ": " ^ Unix.error_message e)
  | fd -> (
      match Repository.Io.retry_eintr (fun () -> Unix.lockf fd Unix.F_TLOCK 0) with
      | () -> Ok { fd; path }
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (path ^ ": held by another process")
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (path ^ ": " ^ Unix.error_message e))

(** Release (and keep the lock file around — its presence is meaningless,
    only the [lockf] record matters, so a crashed holder leaves nothing
    stale to clean up). *)
let unlock_file { fd; _ } =
  (try Repository.Io.retry_eintr (fun () -> Unix.lockf fd Unix.F_ULOCK 0)
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()
