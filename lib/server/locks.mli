(** Two-level {e writer} lock manager: an in-process per-variant mutex
    table with bounded, deadline-limited waiting, plus advisory [lockf]
    file locks against other processes ([swsd serve],
    [swsd repl --save]).

    This is the write half of the service's concurrency split: only the
    write path queues here; read-class requests are served lock-free
    from the variant's published snapshot ({!Publish}, DESIGN.md §10)
    and never touch this table. *)

(** {1 In-process} *)

type t

val create : unit -> t

type failure =
  | Busy of int  (** shed on arrival: that many requests already queued *)
  | Timed_out  (** queued, but the deadline passed first *)

val with_key :
  ?max_waiters:int ->
  ?sleep:(float -> unit) ->
  ?now:(unit -> float) ->
  ?observe:(waited:float -> held:float -> depth:int -> unit) ->
  t ->
  string ->
  deadline:float ->
  (unit -> 'a) ->
  ('a, failure) result
(** Run the thunk holding [key]'s lock; shed with [Busy] when the queue
    bound is reached, [Timed_out] when the (absolute) deadline passes while
    waiting.  The lock is released even if the thunk raises.  [observe]
    reports (after release) the wait time, hold time, and the queue depth
    seen at admission — the feed for lock-contention metrics. *)

val waiters : t -> string -> int

(** {1 Cross-process} *)

type file_lock

val lock_file_name : string
(** [".lock"], kept inside the locked directory. *)

val lock_file : string -> (file_lock, string) result
(** Non-blocking advisory lock on the path (created if absent); [Error]
    names the holder situation.  Released on process exit or
    {!unlock_file}. *)

val unlock_file : file_lock -> unit
