(** A supervised pool of worker [swsd serve] processes, one Unix-domain
    socket each, for {!Router} to route over.

    Workers are fork+exec'd copies of the ordinary server core ([EXE serve
    DIR --socket DIR/shard-<k>.sock --shard-id <k> ...]) sharing one
    repository directory: the router's consistent hash sends each variant
    to exactly one shard, so each worker owns a disjoint set of
    [variants/<name>/] journal+store trees and the single-writer-per-
    variant invariant holds across the pool (the per-variant [.lock]
    advisory lock remains the cross-process backstop).

    A supervisor thread reaps dead workers ([waitpid WNOHANG]) and
    respawns them in place; the stale-socket probe in {!Transport.bind}
    is what lets a respawned worker rebind the socket path its kill -9'd
    predecessor left behind. *)

type t = {
  exe : string;
  dir : string;
  shards : int;
  worker_args : string list;
  sockets : string array;
  pids : int array;  (** guarded by [mu]; -1 = not running *)
  mu : Mutex.t;
  restarts : int Atomic.t;
  mutable supervising : bool;
  mutable supervisor : Thread.t option;
  mutable on_restart : (shard:int -> pid:int -> unit) option;
}

let socket_name k = Printf.sprintf "shard-%d.sock" k

let create ?(worker_args = []) ?sockets_dir ~exe ~dir ~shards () =
  let sdir = match sockets_dir with Some d -> d | None -> dir in
  {
    exe;
    dir;
    shards;
    worker_args;
    sockets = Array.init shards (fun k -> Filename.concat sdir (socket_name k));
    pids = Array.make shards (-1);
    mu = Mutex.create ();
    restarts = Atomic.make 0;
    supervising = false;
    supervisor = None;
    on_restart = None;
  }

let shards t = t.shards
let socket t k = t.sockets.(k)
let restarts t = Atomic.get t.restarts

let pid t k =
  Mutex.lock t.mu;
  let p = t.pids.(k) in
  Mutex.unlock t.mu;
  p

let on_restart t f = t.on_restart <- Some f

(* --- spawning ------------------------------------------------------------- *)

let spawn t k =
  let args =
    Array.of_list
      ([
         t.exe;
         "serve";
         t.dir;
         "--socket";
         t.sockets.(k);
         "--shard-id";
         string_of_int k;
         (* the pool size, so each worker can partition repository-wide
            fan-outs ([@query all]) to the variants the router's hash
            actually sends its way *)
         "--shard-total";
         string_of_int t.shards;
       ]
      @ t.worker_args)
  in
  (* workers inherit stderr for diagnostics; stdout (the "serving ..."
     banner) would interleave with the front end's, so drop it *)
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close devnull with Unix.Unix_error _ -> ())
    (fun () -> Unix.create_process t.exe args devnull devnull Unix.stderr)

(* [`Alive] on EINTR: the next supervisor tick will ask again. *)
let probe_pid pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> `Alive
  | _, _ -> `Dead
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Alive
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> `Dead

let alive t k =
  let p = pid t k in
  p >= 0 && probe_pid p = `Alive

(* --- supervision ----------------------------------------------------------- *)

let supervise_tick t =
  for k = 0 to t.shards - 1 do
    Mutex.lock t.mu;
    let p = t.pids.(k) in
    let dead = p >= 0 && probe_pid p = `Dead in
    let fresh =
      if dead && t.supervising then begin
        let np = spawn t k in
        t.pids.(k) <- np;
        Atomic.incr t.restarts;
        Some np
      end
      else None
    in
    Mutex.unlock t.mu;
    match (fresh, t.on_restart) with
    | Some np, Some f -> f ~shard:k ~pid:np
    | _ -> ()
  done

let start_supervisor t =
  t.supervising <- true;
  t.supervisor <-
    Some
      (Thread.create
         (fun () ->
           while t.supervising do
             supervise_tick t;
             Thread.delay 0.05
           done)
         ())

(* --- lifecycle ------------------------------------------------------------- *)

(** Spawn every worker and wait (up to [wait_ready] seconds overall) for
    each to accept a connection; then start the supervisor.  Fails fast if
    a worker exits during startup (bad repo dir, unusable socket path). *)
let start ?(wait_ready = 15.) t =
  Mutex.lock t.mu;
  for k = 0 to t.shards - 1 do
    if t.pids.(k) < 0 then t.pids.(k) <- spawn t k
  done;
  Mutex.unlock t.mu;
  let deadline = Unix.gettimeofday () +. wait_ready in
  let rec ready k =
    if k >= t.shards then Result.Ok ()
    else if not (alive t k) then
      Result.Error (Printf.sprintf "shard %d exited during startup" k)
    else
      match
        Transport.Client.connect_to ~retry_for:0.3
          (Protocol.Unix_path t.sockets.(k))
      with
      | Result.Ok c ->
          (* consume the greeting so the worker's connection count settles *)
          ignore (Transport.Client.read_response c);
          Transport.Client.close c;
          ready (k + 1)
      | Result.Error m ->
          if Unix.gettimeofday () > deadline then
            Result.Error (Printf.sprintf "shard %d not ready: %s" k m)
          else ready k
  in
  match ready 0 with
  | Result.Ok () ->
      start_supervisor t;
      Result.Ok ()
  | Result.Error _ as e -> e

let signal_pid signum p =
  if p >= 0 then try Unix.kill p signum with Unix.Unix_error _ -> ()

(** Stop supervising, SIGTERM every worker (graceful drain), and reap
    them; stragglers get SIGKILL after [grace] seconds. *)
let stop ?(grace = 10.) t =
  t.supervising <- false;
  (match t.supervisor with Some th -> Thread.join th | None -> ());
  t.supervisor <- None;
  Mutex.lock t.mu;
  let pids = Array.copy t.pids in
  Array.fill t.pids 0 t.shards (-1);
  Mutex.unlock t.mu;
  Array.iter (signal_pid Sys.sigterm) pids;
  let deadline = Unix.gettimeofday () +. grace in
  Array.iter
    (fun p ->
      if p >= 0 then
        let rec reap () =
          match probe_pid p with
          | `Dead -> ()
          | `Alive ->
              if Unix.gettimeofday () > deadline then begin
                signal_pid Sys.sigkill p;
                (try ignore (Unix.waitpid [] p)
                 with Unix.Unix_error _ -> ())
              end
              else begin
                Thread.delay 0.02;
                reap ()
              end
        in
        reap ())
    pids
