(** A supervised pool of worker [swsd serve] processes (one Unix socket
    each) sharing one repository directory, for {!Router} to route over.
    A supervisor thread respawns workers that die; {!Transport.bind}'s
    stale-socket reclamation lets a respawned worker rebind the path its
    kill -9'd predecessor left behind. *)

type t

val create :
  ?worker_args:string list ->
  ?sockets_dir:string ->
  exe:string ->
  dir:string ->
  shards:int ->
  unit ->
  t
(** [create ~exe ~dir ~shards ()] describes a pool of [shards] workers
    run as [exe serve dir --socket <sockets_dir>/shard-<k>.sock
    --shard-id <k> <worker_args>].  [sockets_dir] defaults to [dir].
    Nothing is spawned until {!start}. *)

val start : ?wait_ready:float -> t -> (unit, string) result
(** Spawn all workers, wait until each accepts a connection (bounded by
    [wait_ready] seconds, default 15), then start the supervisor thread.
    Fails fast if a worker exits during startup. *)

val stop : ?grace:float -> t -> unit
(** Stop supervising, SIGTERM every worker, reap them; SIGKILL stragglers
    after [grace] seconds (default 10). *)

val shards : t -> int
val socket : t -> int -> string
val pid : t -> int -> int
(** Current worker pid for a shard; -1 when not running.  (Chaos tests
    kill this directly and let the supervisor respawn it.) *)

val alive : t -> int -> bool
val restarts : t -> int
(** Workers respawned by the supervisor since {!start}. *)

val on_restart : t -> (shard:int -> pid:int -> unit) -> unit
(** Observer invoked (from the supervisor thread) after each respawn. *)
