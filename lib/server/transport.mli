(** Socket plumbing shared by {!Server}, {!Router}, and the clients: bind
    and connect over both transports ({!Protocol.address}), a partial-write
    loop, a buffered line reader, and the blocking protocol client. *)

val ignore_sigpipe : unit -> unit
(** Process-wide, idempotent: a peer hanging up mid-write must surface as
    EPIPE, never kill the process.  Called by every accept loop. *)

val bind :
  ?backlog:int -> Protocol.address -> (Unix.file_descr, string) result
(** Bind + listen.  Unix: probes the path first — a stale socket file from
    a crashed server is unlinked and reclaimed; a live listener or a
    non-socket file is an error.  TCP: sets [SO_REUSEADDR]; port 0 lets
    the kernel pick (recover it with {!bound_address}). *)

val bound_address : Unix.file_descr -> Protocol.address -> Protocol.address
(** The effective listen address (resolves TCP port 0). *)

val connect :
  ?retry_for:float ->
  ?policy:Retry.policy ->
  ?rand:Random.State.t ->
  ?sleep:(float -> unit) ->
  ?on_retry:(attempt:int -> delay:float -> unit) ->
  Protocol.address ->
  (Unix.file_descr, string) result
(** [retry_for] (seconds, default 0 = single attempt) retries the
    transient startup races (ECONNREFUSED / ENOENT / ECONNRESET) with
    {!Retry} full-jitter backoff until the deadline — so clients stop
    flaking when they race a server that is still binding, and follower
    reconnect storms decorrelate instead of synchronizing.  The optional
    [policy]/[rand]/[sleep]/[on_retry] mirror {!Retry.with_retries} and
    exist so tests can pin the jitter stream and observe the delay
    sequence without real sleeps; the defaults self-seed per call. *)

val write_all : Unix.file_descr -> string -> unit
(** Write everything, looping over partial writes (EINTR retried, EAGAIN
    waits for writability).  Raises [Unix.Unix_error] — EPIPE when the
    peer hung up. *)

type reader

val reader : Unix.file_descr -> reader
val reader_fd : reader -> Unix.file_descr

val read_line : reader -> string option
(** One newline-terminated line (newline stripped); [None] at EOF. *)

val read_exact : reader -> int -> string option
(** Exactly [n] bytes (shares the buffer with {!read_line}, so header
    lines and length-prefixed binary payloads can interleave on one
    connection — the replication stream's framing); [None] when the
    stream ends short. *)

(** Blocking line-protocol client used by the CLI, tests, bench, and the
    router's backend connections. *)
module Client : sig
  type c

  val connect : ?retry_for:float -> string -> (c, string) result
  (** Parses the argument with {!Protocol.parse_address}: a socket path
      or [host:port]. *)

  val connect_to : ?retry_for:float -> Protocol.address -> (c, string) result
  val fd : c -> Unix.file_descr
  val read_line : c -> string option

  val request : c -> string -> string list option
  (** Send one request line; returns the response lines (body then
      status, terminator included), or [None] if the server hung up. *)

  val read_response : c -> string list option
  (** Read one response without sending (e.g. the greeting). *)

  val close : c -> unit
end
