(** Lock-free snapshot publication with epoch counters (see the interface
    for the contract).

    Representation: a copy-on-write string map behind one [Atomic], one
    entry per variant ever opened.  Entries are never removed — a variant
    name is a few words of memory and keeping the entry is what lets [seq]
    and [epoch] survive session eviction.  The published cell holds the
    value {e together with} its stamp so a reader can never pair a new
    snapshot with an old stamp (or vice versa): the pair is one immutable
    allocation behind one atomic load. *)

module SMap = Map.Make (String)

type 'a entry = {
  cell : ('a * int) option Atomic.t;  (** published (value, stamp) *)
  seq : int Atomic.t;  (** last issued stamp; monotone *)
  epoch : int Atomic.t;  (** retract count; monotone *)
  readers : int Atomic.t;  (** threads inside [with_snapshot] *)
  touched : float Atomic.t;  (** last read-path activity (reaper input) *)
}

type 'a t = { entries : 'a entry SMap.t Atomic.t }

let create () = { entries = Atomic.make SMap.empty }

let find t key = SMap.find_opt key (Atomic.get t.entries)

(* Find-or-create via CAS retry: creation races build two entries, one
   wins, the loser's allocation is garbage.  Rare (once per variant name)
   and harmless. *)
let rec entry t key =
  let m = Atomic.get t.entries in
  match SMap.find_opt key m with
  | Some e -> e
  | None ->
      let e =
        {
          cell = Atomic.make None;
          seq = Atomic.make 0;
          epoch = Atomic.make 0;
          readers = Atomic.make 0;
          touched = Atomic.make 0.;
        }
      in
      if Atomic.compare_and_set t.entries m (SMap.add key e m) then e
      else entry t key

let read t key =
  match find t key with None -> None | Some e -> Atomic.get e.cell

let with_snapshot t key f =
  match find t key with
  | None -> None
  | Some e -> (
      Atomic.incr e.readers;
      Fun.protect
        ~finally:(fun () -> Atomic.decr e.readers)
        (fun () ->
          match Atomic.get e.cell with
          | None -> None
          | Some pair -> Some (f pair)))

let publish t key v =
  let e = entry t key in
  (* single writer per key: fetch_and_add alone would do, but keep the
     stamp stored with the value so readers see a consistent pair *)
  let stamp = 1 + Atomic.fetch_and_add e.seq 1 in
  Atomic.set e.cell (Some (v, stamp));
  stamp

let publish_at t key v stamp =
  let e = entry t key in
  (* single applier per key (the follower's replay thread): pin the
     published stamp to the leader's rather than minting a local one, so
     a follower's #version can never run ahead of the leader that issued
     it.  [seq] only ratchets forward. *)
  let rec bump () =
    let cur = Atomic.get e.seq in
    if stamp > cur && not (Atomic.compare_and_set e.seq cur stamp) then bump ()
  in
  bump ();
  Atomic.set e.cell (Some (v, stamp))

let retract t key =
  match find t key with
  | None -> ()
  | Some e ->
      Atomic.set e.cell None;
      Atomic.incr e.epoch

let seq t key = match find t key with None -> 0 | Some e -> Atomic.get e.seq
let epoch t key = match find t key with None -> 0 | Some e -> Atomic.get e.epoch

let readers t key =
  match find t key with None -> 0 | Some e -> Atomic.get e.readers

let touch t key ~now =
  match find t key with None -> () | Some e -> Atomic.set e.touched now

let last_touched t key =
  match find t key with None -> 0. | Some e -> Atomic.get e.touched
