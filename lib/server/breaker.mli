(** Per-variant circuit breaker: repeated journal-append failures degrade
    the variant to read-only instead of crashing the server; a cooldown
    admits a half-open probe whose outcome closes or re-trips the
    circuit.  State transitions are recorded with timestamps for [@stats].
    Thread-safe: since group commit, batch outcomes are recorded from the
    waiters' threads outside the variant writer lock, so every operation
    synchronizes on an internal (uncontended in practice) mutex. *)

type t

type phase = Closed | Opened | Half_open

val phase_name : phase -> string
(** ["closed"], ["open"], ["half-open"]. *)

val create : ?threshold:int -> ?cooldown:float -> unit -> t
val is_open : t -> bool

val phase : t -> phase
(** The current state. *)

val allows : t -> now:float -> bool
(** Admit a mutation?  [true] while closed; the first admitting read after
    the cooldown transitions the breaker to half-open (recorded in the
    transition log). *)

val record_success : t -> now:float -> unit
val record_failure : t -> now:float -> unit

val transitions : t -> (float * string) list
(** Transition history, newest first: [(timestamp, phase entered)]; capped
    at a small fixed length. *)

val since : t -> float option
(** When the current state was entered; [None] for a breaker that never
    tripped. *)

val time_in_state : t -> now:float -> float option
(** Seconds in the current state; [None] for a breaker that never
    tripped. *)

val describe : t -> string
(** Human-readable state including the timestamped transition history. *)
