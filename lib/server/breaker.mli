(** Per-variant circuit breaker: repeated journal-append failures degrade
    the variant to read-only instead of crashing the server; a cooldown
    admits a half-open probe whose outcome closes or re-trips the
    circuit.  Not thread-safe on its own — call under the session lock. *)

type t

val create : ?threshold:int -> ?cooldown:float -> unit -> t
val is_open : t -> bool

val allows : t -> now:float -> bool
(** Admit a mutation?  [true] while closed, and for the half-open probe
    once the cooldown has elapsed. *)

val record_success : t -> unit
val record_failure : t -> now:float -> unit
val describe : t -> string
