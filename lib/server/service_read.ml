(** The read path: classify each designer command once, then serve
    read-class commands from the published snapshot with {e no variant
    lock at all}.

    The flow for a command line:

    + parse once ({!Designer.Command.parse}); a syntax error is answered
      immediately — no session state is involved;
    + commands that have no business in a server session ([source], [save],
      [quit]) are refused, as before;
    + a read-only connection ([@open v readonly]) gets [!readonly] for any
      mutating command, again without touching the writer lock;
    + [Command.access] splits the rest: [Read] commands execute against
      the variant's published snapshot (an immutable [Engine.state]) and
      the state the engine hands back is {e discarded} — by the
      classification contract it is the same value, and a defensive
      physical-equality check falls back to the writer lock if a
      misclassified command ever changes state, so the change cannot be
      lost; [Write] commands (and reads when nothing is published, or with
      [lockfree_reads = false]) take the {!Service_write} pipeline.

    A reader holds the variant's live-reader count for the duration of the
    engine call ({!Publish.with_snapshot}), which is what the idle reaper
    checks before freeing a session; a reader that loses that race simply
    finishes on its immutable snapshot and falls back on its next request. *)

open Service_types

let refusal (cmd : Designer.Command.t) =
  match cmd with
  | Source _ -> Some "source is not available in server sessions"
  | Save _ -> Some "save is not available in server sessions; @close snapshots"
  | Quit -> Some "quit is not available in server sessions; use @close or @quit"
  | _ -> None

(* Execute a read-class command on the published snapshot; [None] means
   "take the locked path" (nothing published, or the defensive state-change
   check tripped). *)
let try_lockfree t variant (cmd : Designer.Command.t) =
  match
    Publish.with_snapshot t.pub variant (fun (st, stamp) ->
        let after, feedback = Engine.exec st cmd in
        if after != st then None  (* misclassified: must not lose the change *)
        else begin
          Publish.touch t.pub variant ~now:(t.config.now ());
          let body = feedback_body feedback in
          if List.exists Designer.Feedback.is_error feedback then
            Some (Protocol.err ~body ~version:stamp "command rejected")
          else Some (Protocol.ok ~version:stamp body)
        end)
  with
  | Some (Some response) -> Some response
  | Some None | None -> None

let do_command t (conn : conn) line =
  match conn.variant with
  | None -> Protocol.err "no open session; use: @open <variant>"
  | Some variant -> (
      match Designer.Command.parse line with
      | exception Designer.Command.Bad_command m ->
          (* same wire shape the engine used to produce, without a lock *)
          Protocol.err
            ~body:[ Designer.Feedback.(to_string (error m)) ]
            "command rejected"
      | cmd -> (
          match refusal cmd with
          | Some m -> Protocol.err m
          | None ->
              if conn.readonly && Designer.Command.mutates cmd then begin
                Obs.Metrics.incr t.i.c_readonly_rejected;
                Protocol.readonly
                  "connection attached readonly; reopen without readonly to \
                   modify"
              end
              else
                let i = t.i in
                let t0 = t.config.now () in
                let finish h response =
                  Obs.Histo.observe h (t.config.now () -. t0);
                  response
                in
                (match Designer.Command.access cmd with
                | Designer.Command.Read when t.config.lockfree_reads -> (
                    match try_lockfree t variant cmd with
                    | Some response ->
                        Obs.Metrics.incr i.c_read_lockfree;
                        Obs.Trace.add_phase_current i.tracer "read"
                          (t.config.now () -. t0);
                        finish i.h_read response
                    | None ->
                        Obs.Metrics.incr i.c_read_fallback;
                        finish i.h_read
                          (Service_write.do_command t conn variant cmd ~line))
                | Designer.Command.Read ->
                    Obs.Metrics.incr i.c_read_fallback;
                    finish i.h_read
                      (Service_write.do_command t conn variant cmd ~line)
                | Designer.Command.Write ->
                    Obs.Metrics.incr i.c_write;
                    finish i.h_write
                      (Service_write.do_command t conn variant cmd ~line))))
