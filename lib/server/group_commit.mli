(** Group commit: one fsync amortized across a batch of writers.

    Writers encode their journal records under the variant writer lock,
    {!submit} the bytes to a per-journal-file lane, and block on the
    returned {!ticket}; a single flusher thread concatenates each lane's
    pending records, writes them with {e one} append + fsync, and settles
    every ticket in the batch.  An acknowledged ticket therefore still
    implies durability — the fsync cost is just shared by everyone whose
    record rode in the batch.

    {2 Flush policy}

    A lane is flushed when any of these holds:
    - it has at least [max_batch] pending records;
    - its oldest record has waited [max_linger] seconds;
    - [flush_on_idle] is set and no new record arrived anywhere during the
      last flusher tick (the common low-concurrency case: a lone writer is
      not held hostage for the full linger);
    - a {!drain} or {!stop} forces it out.

    {2 Failure semantics}

    A flush failure (after the caller's [flush] has exhausted its own
    retries) fails {e every} ticket in the batch — nothing in it is
    acknowledged — and {e poisons} the lane: the journal file's tail state
    is unknown (possibly torn), so appending more records could fuse a torn
    fragment with a fresh record into interior corruption.  Subsequent
    submits fail immediately until {!reset}, which the service calls after
    the journal has been reloaded through recovery.

    {2 Ordering}

    Records are flushed in submission order per lane, and the optional
    [on_durable] callbacks of a batch run {e in that order} on the flusher
    thread before any of the batch's tickets settle — the service uses this
    to publish engine snapshots in exactly journal order (publish-before-ack,
    DESIGN.md §11). *)

type policy = {
  max_batch : int;  (** flush when this many records are pending *)
  max_linger : float;  (** max seconds the oldest record may wait *)
  flush_on_idle : bool;  (** flush a short batch when submissions pause *)
}

val default_policy : policy
(** [{ max_batch = 64; max_linger = 0.002; flush_on_idle = true }]. *)

type t

type ticket
(** One submitted record's handle; settled exactly once. *)

exception Stopped
(** The failure a ticket settles with when its record was submitted to a
    stopped coordinator (server shutdown won the race). *)

val create :
  ?policy:policy ->
  ?now:(unit -> float) ->
  ?sleep:(float -> unit) ->
  flush:(path:string -> data:string -> unit) ->
  ?on_flush:(path:string -> batch:int -> seconds:float -> unit) ->
  unit ->
  t
(** Start a coordinator (spawns the flusher thread).  [flush] must make
    [data] durable at [path] or raise — it runs on the flusher thread and
    owns its own retry discipline.  [on_flush] observes each successful
    batch (record count and flush latency) for the metrics layer. *)

val submit : t -> path:string -> ?on_durable:(unit -> unit) -> string -> ticket
(** Enqueue pre-encoded record bytes (may be [""] to order a pure
    in-memory state change behind the lane's pending records).  Returns
    immediately; the caller must {!await} the ticket before acknowledging.
    On a poisoned lane, or after {!stop}, the ticket is already failed. *)

val await : ticket -> (unit, exn) result
(** Block until the ticket settles.  [Ok] means the record — and every
    record submitted to the lane before it — is durable and its
    [on_durable] has run. *)

val drain : t -> path:string -> unit
(** Force the lane out and wait until it has no pending records and no
    flush in flight.  Callers must drain before any whole-file journal
    rewrite (snapshot, recovery repair) — a rewrite that raced a batch
    append would duplicate the batch's records. *)

val drain_all : t -> unit
(** {!drain} every lane; used before loading a session (the journal path
    is not known until the store is open). *)

val quiescent : t -> path:string -> bool
(** No pending records, no flush in flight, not poisoned.  A writer with
    an empty delta may publish directly iff its lane is quiescent;
    otherwise it must submit an empty record to keep publish order equal
    to journal order. *)

val reset : t -> path:string -> unit
(** Clear the lane's poison after the journal has been reloaded through
    recovery (the on-disk tail is known-good again). *)

val stop : t -> unit
(** Flush everything still pending, stop the flusher thread, and join it.
    Subsequent submits fail immediately.  Idempotent. *)
