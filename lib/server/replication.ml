(** Journal-shipping replication: the leader streams acked journal
    records to follower processes, which replay them through the same
    recovery path [@open] uses and serve the read-only protocol from
    published snapshots.

    The design leans entirely on invariants the rest of the system
    already maintains:

    - {b The journal is the replica.}  A live session provably equals the
      replay of its journal (the service's durability contract), so a
      follower that owns a byte-identical copy of [log.ops] and replays
      it is exactly as good as a crashed leader after recovery.  The
      leader therefore ships the {e exact} pre-encoded record bytes each
      commit appended ({!Service_types.ship}), after the fsync that made
      them durable, in publication-stamp order per variant.
    - {b Stamps are the staleness contract.}  Every shipped delta
      carries the leader's publication stamp; the follower publishes the
      replayed state with {!Publish.publish_at} at that exact stamp, so
      a follower's [#version] can never exceed the leader's — a client
      that needs read-your-writes compares stamps (or stays on the
      leader), one that accepts bounded staleness reads any follower.
    - {b Rewrites invalidate.}  Snapshots and recovery repairs rewrite
      the journal file ({!Journal.rewrite}); byte continuity with the
      followers is broken, so the hub re-seeds them from a fresh
      snapshot ([Reset] + [File]* + [Start]).  Replayed {e state} is
      unaffected — a rewrite collapses resolved undos but reproduces the
      same session — which is why the follower can keep serving its
      published snapshot while it catches up.
    - {b Promotion fences eras.}  {!promote} recovers the dead leader's
      variants through fsck, installs them in the replica's repository,
      and stamps a fresh era (1 + the highest era either directory has
      seen) into every manifest ({!Store.fence}).  A resurrected old
      leader refuses to open fenced variants for writing
      ({!Service_admin.load_session}), so there is exactly one writer
      per variant after promotion. *)

module Store = Repository.Store
module Repo = Repository.Repo
module Io = Repository.Io
module Journal = Repository.Journal
module Frame = Repository.Journal.Frame
module Engine = Designer.Engine
open Service_types

exception Stream_error of string

(* The variant artifacts a snapshot ships (and the only names a follower
   will write): everything {!Store.load_session} needs plus the derived
   custom schema and the manifest, so a promoted replica starts from a
   complete store.  Never [.lock] (locks are per-process) and never
   reports (regenerated on save). *)
let artifact_names =
  [ "shrinkwrap.odl"; "log.ops"; "aliases.map"; "custom.odl"; "manifest" ]

(* --- the hub: leader-side fan-out ----------------------------------------- *)

type ev =
  | Rec of { variant : string; stamp : int; data : string }
  | Inval of { variant : string }

(** One hub per replicating server: commit paths push events into a
    bounded ring ({!Service_types.ship} / [invalidate] via the installed
    sink); each follower connection runs {!serve_stream} on its own
    thread, consuming the ring at its own cursor.  A follower that falls
    more than a ring behind is not a reason to stall the leader — it is
    re-seeded from a fresh snapshot instead (the [gap] branch), which is
    the same machinery bootstrap uses. *)
type hub = {
  h_svc : Service_types.t;
  h_mu : Mutex.t;
  h_cond : Condition.t;
  h_ring : ev option array;
  h_cap : int;  (** ring slots; a follower further behind is re-seeded *)
  mutable h_next : int;  (** events ever pushed; slot = next mod capacity *)
  mutable h_stopping : bool;
  h_followers : int Atomic.t;
  hg_followers : Obs.Metrics.gauge;
  hc_shipped : Obs.Metrics.counter;
  hc_snapshots : Obs.Metrics.counter;
  hc_resets : Obs.Metrics.counter;
  hc_acks : Obs.Metrics.counter;
  hg_lag : Obs.Metrics.gauge;
}

let default_ring = 1024

let hub ?(ring = default_ring) (svc : Service_types.t) =
  (* clamp: below 2 the ring cannot hold even one event plus headroom and
     every push would force a re-seed; a silly-large ask is capped rather
     than refused so a fat-fingered flag still serves *)
  let cap = max 2 (min ring (1 lsl 20)) in
  let obs = svc.i.obs in
  let h =
    {
      h_svc = svc;
      h_mu = Mutex.create ();
      h_cond = Condition.create ();
      h_ring = Array.make cap None;
      h_cap = cap;
      h_next = 0;
      h_stopping = false;
      h_followers = Atomic.make 0;
      hg_followers = Obs.gauge obs "swsd.repl.followers";
      hc_shipped = Obs.counter obs "swsd.repl.records_shipped_total";
      hc_snapshots = Obs.counter obs "swsd.repl.snapshots_shipped_total";
      hc_resets = Obs.counter obs "swsd.repl.resets_total";
      hc_acks = Obs.counter obs "swsd.repl.acks_total";
      hg_lag = Obs.gauge obs "swsd.repl.lag";
    }
  in
  let push ev =
    Mutex.lock h.h_mu;
    h.h_ring.(h.h_next mod h.h_cap) <- Some ev;
    h.h_next <- h.h_next + 1;
    Condition.broadcast h.h_cond;
    Mutex.unlock h.h_mu
  in
  svc.repl <-
    Some
      {
        rs_ship =
          (fun ~variant ~stamp ~data -> push (Rec { variant; stamp; data }));
        rs_invalidate = (fun ~variant -> push (Inval { variant }));
      };
  h

let hub_service h = h.h_svc

(** Wake every stream loop so it can observe [h_stopping]; called by the
    server's accept loop on the way down. *)
let stop_hub h =
  Mutex.lock h.h_mu;
  h.h_stopping <- true;
  Condition.broadcast h.h_cond;
  Mutex.unlock h.h_mu

(* Read a consistent snapshot of one variant's artifacts under its writer
   lock: the lane is drained first, so the bytes on disk contain exactly
   the records up to the [Publish.seq] sampled alongside — a [Records]
   frame with a stamp at or below the returned one is already inside the
   shipped [log.ops] and the follower's stamp dedup drops it.  Raises
   {!Stream_error} when the lock cannot be had (the follower reconnects
   and tries again rather than holding a writer-lock queue slot). *)
let snapshot_variant h variant =
  let svc = h.h_svc in
  let io = Repo.io svc.repo in
  let vdir = Repo.variant_dir svc.repo variant in
  let read () =
    (match find_session svc variant with
    | Some s -> drain_commits svc s
    | None -> ());
    let file name =
      let p = Filename.concat vdir name in
      if io.Io.file_exists p then Some (name, io.Io.read_file p) else None
    in
    (List.filter_map file artifact_names, Publish.seq svc.pub variant)
  in
  match try_writer svc variant read with
  | Ok r -> r
  | Error _ -> raise (Stream_error (variant ^ ": busy; could not snapshot"))

let ship_snapshot h ~send variant =
  let files, stamp = snapshot_variant h variant in
  List.iter (fun (name, data) -> send (Frame.File { variant; name; data })) files;
  send (Frame.Start { variant; stamp });
  Obs.Metrics.incr h.hc_snapshots

(** Serve one follower's frame stream: hello, bootstrap (root schema +
    a snapshot of every variant), then tail the ring.  [send] writes one
    frame (it may raise on a dead peer); [alive] is polled between
    batches so a dead connection stops consuming.  The cursor is taken
    {e before} the bootstrap snapshots are read, so no event between
    snapshot and tailing can be missed — at worst a record already inside
    a shipped snapshot is replayed and deduped by its stamp. *)
let serve_stream h ~send ~alive =
  let svc = h.h_svc in
  send (Frame.Hello { era = svc.config.era });
  Mutex.lock h.h_mu;
  let cursor = ref h.h_next in
  Mutex.unlock h.h_mu;
  let io = Repo.io svc.repo in
  let root = Filename.concat (Repo.dir svc.repo) "shrinkwrap.odl" in
  send (Frame.Root { data = io.Io.read_file root });
  List.iter (ship_snapshot h ~send) (Repo.variant_names svc.repo);
  send Frame.Live;
  let rec loop () =
    Mutex.lock h.h_mu;
    while (not h.h_stopping) && alive () && h.h_next <= !cursor do
      Condition.wait h.h_cond h.h_mu
    done;
    if h.h_stopping || not (alive ()) then Mutex.unlock h.h_mu
    else begin
      let next = h.h_next in
      let lo = max !cursor (next - h.h_cap) in
      let gap = lo > !cursor in
      let evs =
        if gap then []
        else
          List.init (next - lo) (fun k ->
              Option.get h.h_ring.((lo + k) mod h.h_cap))
      in
      cursor := next;
      Mutex.unlock h.h_mu;
      if gap then begin
        (* fell a full ring behind: cheaper (and simpler) to re-seed than
           to make the leader retain unbounded history *)
        List.iter
          (fun v ->
            send (Frame.Reset { variant = v });
            Obs.Metrics.incr h.hc_resets;
            ship_snapshot h ~send v)
          (Repo.variant_names svc.repo);
        send Frame.Live
      end
      else
        List.iter
          (function
            | Rec { variant; stamp; data } ->
                send (Frame.Records { variant; stamp; data });
                Obs.Metrics.incr h.hc_shipped
            | Inval { variant } ->
                send (Frame.Reset { variant });
                Obs.Metrics.incr h.hc_resets;
                ship_snapshot h ~send variant)
          evs;
      loop ()
    end
  in
  loop ()

(** Run a follower connection to completion: an ack-reader thread drains
    [+ack] frames coming back (feeding the lag gauge) and flags the
    stream dead on EOF, while this thread pumps {!serve_stream} over the
    socket.  Called by the server's [@follow] interception; returns when
    the follower disconnects or the hub stops. *)
let serve_follower h fd reader =
  Obs.Metrics.set h.hg_followers (1 + Atomic.fetch_and_add h.h_followers 1);
  let dead = Atomic.make false in
  let mark_dead () =
    Atomic.set dead true;
    Mutex.lock h.h_mu;
    Condition.broadcast h.h_cond;
    Mutex.unlock h.h_mu
  in
  let acks =
    Thread.create
      (fun () ->
        let rec go () =
          match
            Frame.read
              ~read_line:(fun () -> Transport.read_line reader)
              ~read_exact:(fun n -> Transport.read_exact reader n)
          with
          | Ok (Some (Frame.Ack { variant; stamp })) ->
              Obs.Metrics.incr h.hc_acks;
              Obs.Metrics.set h.hg_lag
                (max 0 (Publish.seq h.h_svc.pub variant - stamp));
              go ()
          | Ok (Some _) -> go () (* a follower only sends acks; tolerate *)
          | Ok None | Error _ -> mark_dead ()
          | exception (Unix.Unix_error _ | Sys_error _) -> mark_dead ()
        in
        go ())
      ()
  in
  let send f = Transport.write_all fd (Frame.to_string f) in
  (try serve_stream h ~send ~alive:(fun () -> not (Atomic.get dead))
   with Unix.Unix_error _ | Sys_error _ | Stream_error _ -> ());
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  Atomic.set dead true;
  Thread.join acks;
  Obs.Metrics.set h.hg_followers (Atomic.fetch_and_add h.h_followers (-1) - 1)

(* --- the follower: frame application -------------------------------------- *)

(** The follower's replay state machine, factored apart from the socket
    pump so the chaos suite can drive it frame-by-frame in process.  One
    applier per follower service; it owns every variant's files (the
    service is in [follower] mode and never loads sessions itself). *)
module Apply = struct
  type entry = {
    mutable a_session : Core.Session.t;
    mutable a_stamp : int;  (** leader stamp last applied *)
    mutable a_stale : bool;  (** [Reset] seen: drop records until [Start] *)
  }

  type t = {
    a_svc : Service_types.t;
    a_states : (string, entry) Hashtbl.t;
    mutable a_era : int;  (** the leader's era from [Hello] *)
    a_live : bool Atomic.t;  (** bootstrap complete, stream is tailing *)
    ac_applied : Obs.Metrics.counter;
  }

  let create (svc : Service_types.t) =
    {
      a_svc = svc;
      a_states = Hashtbl.create 8;
      a_era = 0;
      a_live = Atomic.make false;
      ac_applied = Obs.counter svc.i.obs "swsd.repl.applied_records_total";
    }

  let live a = Atomic.get a.a_live
  let era a = a.a_era

  let stamp a variant =
    match Hashtbl.find_opt a.a_states variant with
    | Some e -> e.a_stamp
    | None -> 0

  (** Mark every variant stale and forget liveness: called before a
      reconnect, whose bootstrap will re-seed everything. *)
  let invalidate_all a =
    Atomic.set a.a_live false;
    Hashtbl.iter (fun _ e -> e.a_stale <- true) a.a_states

  let replay_error m = raise (Stream_error m)

  (** Apply one frame; [ack] is called with every newly durable stamp.
      Raises {!Stream_error} when the stream cannot be trusted any
      further (replay rejection, damaged record run, a stale leader) —
      the pump drops the connection and re-bootstraps. *)
  let frame a ~ack f =
    let svc = a.a_svc in
    let io = Repo.io svc.repo in
    match f with
    | Frame.Hello { era } ->
        (* a leader from a fenced-out era must not feed this follower *)
        if era < a.a_era then
          replay_error
            (Printf.sprintf "stale leader: era %d < last seen era %d" era
               a.a_era);
        a.a_era <- era
    | Frame.Root { data } ->
        Io.atomic_write io
          (Filename.concat (Repo.dir svc.repo) "shrinkwrap.odl")
          data
    | Frame.File { variant; name; data } ->
        if not (List.mem name artifact_names) then
          replay_error ("unexpected artifact in stream: " ^ name);
        let vdir = Repo.variant_dir svc.repo variant in
        Io.mkdir_p io vdir;
        Io.atomic_write io (Filename.concat vdir name) data
    | Frame.Reset { variant } -> (
        match Hashtbl.find_opt a.a_states variant with
        | Some e -> e.a_stale <- true
        | None -> ())
    | Frame.Start { variant; stamp } -> (
        (* the shipped files are in place: load through the exact
           recovery path [@open] uses, and publish at the leader's stamp *)
        match Store.load_session (Repo.variant_store svc.repo variant) with
        | Error e ->
            replay_error (variant ^ ": " ^ Store.load_error_to_string e)
        | Ok session ->
            Hashtbl.replace a.a_states variant
              { a_session = session; a_stamp = stamp; a_stale = false };
            let state = Engine.start session in
            Publish.publish_at svc.pub variant state stamp;
            advance_view svc variant state stamp;
            ack ~variant ~stamp)
    | Frame.Records { variant; stamp; data } -> (
        match Hashtbl.find_opt a.a_states variant with
        | None -> () (* never seeded: wait for this variant's [Start] *)
        | Some e when e.a_stale -> () (* reset pending; [Start] will reseed *)
        | Some e when stamp <= e.a_stamp -> () (* duplicate (snapshot overlap) *)
        | Some e ->
            (* append the exact leader bytes (fsync'd by [append_raw]) so
               the follower's journal stays promotion-ready, then replay
               them in memory — ack only after both *)
            if data <> "" then
              Journal.append_raw io
                (Store.log_file (Repo.variant_store svc.repo variant))
                data;
            let parsed = Journal.parse data in
            (match parsed.Journal.damage with
            | Some d ->
                replay_error (variant ^ ": " ^ Journal.damage_to_string d)
            | None -> ());
            let session =
              List.fold_left
                (fun s -> function
                  | Journal.Op (kind, op) -> (
                      match Core.Session.apply s ~kind op with
                      | Ok (s', _) -> s'
                      | Error err ->
                          replay_error
                            (variant ^ ": replay rejected: "
                            ^ Core.Apply.error_to_string err))
                  | Journal.Undo -> (
                      match Core.Session.undo s with
                      | Some s' -> s'
                      | None ->
                          replay_error (variant ^ ": undo with empty log")))
                e.a_session parsed.Journal.entries
            in
            e.a_session <- session;
            e.a_stamp <- stamp;
            let state = Engine.start session in
            Publish.publish_at svc.pub variant state stamp;
            advance_view svc variant state stamp;
            Obs.Metrics.incr a.ac_applied;
            ack ~variant ~stamp)
    | Frame.Live -> Atomic.set a.a_live true
    | Frame.Ack _ -> () (* leader→follower legs never carry acks *)
end

(* --- the follower: socket pump --------------------------------------------- *)

module Follower = struct
  type t = {
    f_apply : Apply.t;
    f_leader : Protocol.address;
    f_stop : bool Atomic.t;
    mutable f_conn : Unix.file_descr option;
    mutable f_thread : Thread.t option;
    fc_reconnects : Obs.Metrics.counter;
    fg_connected : Obs.Metrics.gauge;
  }

  let service f = f.f_apply.Apply.a_svc
  let live f = Apply.live f.f_apply
  let stamp f variant = Apply.stamp f.f_apply variant

  (* Connect and run the replication handshake: greeting, [@follow],
     then the stream is frames.  Bounded per call; the caller loops. *)
  let dial leader =
    match Transport.connect ~retry_for:1.0 leader with
    | Error _ as e -> e
    | Ok fd -> (
        let reader = Transport.reader fd in
        let rec greeting () =
          match Transport.read_line reader with
          | None -> Error "leader hung up during greeting"
          | Some line ->
              if Protocol.is_terminator line then Ok () else greeting ()
        in
        (* Total: a peer that resets mid-handshake (a server mid-restart
           during promotion churn raises ECONNRESET out of the greeting
           read) is a failed dial, never an exception — an exception here
           would escape [run] and silently kill the applier thread,
           leaving the follower serving stale state forever. *)
        match
          match greeting () with
          | Error _ as e -> e
          | Ok () ->
              Transport.write_all fd "@follow\n";
              Ok (fd, reader)
        with
        | Ok _ as r -> r
        | Error m ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Error m
        | exception (Unix.Unix_error _ | Sys_error _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Error "leader hung up during handshake")

  let rec dial_until_stopped stop leader =
    if Atomic.get stop then None
    else
      match dial leader with
      | Ok c -> Some c
      | Error _ -> dial_until_stopped stop leader

  (* Pump frames from one connection until it dies or [stop] is set. *)
  let pump f fd reader =
    let ack ~variant ~stamp =
      try Transport.write_all fd (Frame.to_string (Frame.Ack { variant; stamp }))
      with Unix.Unix_error _ | Sys_error _ -> ()
    in
    let rec go () =
      if not (Atomic.get f.f_stop) then
        match
          Frame.read
            ~read_line:(fun () -> Transport.read_line reader)
            ~read_exact:(fun n -> Transport.read_exact reader n)
        with
        | Ok (Some frame) ->
            Apply.frame f.f_apply ~ack frame;
            go ()
        | Ok None | Error _ -> ()
    in
    (* catch-all: whatever ends this connection, the applier thread must
       survive to reconnect and re-bootstrap — a dead applier is a
       follower that serves ever-staler state while claiming health *)
    try go () with _ -> ()

  let run f first =
    let serve conn =
      match conn with
      | None -> ()
      | Some (fd, reader) ->
          f.f_conn <- Some fd;
          Obs.Metrics.set f.fg_connected 1;
          pump f fd reader;
          f.f_conn <- None;
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Obs.Metrics.set f.fg_connected 0
    in
    serve (Some first);
    while not (Atomic.get f.f_stop) do
      (* anything already applied stays published (bounded staleness);
         the fresh bootstrap re-seeds every variant *)
      Apply.invalidate_all f.f_apply;
      match dial_until_stopped f.f_stop f.f_leader with
      | None -> ()
      | Some c ->
          Obs.Metrics.incr f.fc_reconnects;
          serve (Some c)
    done

  (** Bootstrap a follower of [leader] at [dir]: dial, read the stream
      head (through [Root]) to materialize the repository root, open the
      service in follower mode over it, then hand the connection to a
      background applier thread that replays the stream and reconnects
      (with {!Transport.connect}'s jittered backoff) until {!stop}.  The
      returned service serves [@open <v> readonly] from the replicated
      snapshots. *)
  let create ?(config = Service_types.default_config) ?io ?obs ~leader dir =
    let io = match io with Some io -> io | None -> Io.unix in
    let stop = Atomic.make false in
    match dial leader with
    | Error m -> Error ("cannot reach leader: " ^ m)
    | Ok (fd, reader) -> (
        (* consume the stream head up to [Root] so the repository root
           exists before the service opens the directory *)
        let rec head era =
          match
            Frame.read
              ~read_line:(fun () -> Transport.read_line reader)
              ~read_exact:(fun n -> Transport.read_exact reader n)
          with
          | Ok (Some (Frame.Hello { era })) -> head era
          | Ok (Some (Frame.Root { data })) -> Ok (era, data)
          | Ok (Some f) ->
              Error ("expected the stream head, got " ^ Frame.describe f)
          | Ok None -> Error "leader hung up during bootstrap"
          | Error m -> Error m
        in
        match head 0 with
        | Error m ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Error ("replication bootstrap failed: " ^ m)
        | Ok (era, root) -> (
            Io.mkdir_p io dir;
            Io.atomic_write io (Filename.concat dir "shrinkwrap.odl") root;
            match
              Service.open_service
                ~config:{ config with follower = true }
                ~io ?obs dir
            with
            | Error _ as e ->
                (try Unix.close fd with Unix.Unix_error _ -> ());
                e
            | Ok svc ->
                let apply = Apply.create svc in
                apply.Apply.a_era <- era;
                let obs = svc.i.obs in
                let f =
                  {
                    f_apply = apply;
                    f_leader = leader;
                    f_stop = stop;
                    f_conn = None;
                    f_thread = None;
                    fc_reconnects =
                      Obs.counter obs "swsd.repl.reconnects_total";
                    fg_connected = Obs.gauge obs "swsd.repl.connected";
                  }
                in
                f.f_thread <-
                  Some (Thread.create (fun () -> run f (fd, reader)) ());
                Ok f))

  (** Stop replaying: wakes the applier (shutting the live connection
      down unblocks its read) and joins it.  The service stays usable —
      the caller shuts it down through the normal server path. *)
  let stop f =
    Atomic.set f.f_stop true;
    (match f.f_conn with
    | Some fd -> (
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    | None -> ());
    (match f.f_thread with Some t -> Thread.join t | None -> ());
    f.f_thread <- None
end

(* --- promotion ------------------------------------------------------------- *)

(** Turn the replica repository at [dst] into the writer for everything
    the (dead) leader repository at [src] holds.  For each variant the
    {e leader's} directory is authoritative — every acked write is in its
    journal (ack-after-fsync), and a torn tail there is by construction
    unacknowledged — so each variant is recovered through fsck's
    longest-replayable-prefix rule and installed into [dst] via the
    ordinary {!Store.save_session} path.  Both directories' manifests are
    then fenced at a fresh era ([1 +] the highest era either side has
    seen), so a resurrected old leader refuses writes.

    Returns the new era and the per-variant outcomes ([Error] for a
    variant whose base schema is unrecoverable — it is skipped, not
    silently dropped). *)
let promote ?(src_io = Io.unix) ?(dst_io = Io.unix) ~src ~dst () =
  match Repo.open_dir ~io:src_io src with
  | Error m -> Error ("cannot open the old leader repository: " ^ m)
  | Ok src_repo -> (
      (* a replica that never bootstrapped has no root yet: seed it from
         the leader so [open_dir] succeeds *)
      let root_dst = Filename.concat dst "shrinkwrap.odl" in
      if not (dst_io.Io.file_exists root_dst) then begin
        Io.mkdir_p dst_io dst;
        Io.atomic_write dst_io root_dst
          (src_io.Io.read_file (Filename.concat src "shrinkwrap.odl"))
      end;
      match Repo.open_dir ~io:dst_io dst with
      | Error m -> Error ("cannot open the replica repository: " ^ m)
      | Ok dst_repo ->
          let variants = Repo.variant_names src_repo in
          (* membership-checked so probing one side's era never creates
             an empty variant directory on the other *)
          let era_of repo v =
            if Repo.mem_variant repo v then
              Store.stored_era (Repo.variant_store repo v)
            else 0
          in
          let high_water =
            List.fold_left
              (fun acc v -> max acc (max (era_of src_repo v) (era_of dst_repo v)))
              0
              (variants @ Repo.variant_names dst_repo)
          in
          let era = high_water + 1 in
          let results =
            List.map
              (fun v ->
                let src_store = Repo.variant_store src_repo v in
                let report = Store.fsck ~salvage:false src_store in
                let outcome =
                  match report.Store.fsck_session with
                  | None ->
                      Error
                        (String.concat "; "
                           (match report.Store.fsck_issues with
                           | [] -> [ "unrecoverable" ]
                           | issues -> issues))
                  | Some session ->
                      let dst_store = Repo.variant_store dst_repo v in
                      Store.save_session dst_store session;
                      Store.fence dst_store ~era;
                      Ok ()
                in
                (* fence the old home even when unrecoverable: whatever
                   is left there must not accept writes again *)
                Store.fence src_store ~era;
                (v, outcome))
              variants
          in
          (* variants only the replica knows (created after the snapshot
             that seeded it? impossible today, but cheap to fence) *)
          List.iter
            (fun v ->
              if not (List.mem v variants) then
                Store.fence (Repo.variant_store dst_repo v) ~era)
            (Repo.variant_names dst_repo);
          Ok (era, results))

(* --- the pool: leader + replicas under one supervisor ---------------------- *)

(** A supervised leader + N follower processes sharing one socket
    namespace.  The leader serves (and replicates) the repository at
    [dir] on [leader_socket]; follower [k] bootstraps its own repository
    at [dir/replica-k] and serves read-only on [replica-k.sock].

    Failure policy, each supervisor tick:
    - a dead {e follower} is respawned in place (it re-bootstraps from
      the leader — the stream is self-seeding);
    - a dead {e leader} triggers promotion: the first live follower is
      stopped, restarted with [--promote-from <old leader dir>] {e on
      the leader's socket} (the stale-socket probe in {!Transport.bind}
      reclaims it), and becomes the new leader; the remaining followers
      simply reconnect to the same address and re-bootstrap from it.
      With no live follower the leader is respawned in place (plain
      restart, no era bump needed — nobody else ever wrote). *)
module Pool = struct
  type t = {
    exe : string;
    replicas : int;
    worker_args : string list;
    leader_socket : string;
    follower_sockets : string array;
    replica_dirs : string array;
    mutable leader_dir : string;
    mutable leader_pid : int;  (** guarded by [mu] *)
    follower_pids : int array;  (** guarded by [mu]; -1 gone, -2 promoted *)
    mu : Mutex.t;
    promotions : int Atomic.t;
    restarts : int Atomic.t;
    mutable supervising : bool;
    mutable supervisor : Thread.t option;
  }

  let create ?(worker_args = []) ?sockets_dir ~exe ~dir ~replicas () =
    let sdir = match sockets_dir with Some d -> d | None -> dir in
    {
      exe;
      replicas;
      worker_args;
      leader_socket = Filename.concat sdir "leader.sock";
      follower_sockets =
        Array.init replicas (fun k ->
            Filename.concat sdir (Printf.sprintf "replica-%d.sock" k));
      replica_dirs =
        Array.init replicas (fun k ->
            Filename.concat dir (Printf.sprintf "replica-%d" k));
      leader_dir = dir;
      leader_pid = -1;
      follower_pids = Array.make replicas (-1);
      mu = Mutex.create ();
      promotions = Atomic.make 0;
      restarts = Atomic.make 0;
      supervising = false;
      supervisor = None;
    }

  let leader_socket t = t.leader_socket
  let follower_socket t k = t.follower_sockets.(k)
  let leader_dir t = t.leader_dir
  let promotions t = Atomic.get t.promotions

  let leader_pid t =
    Mutex.lock t.mu;
    let p = t.leader_pid in
    Mutex.unlock t.mu;
    p

  let spawn t args =
    let argv = Array.of_list ((t.exe :: args) @ t.worker_args) in
    let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
    Fun.protect
      ~finally:(fun () ->
        try Unix.close devnull with Unix.Unix_error _ -> ())
      (fun () -> Unix.create_process t.exe argv devnull devnull Unix.stderr)

  let spawn_leader ?promote_from t =
    spawn t
      ([ "serve"; t.leader_dir; "--socket"; t.leader_socket; "--replicate" ]
      @
      match promote_from with
      | Some d -> [ "--promote-from"; d ]
      | None -> [])

  let spawn_follower t k =
    spawn t
      [
        "serve";
        t.replica_dirs.(k);
        "--follow";
        t.leader_socket;
        "--socket";
        t.follower_sockets.(k);
      ]

  let probe_pid pid =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ -> `Alive
    | _, _ -> `Dead
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Alive
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> `Dead

  let signal_pid signum p =
    if p >= 0 then try Unix.kill p signum with Unix.Unix_error _ -> ()

  let reap ?(grace = 10.) p =
    if p >= 0 then begin
      let deadline = Unix.gettimeofday () +. grace in
      let rec go () =
        match probe_pid p with
        | `Dead -> ()
        | `Alive ->
            if Unix.gettimeofday () > deadline then begin
              signal_pid Sys.sigkill p;
              try ignore (Unix.waitpid [] p) with Unix.Unix_error _ -> ()
            end
            else begin
              Thread.delay 0.02;
              go ()
            end
      in
      go ()
    end

  let leader_alive t =
    let p = leader_pid t in
    p >= 0 && probe_pid p = `Alive

  (* One supervision pass; holds [mu] across the whole decision so stop
     and the tick never race a half-updated pid table. *)
  let supervise_tick t =
    Mutex.lock t.mu;
    if t.supervising then begin
      if t.leader_pid >= 0 && probe_pid t.leader_pid = `Dead then begin
        (* promote the first live follower; fall back to a plain restart *)
        let candidate = ref (-1) in
        Array.iteri
          (fun k p ->
            if !candidate < 0 && p >= 0 && probe_pid p = `Alive then
              candidate := k)
          t.follower_pids;
        if !candidate >= 0 then begin
          let k = !candidate in
          let fp = t.follower_pids.(k) in
          signal_pid Sys.sigterm fp;
          reap ~grace:5. fp;
          t.follower_pids.(k) <- -2;
          let old_dir = t.leader_dir in
          t.leader_dir <- t.replica_dirs.(k);
          t.leader_pid <- spawn_leader ~promote_from:old_dir t;
          Atomic.incr t.promotions
        end
        else begin
          (* no live follower: restart in place, self-promoting so the
             journal is fsck-recovered and — if this leader was once
             fenced out by a promotion — the era moves past the fence *)
          t.leader_pid <- spawn_leader ~promote_from:t.leader_dir t;
          Atomic.incr t.restarts
        end
      end;
      Array.iteri
        (fun k p ->
          if p >= 0 && probe_pid p = `Dead then begin
            t.follower_pids.(k) <- spawn_follower t k;
            Atomic.incr t.restarts
          end)
        t.follower_pids
    end;
    Mutex.unlock t.mu

  let wait_ready socket ~deadline =
    let rec go () =
      match
        Transport.Client.connect_to ~retry_for:0.3 (Protocol.Unix_path socket)
      with
      | Ok c ->
          ignore (Transport.Client.read_response c);
          Transport.Client.close c;
          Ok ()
      | Error m ->
          if Unix.gettimeofday () > deadline then
            Error (socket ^ " not ready: " ^ m)
          else go ()
    in
    go ()

  (** Spawn the leader, wait for it to serve, then the followers; start
      the supervisor once everything accepts connections. *)
  let start ?(wait_for = 20.) t =
    let deadline = Unix.gettimeofday () +. wait_for in
    Mutex.lock t.mu;
    if t.leader_pid < 0 then t.leader_pid <- spawn_leader t;
    Mutex.unlock t.mu;
    match wait_ready t.leader_socket ~deadline with
    | Error _ as e -> e
    | Ok () -> (
        Mutex.lock t.mu;
        Array.iteri
          (fun k p -> if p = -1 then t.follower_pids.(k) <- spawn_follower t k)
          t.follower_pids;
        Mutex.unlock t.mu;
        let rec followers k =
          if k >= t.replicas then Ok ()
          else
            match wait_ready t.follower_sockets.(k) ~deadline with
            | Ok () -> followers (k + 1)
            | Error _ as e -> e
        in
        match followers 0 with
        | Error _ as e -> e
        | Ok () ->
            t.supervising <- true;
            t.supervisor <-
              Some
                (Thread.create
                   (fun () ->
                     while t.supervising do
                       supervise_tick t;
                       Thread.delay 0.05
                     done)
                   ());
            Ok ())

  (** Kill the leader the hard way (the chaos/bench scenario) and wait
      until the supervisor has promoted a follower in its place. *)
  let kill_leader ?(wait_for = 20.) t =
    let before = promotions t in
    signal_pid Sys.sigkill (leader_pid t);
    let deadline = Unix.gettimeofday () +. wait_for in
    let rec go () =
      if promotions t > before && leader_alive t then Ok ()
      else if Unix.gettimeofday () > deadline then
        Error "no promotion within the wait budget"
      else begin
        Thread.delay 0.02;
        go ()
      end
    in
    go ()

  let stop ?(grace = 10.) t =
    t.supervising <- false;
    (match t.supervisor with Some th -> Thread.join th | None -> ());
    t.supervisor <- None;
    Mutex.lock t.mu;
    let pids = t.leader_pid :: Array.to_list t.follower_pids in
    t.leader_pid <- -1;
    Array.fill t.follower_pids 0 t.replicas (-1);
    Mutex.unlock t.mu;
    List.iter (signal_pid Sys.sigterm) pids;
    List.iter (reap ~grace) pids
end
