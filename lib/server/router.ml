(** The sharding front end: accept client connections, consistent-hash
    variant names onto a {!Shard_pool} of worker processes, and forward
    the line protocol verbatim.

    {b Hashing.} {!shard_of} is rendezvous (highest-random-weight) hashing
    over FNV-1a 64-bit digests of ["<variant>#<shard>"]: deterministic (a
    pure function of the name and the shard count, so the same variant
    lands on the same shard across router restarts), total (every name
    maps to exactly one shard), and minimally disruptive (going from [n]
    to [n+1] shards only moves names onto the {e new} shard).

    {b Connection model.} One router connection holds at most one backend
    connection per shard, opened lazily.  Attachment ([@open]/[@new]) is
    mirrored locally so designer commands route to the attached variant's
    shard; when a backend connection is re-established after a worker
    crash/restart, the router replays the [@open] before forwarding — the
    client never has to know the worker moved under it.

    {b What is never retried.} A designer command that may mutate
    ([Designer.Command.mutates]) is sent at most once: if the backend
    connection dies mid-request the client gets [!busy]/[!retry-after],
    never a silent resend — a lost ack must not become a double apply.
    Control requests and read-class commands are retried once on a fresh
    backend connection.

    {b Merging.} [@stats] fans out to every shard and merges: text as
    [== shard-k ==] sections, JSON as one object keyed by shard, each
    including the router's own counters under ["router"].  [@list] is
    served by any one healthy shard — the pool shares a single repository
    directory, so each worker already sees the full variant list. *)

module Io = Repository.Io

(* --- consistent hashing ---------------------------------------------------- *)

(* FNV-1a, 64-bit *)
let fnv1a64 s =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 1099511628211L)
    s;
  !h

let weight name k = fnv1a64 (name ^ "#" ^ string_of_int k)

let shard_of ~shards name =
  if shards <= 1 then 0
  else begin
    let best = ref 0 and best_w = ref (weight name 0) in
    for k = 1 to shards - 1 do
      let w = weight name k in
      if Int64.unsigned_compare w !best_w > 0 then begin
        best := k;
        best_w := w
      end
    done;
    !best
  end

(* --- router state ---------------------------------------------------------- *)

type instruments = {
  obs : Obs.t;
  c_requests : Obs.Metrics.counter;
  c_forwarded : Obs.Metrics.counter array;  (** per shard *)
  c_retries : Obs.Metrics.counter;
  c_replays : Obs.Metrics.counter;  (** @open replays after reconnect *)
  c_unavailable : Obs.Metrics.counter;
  g_conns : Obs.Metrics.gauge;
  h_forward : Obs.Histo.t;
}

let make_instruments obs shards =
  {
    obs;
    c_requests = Obs.counter obs "swsd.router.requests_total";
    c_forwarded =
      Array.init shards (fun k ->
          Obs.counter obs (Printf.sprintf "swsd.router.shard.%d.forwarded_total" k));
    c_retries = Obs.counter obs "swsd.router.retries_total";
    c_replays = Obs.counter obs "swsd.router.open_replays_total";
    c_unavailable = Obs.counter obs "swsd.router.unavailable_total";
    g_conns = Obs.gauge obs "swsd.router.connections";
    h_forward = Obs.histo obs "swsd.router.forward_seconds";
  }

type t = {
  pool : Shard_pool.t;
  listen : Protocol.address;
  listen_fd : Unix.file_descr;
  connect_retry : float;
  retry_after_ms : int;
  stop_requested : bool Atomic.t;
  mu : Mutex.t;
  clients : (int, Unix.file_descr) Hashtbl.t;  (** live client fds, by id *)
  next_id : int Atomic.t;
  i : instruments;
}

(* per-client-connection forwarding state *)
type conn_state = {
  reader : Transport.reader;
  fd : Unix.file_descr;
  mutable attached : (string * bool) option;  (** variant, readonly *)
  backends : (int, Transport.Client.c) Hashtbl.t;
}

let create ?(backlog = 64) ?(obs = Obs.noop) ?(connect_retry = 5.0)
    ?(retry_after_ms = 200) ~listen pool =
  match Transport.bind ~backlog listen with
  | Error m -> Error m
  | Ok fd ->
      Ok
        {
          pool;
          listen = Transport.bound_address fd listen;
          listen_fd = fd;
          connect_retry;
          retry_after_ms;
          stop_requested = Atomic.make false;
          mu = Mutex.create ();
          clients = Hashtbl.create 16;
          next_id = Atomic.make 0;
          i = make_instruments obs (Shard_pool.shards pool);
        }

let listen_address t = t.listen
let pool t = t.pool

(* --- backend management ---------------------------------------------------- *)

let drop_backend (st : conn_state) shard =
  match Hashtbl.find_opt st.backends shard with
  | None -> ()
  | Some c ->
      Hashtbl.remove st.backends shard;
      Transport.Client.close c

let open_line v ro = "@open " ^ v ^ if ro then " readonly" else ""

let status_ok lines =
  match List.rev lines with
  | last :: _ ->
      String.length last >= 3 && String.sub last 0 3 = "!ok"
  | [] -> false

let send_on c line =
  match Transport.Client.request c line with
  | Some lines -> Result.Ok lines
  | None -> Result.Error (`Conn "connection closed by shard")
  | exception Unix.Unix_error (e, _, _) ->
      Result.Error (`Conn (Unix.error_message e))
  | exception Sys_error m -> Result.Error (`Conn m)

(* Find or lazily (re-)establish the backend connection for [shard]; on a
   fresh connection, consume the greeting and replay this connection's
   attachment if its variant lives on that shard — this is how the router
   re-routes transparently after the supervisor restarts a worker. *)
let backend t (st : conn_state) shard =
  match Hashtbl.find_opt st.backends shard with
  | Some c -> Result.Ok c
  | None -> (
      match
        Transport.Client.connect_to ~retry_for:t.connect_retry
          (Protocol.Unix_path (Shard_pool.socket t.pool shard))
      with
      | Result.Error m -> Result.Error (`Conn m)
      | Result.Ok c -> (
          match Transport.Client.read_response c with
          | None ->
              Transport.Client.close c;
              Result.Error (`Conn "shard closed during greeting")
          | Some _greeting -> (
              let replay =
                match st.attached with
                | Some (v, ro)
                  when shard_of ~shards:(Shard_pool.shards t.pool) v = shard
                  -> (
                    Obs.Metrics.incr t.i.c_replays;
                    match send_on c (open_line v ro) with
                    | Result.Ok lines when status_ok lines -> Result.Ok ()
                    | Result.Ok lines -> Result.Error (`Refused lines)
                    | Result.Error _ as e -> e)
                | _ -> Result.Ok ()
              in
              match replay with
              | Result.Ok () ->
                  Hashtbl.replace st.backends shard c;
                  Result.Ok c
              | Result.Error e ->
                  Transport.Client.close c;
                  Result.Error e)))

(* May this request line be resent on a fresh backend connection after a
   connection failure?  Mutations may have been applied and acked by a
   worker that died before we read the ack: resending could double-apply,
   so they are answered [!busy] instead. *)
let resend_safe line =
  match Protocol.parse_request line with
  | Result.Error _ -> true  (* any worker answers this with the same !err *)
  | Result.Ok (Protocol.List | Protocol.Ping | Protocol.Stats _) -> true
  | Result.Ok (Protocol.Open _ | Protocol.Close | Protocol.Quit) -> true
  | Result.Ok (Protocol.Query _) -> true  (* pure read of published views *)
  | Result.Ok (Protocol.New _) -> false  (* creates a variant: a mutation *)
  | Result.Ok (Protocol.Branch _) -> false  (* creates the child variant *)
  | Result.Ok (Protocol.Merge { dry_run; _ }) ->
      dry_run (* a dry run only classifies; a real merge mutates [dest] *)
  | Result.Ok (Protocol.Command l) -> (
      match Designer.Command.parse l with
      | exception Designer.Command.Bad_command _ -> true
      | cmd -> not (Designer.Command.mutates cmd))

let unavailable t shard m =
  Obs.Metrics.incr t.i.c_unavailable;
  Protocol.to_lines
    (Protocol.busy ~retry_after_ms:t.retry_after_ms
       (Printf.sprintf "shard %d unavailable: %s" shard m))

(* Forward one request line to [shard]; returns full response lines
   (terminator included), synthesizing [!busy] when the shard is
   unreachable. *)
let forward t st shard line =
  let t0 = Unix.gettimeofday () in
  let retryable = resend_safe line in
  let rec go attempt =
    let outcome =
      match backend t st shard with
      | Result.Error e -> Result.Error e
      | Result.Ok c -> (
          match send_on c line with
          | Result.Ok _ as ok -> ok
          | Result.Error _ as e -> e)
    in
    match outcome with
    | Result.Ok lines -> lines
    | Result.Error (`Refused lines) ->
        (* the @open replay was answered with an error: surface it and
           force a fresh replay on the next request *)
        drop_backend st shard;
        lines
    | Result.Error (`Conn m) ->
        drop_backend st shard;
        if retryable && attempt = 0 then begin
          Obs.Metrics.incr t.i.c_retries;
          go 1
        end
        else unavailable t shard m
  in
  let lines = go 0 in
  Obs.Metrics.incr t.i.c_forwarded.(shard);
  Obs.Histo.observe t.i.h_forward (Unix.gettimeofday () -. t0);
  lines

(* --- per-request dispatch -------------------------------------------------- *)

let strip_body lines =
  let p = Protocol.body_prefix in
  let pl = String.length p in
  lines
  |> List.filter_map (fun l ->
         if String.length l >= pl && String.sub l 0 pl = p then
           Some (String.sub l pl (String.length l - pl))
         else None)
  |> String.concat "\n"

(* [@list]: the pool shares one repository directory, so any healthy
   shard serves the complete list; walk the shards until one answers. *)
let do_list t st line =
  let shards = Shard_pool.shards t.pool in
  let rec go k last_err =
    if k >= shards then unavailable t (max 0 (shards - 1)) last_err
    else
      match backend t st k with
      | Result.Error (`Conn m) -> go (k + 1) m
      | Result.Error (`Refused lines) ->
          drop_backend st k;
          lines
      | Result.Ok c -> (
          match send_on c line with
          | Result.Ok lines ->
              Obs.Metrics.incr t.i.c_forwarded.(k);
              lines
          | Result.Error (`Conn m) ->
              drop_backend st k;
              go (k + 1) m)
  in
  go 0 "no shards"

let router_snapshot t =
  Obs.Metrics.set t.i.g_conns
    (Mutex.lock t.mu;
     let n = Hashtbl.length t.clients in
     Mutex.unlock t.mu;
     n);
  Obs.snapshot
    ~notes:
      [
        ("router.shards", string_of_int (Shard_pool.shards t.pool));
        ("router.restarts", string_of_int (Shard_pool.restarts t.pool));
        ("router.listen", Protocol.address_to_string t.listen);
      ]
    t.i.obs

(* [@stats [json]]: every shard's snapshot plus the router's own, merged
   into one document. *)
let do_stats t st fmt line =
  if not (Obs.enabled t.i.obs) then
    Protocol.to_lines
      (Protocol.err "observability is disabled (server started with --no-obs)")
  else begin
    let shards = Shard_pool.shards t.pool in
    let rec collect k acc =
      if k >= shards then Result.Ok (List.rev acc)
      else
        let label = Printf.sprintf "shard-%d" k in
        match backend t st k with
        | Result.Error (`Conn m) -> Result.Error (`Down (k, m))
        | Result.Error (`Refused lines) ->
            drop_backend st k;
            Result.Error (`Lines lines)
        | Result.Ok c -> (
            match send_on c line with
            | Result.Error (`Conn m) ->
                drop_backend st k;
                Result.Error (`Down (k, m))
            | Result.Ok lines when not (status_ok lines) ->
                (* e.g. a worker running --no-obs: propagate its refusal *)
                Result.Error (`Lines lines)
            | Result.Ok lines ->
                Obs.Metrics.incr t.i.c_forwarded.(k);
                collect (k + 1) ((label, strip_body lines) :: acc))
    in
    match collect 0 [] with
    | Result.Error (`Down (k, m)) -> unavailable t k m
    | Result.Error (`Lines lines) -> lines
    | Result.Ok parts ->
        let sn = router_snapshot t in
        let merged =
          match fmt with
          | `Text ->
              Obs.Export.merge_labeled_text
                (("router", Obs.Export.to_text sn) :: parts)
          | `Json ->
              Obs.Export.merge_labeled_json
                (("router", Obs.Export.to_json sn) :: parts)
        in
        Protocol.to_lines (Protocol.ok [ String.trim merged ])
  end

(* [@query all ...]: every shard answers only for the variants it owns
   (workers filter by [shard_span], the same rendezvous hash {!shard_of}
   steers by), so the per-variant blocks are disjoint; the merge is
   concatenation re-sorted by the [= variant] header.  Body lines are
   always indented two spaces, so a header line is unambiguous — and the
   single-process answer already emits blocks in sorted-variant order, so
   the merged bytes are identical to what one unsharded server says. *)
let do_query_all t st line =
  let shards = Shard_pool.shards t.pool in
  let rec collect k acc =
    if k >= shards then Result.Ok (List.rev acc)
    else
      match backend t st k with
      | Result.Error (`Conn m) -> Result.Error (`Down (k, m))
      | Result.Error (`Refused lines) ->
          drop_backend st k;
          Result.Error (`Lines lines)
      | Result.Ok c -> (
          match send_on c line with
          | Result.Error (`Conn m) ->
              drop_backend st k;
              Result.Error (`Down (k, m))
          | Result.Ok lines when not (status_ok lines) ->
              Result.Error (`Lines lines)
          | Result.Ok lines ->
              Obs.Metrics.incr t.i.c_forwarded.(k);
              collect (k + 1) (strip_body lines :: acc))
  in
  match collect 0 [] with
  | Result.Error (`Down (k, m)) -> unavailable t k m
  | Result.Error (`Lines lines) -> lines
  | Result.Ok parts ->
      let lines =
        List.concat_map
          (fun s -> if s = "" then [] else String.split_on_char '\n' s)
          parts
      in
      let blocks =
        List.fold_left
          (fun acc l ->
            if String.length l >= 2 && String.sub l 0 2 = "= " then [ l ] :: acc
            else
              match acc with
              | b :: rest -> (l :: b) :: rest
              | [] -> [ [ l ] ] (* headerless stray: keep, never drop data *))
          [] lines
        |> List.rev_map List.rev |> List.sort compare
      in
      Protocol.to_lines (Protocol.ok (List.concat blocks))

let handle_request t st line =
  Obs.Metrics.incr t.i.c_requests;
  let shards = Shard_pool.shards t.pool in
  match Protocol.parse_request line with
  | Result.Error m -> Protocol.to_lines (Protocol.err m)
  | Result.Ok Protocol.Ping -> Protocol.to_lines (Protocol.ok [ "pong" ])
  | Result.Ok Protocol.List -> do_list t st line
  | Result.Ok (Protocol.Stats fmt) -> do_stats t st fmt line
  | Result.Ok (Protocol.Open { variant; readonly }) -> (
      match st.attached with
      | Some (v, _) when v <> variant ->
          (* same refusal the single-process service gives; forwarding
             would attach a second variant on another shard *)
          Protocol.to_lines
            (Protocol.err ("already attached to " ^ v ^ "; @close first"))
      | _ ->
          let lines = forward t st (shard_of ~shards variant) line in
          if status_ok lines then st.attached <- Some (variant, readonly);
          lines)
  | Result.Ok (Protocol.New variant) -> (
      match st.attached with
      | Some (v, _) when v <> variant ->
          Protocol.to_lines
            (Protocol.err ("already attached to " ^ v ^ "; @close first"))
      | _ ->
          let lines = forward t st (shard_of ~shards variant) line in
          if status_ok lines then st.attached <- Some (variant, false);
          lines)
  | Result.Ok Protocol.Close -> (
      match st.attached with
      | None -> Protocol.to_lines (Protocol.err "no open session")
      | Some (v, _) ->
          let lines = forward t st (shard_of ~shards v) line in
          if status_ok lines then st.attached <- None;
          lines)
  | Result.Ok Protocol.Quit ->
      (* let every backend detach/snapshot for this connection *)
      Hashtbl.iter
        (fun _ c -> match send_on c "@quit" with _ -> ())
        st.backends;
      st.attached <- None;
      Protocol.to_lines (Protocol.ok [ "bye" ])
  | Result.Ok (Protocol.Query q) -> (
      match Query.Parser.parse q with
      (* malformed and [explain] queries get the same answer from every
         shard: serve from any one healthy worker, like [@list] *)
      | Result.Error _ -> do_list t st line
      | Result.Ok pq when pq.Query.Ast.q_explain -> do_list t st line
      | Result.Ok { Query.Ast.q_atom = Query.Ast.Branches _; _ } ->
          (* repository-scoped: the lineage records live in the shared
             stores, so any healthy shard renders the same lines *)
          do_list t st line
      | Result.Ok pq when pq.Query.Ast.q_all -> do_query_all t st line
      | Result.Ok _ -> (
          match st.attached with
          | None ->
              Protocol.to_lines
                (Protocol.err
                   "no open session; use: @open <variant> (or: @query all ...)")
          | Some (v, _) -> forward t st (shard_of ~shards v) line))
  | Result.Ok (Protocol.Branch { child; _ }) ->
      (* the child hashes independently of its parent: the branch runs on
         the shard that will own the child (the parent is read from the
         shared store, lock-free), so later writes land where the child
         session lives *)
      forward t st (shard_of ~shards child) line
  | Result.Ok (Protocol.Merge { dest; _ }) ->
      (* route by destination: merge takes the writer lock on [dest] only
         and reads the source branch from the shared store *)
      forward t st (shard_of ~shards dest) line
  | Result.Ok (Protocol.Command _) -> (
      match st.attached with
      | None ->
          Protocol.to_lines (Protocol.err "no open session; use: @open <variant>")
      | Some (v, _) -> forward t st (shard_of ~shards v) line)

(* --- connection loop ------------------------------------------------------- *)

let handle_conn t fd =
  let id = Atomic.fetch_and_add t.next_id 1 in
  Mutex.lock t.mu;
  Hashtbl.replace t.clients id fd;
  Mutex.unlock t.mu;
  let st =
    { reader = Transport.reader fd; fd; attached = None; backends = Hashtbl.create 4 }
  in
  let finish () =
    Hashtbl.iter (fun _ c -> Transport.Client.close c) st.backends;
    Hashtbl.reset st.backends;
    Mutex.lock t.mu;
    Hashtbl.remove t.clients id;
    Mutex.unlock t.mu;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  (try
     Transport.write_all fd
       (Protocol.to_string (Protocol.ok [ "swsd design service" ]));
     let rec loop () =
       if not (Atomic.get t.stop_requested) then
         match Transport.read_line st.reader with
         | None -> ()
         | Some line ->
             let stop_after = String.trim line = "@quit" in
             let lines = handle_request t st line in
             Transport.write_all st.fd (String.concat "\n" lines ^ "\n");
             if not stop_after then loop ()
     in
     loop ()
   with
  | Unix.Unix_error _ | Sys_error _ -> ()
  | Io.Crash -> ());
  finish ()

(** Ask the accept loop to wind down; safe from a signal handler.  Live
    client connections are closed so their threads exit promptly. *)
let stop t =
  if not (Atomic.exchange t.stop_requested true) then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Mutex.lock t.mu;
    let fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.clients [] in
    Mutex.unlock t.mu;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fds
  end

let install_signal_handlers t =
  let handle _ = stop t in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle handle)
   with Invalid_argument _ | Sys_error _ -> ());
  Transport.ignore_sigpipe ()

(** Accept and route until {!stop}.  Blocks the calling thread; spawns
    one thread per client connection.  Does not manage the pool: callers
    start/stop the {!Shard_pool} around this. *)
let run t =
  Transport.ignore_sigpipe ();
  (try Unix.set_nonblock t.listen_fd with Unix.Unix_error _ -> ());
  let rec accept_loop () =
    if not (Atomic.get t.stop_requested) then begin
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> accept_loop ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | client_fd, _ ->
              Unix.clear_nonblock client_fd;
              ignore (Thread.create (fun () -> handle_conn t client_fd) ());
              accept_loop ()
          | exception
              Unix.Unix_error
                ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED),
                  _,
                  _ ) ->
              accept_loop ()
          | exception Unix.Unix_error _ -> Atomic.set t.stop_requested true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> Atomic.set t.stop_requested true
    end
  in
  accept_loop ();
  match t.listen with
  | Protocol.Unix_path p -> (
      try Unix.unlink p with Unix.Unix_error _ -> ())
  | Protocol.Tcp _ -> ()
