(** The admin path: session lifecycle ([@open]/[@close]/[@quit]), the
    [@stats] snapshot, the idle reaper, and shutdown.

    All of it runs under the variant writer lock (lifecycle changes are
    writes), and everything that frees a session goes through
    {!Service_types.evict}, which retracts the published snapshot and flips
    the variant's epoch so lock-free readers notice.

    The idle reaper is defined against {e both} sides of the split: a
    variant is idle only when its writer-side [last_used] {e and} its
    read-side {!Publish.last_touched} are past the timeout, and no thread
    is currently inside a published snapshot ({!Publish.readers}).  A
    reader that slips in after the check finishes safely on its immutable
    snapshot and reattaches on its next request. *)

open Service_types

(* Load a variant from disk into a fresh shared session and publish its
   state.  Caller holds the variant writer lock. *)
let load_session t variant =
  let flock =
    if t.config.use_file_locks then
      let path =
        Filename.concat (Repo.variant_dir t.repo variant) Locks.lock_file_name
      in
      match Locks.lock_file path with
      | Ok l -> Ok (Some l)
      | Error m -> Error ("variant is locked by another process: " ^ m)
    else Ok None
  in
  match flock with
  | Error _ as e -> e
  | Ok flock -> (
      (* Era fencing, checked {e before} the variant is opened: opening
         replays the journal and may rewrite a torn tail, and a fenced-out
         writer must not touch the files a newer era now owns.  The store
         manifest carries the high-water era ({!Store.fence}); a promotion
         bumps it on both the old and new homes of every variant. *)
      match
        match Repo.variant_store t.repo variant with
        | store -> Store.stored_era store
        | exception _ -> 0
      with
      | stored when stored > t.config.era ->
          Option.iter Locks.unlock_file flock;
          Error
            (Printf.sprintf
               "variant is fenced: stored era %d > writer era %d (a newer \
                writer took over after promotion)"
               stored t.config.era)
      | _ -> (
      match Repo.open_variant t.repo variant with
      | Error e ->
          Option.iter Locks.unlock_file flock;
          Error (Repo.open_error_to_string e)
      | exception e ->
          (* an injected crash while reading/repairing; nothing attached *)
          Option.iter Locks.unlock_file flock;
          Error ("could not load variant: " ^ Printexc.to_string e)
      | Ok session -> (
          match Repo.variant_store t.repo variant with
          | store ->
              let s =
                {
                  variant;
                  store;
                  conns = Hashtbl.create 4;
                  state = Engine.start session;
                  dirty = false;
                  last_used = t.config.now ();
                  flock;
                }
              in
              locked t (fun () -> Hashtbl.replace t.sessions variant s);
              (* the stamp continues the variant's sequence across
                 evict/reload cycles: readers never see it go backwards *)
              ignore (publish t s : int);
              (* a branched child's sequence starts at its fork stamp, so
                 [#version] on its reads (readonly repl included) reports
                 where on the parent's timeline it forked, and lineage
                 diffs can anchor there *)
              (match Store.lineage store with
              | Some (_, fork) when fork > Publish.seq t.pub variant ->
                  Publish.publish_at t.pub variant s.state fork
              | Some _ | None -> ());
              (* recovery may have repaired (rewritten) the journal, so a
                 follower tracking the old bytes must re-seed *)
              invalidate t variant;
              Obs.Metrics.incr t.i.c_opened;
              Ok s
          | exception e ->
              Option.iter Locks.unlock_file flock;
              Error ("could not open variant store: " ^ Printexc.to_string e))))

let attach t (s : session) (conn : conn) ~readonly =
  locked t (fun () -> Hashtbl.replace s.conns conn.id ());
  conn.variant <- Some s.variant;
  conn.readonly <- readonly;
  s.last_used <- t.config.now ()

let do_open t (conn : conn) variant ~create ~readonly =
  match conn.variant with
  | Some v when v = variant ->
      Protocol.ok
        ~version:(Publish.seq t.pub variant)
        [ "already attached to " ^ variant ]
  | Some v -> Protocol.err ("already attached to " ^ v ^ "; @close first")
  | None when t.config.follower ->
      (* A follower never loads sessions from disk — its published
         snapshots come from the replication applier, which owns the
         variant's files.  [@open v readonly] attaches to whatever is
         published; everything else belongs on the leader. *)
      if create then Protocol.err "this server is a follower; create variants on the leader"
      else if not readonly then
        Protocol.err
          "this server is a follower; attach with: @open <variant> readonly \
           (or write to the leader)"
      else (
        match Publish.read t.pub variant with
        | Some (_, stamp) ->
            conn.variant <- Some variant;
            conn.readonly <- true;
            Protocol.ok ~version:stamp
              [ "attached to " ^ variant ^ " (readonly, replica)" ]
        | None ->
            if Repo.mem_variant t.repo variant then
              Protocol.err ("variant " ^ variant ^ " is not yet replicated; retry shortly")
            else Protocol.err ("no variant named " ^ variant))
  | None ->
      with_writer t variant (fun () ->
          let created =
            if not create then Ok false
            else
              match Repo.create_variant t.repo variant with
              | Ok _ -> Ok true
              | Error m -> Error m
              | exception e ->
                  Error ("could not create variant: " ^ Printexc.to_string e)
          in
          match created with
          | Error m -> Protocol.err m
          | Ok created -> (
              match find_session t variant with
              | Some s ->
                  attach t s conn ~readonly;
                  Protocol.ok
                    ~version:(Publish.seq t.pub variant)
                    [
                      Printf.sprintf "attached to %s (%d client(s))%s" variant
                        (Hashtbl.length s.conns)
                        (if readonly then " readonly" else "");
                    ]
              | None -> (
                  if not (Repo.mem_variant t.repo variant) then
                    Protocol.err ("no variant named " ^ variant)
                  else begin
                    (* Loading replays the journal and may rewrite a torn
                       tail: no batch append may race that (we only learn
                       the journal path once the store is open, hence
                       drain {e all} lanes), and a lane poisoned by a
                       failed flush is safe again afterwards — recovery
                       just made the tail known-good. *)
                    (match t.commit with
                    | Some gc -> Group_commit.drain_all gc
                    | None -> ());
                    match load_session t variant with
                    | Error m -> Protocol.err m
                    | Ok s ->
                        (match t.commit with
                        | Some gc -> Group_commit.reset gc ~path:(log_path s)
                        | None -> ());
                        attach t s conn ~readonly;
                        Protocol.ok
                          ~version:(Publish.seq t.pub variant)
                          [
                            (if created then "created and attached to " ^ variant
                             else "attached to " ^ variant)
                            ^ (if readonly then " (readonly)" else "");
                          ]
                  end)))

(* Detach [conn]; the last detach snapshots and frees the session.  Caller
   holds the variant writer lock. *)
let release t (s : session) (conn : conn) ~snapshot_on_free =
  locked t (fun () -> Hashtbl.remove s.conns conn.id);
  conn.variant <- None;
  conn.readonly <- false;
  if locked t (fun () -> Hashtbl.length s.conns) = 0 then begin
    let warn =
      if snapshot_on_free then
        match snapshot t s with
        | Ok () -> []
        | Error m -> [ "snapshot failed (journal remains authoritative): " ^ m ]
      else []
    in
    evict t s;
    warn
  end
  else []

let do_close t (conn : conn) =
  match conn.variant with
  | None -> Protocol.err "no open session"
  | Some variant ->
      with_writer t variant (fun () ->
          match find_session t variant with
          | None ->
              (* reaped underneath us; nothing left to release *)
              conn.variant <- None;
              conn.readonly <- false;
              Protocol.ok [ "session was already closed (idle)" ]
          | Some s ->
              let warn = release t s conn ~snapshot_on_free:true in
              Protocol.ok (warn @ [ "closed" ]))

let disconnect t (conn : conn) =
  match conn.variant with
  | None -> ()
  | Some variant ->
      with_writer t variant (fun () ->
          (match find_session t variant with
          | None ->
              conn.variant <- None;
              conn.readonly <- false
          | Some s -> ignore (release t s conn ~snapshot_on_free:true));
          Protocol.ok [])
      |> ignore

(* --- the @stats snapshot --------------------------------------------------- *)

(** Render the observability snapshot.  Dynamic state that has no standing
    instrument — per-variant breaker history, attached sessions, the
    publication stamp/epoch/live-reader counts — rides along as notes; the
    sessions/inflight gauges are refreshed here, at read time, rather than
    maintained on every transition. *)
let do_stats t fmt =
  let i = t.i in
  if not (Obs.enabled i.obs) then
    Protocol.err "observability is disabled (server started with --no-obs)"
  else begin
    Obs.Metrics.set i.g_inflight (Atomic.get t.inflight);
    let now = t.config.now () in
    let notes =
      locked t (fun () ->
          Obs.Metrics.set i.g_sessions (Hashtbl.length t.sessions);
          let sessions =
            Hashtbl.fold
              (fun v s acc ->
                ( "session." ^ v,
                  Printf.sprintf "%d client(s)%s, version %d, seq %d, epoch %d, readers %d"
                    (Hashtbl.length s.conns)
                    (if s.dirty then ", dirty" else "")
                    (Core.Session.version s.state.Engine.session)
                    (Publish.seq t.pub v) (Publish.epoch t.pub v)
                    (Publish.readers t.pub v) )
                :: acc)
              t.sessions []
          in
          let breakers =
            Hashtbl.fold
              (fun v b acc ->
                let in_state =
                  match Breaker.time_in_state b ~now with
                  | Some s -> Printf.sprintf " (%.1fs in state)" s
                  | None -> ""
                in
                ("breaker." ^ v, Breaker.describe b ^ in_state) :: acc)
              t.breakers []
          in
          (* view freshness: how far each materialized query view trails
             its variant's publication stamp (0 = exactly current) *)
          let lag = ref 0 in
          let views =
            Hashtbl.fold
              (fun v cell acc ->
                match Atomic.get cell with
                | None -> acc
                | Some view ->
                    let stamp = Query.View.stamp view in
                    let seq = Publish.seq t.pub v in
                    lag := max !lag (seq - stamp);
                    ( "view." ^ v,
                      Printf.sprintf
                        "stamp %d, seq %d, lag %d, interfaces %d, refreshes %d"
                        stamp seq (seq - stamp)
                        (Query.View.interface_count view)
                        (Query.View.refresh_count view) )
                    :: acc)
              t.views []
          in
          Obs.Metrics.set i.g_view_lag !lag;
          List.sort compare (sessions @ breakers @ views))
    in
    let notes = t.config.instance_notes @ notes in
    let sn = Obs.snapshot ~notes i.obs in
    let text =
      match fmt with
      | `Text -> Obs.Export.to_text sn
      | `Json -> Obs.Export.to_json sn
    in
    Protocol.ok [ String.trim text ]
  end

(* --- reaper and shutdown -------------------------------------------------- *)

(* Idle on both the writer and the reader side, with no live snapshot
   holder right now. *)
let idle t (s : session) ~now =
  let last = Float.max s.last_used (Publish.last_touched t.pub s.variant) in
  now -. last > t.config.idle_timeout && Publish.readers t.pub s.variant = 0

(** Snapshot and free sessions idle longer than [idle_timeout]; attached
    connections learn on their next request.  Returns how many were
    reaped.  Runs opportunistically: a variant busy right now is skipped
    (it is not idle). *)
let reap_idle t =
  let now = t.config.now () in
  let candidates =
    locked t (fun () ->
        Hashtbl.fold
          (fun v s acc -> if idle t s ~now then (v, s) :: acc else acc)
          t.sessions [])
  in
  List.fold_left
    (fun reaped (variant, _) ->
      let deadline = t.config.now () +. 0.05 in
      match
        Locks.with_key ~max_waiters:1 ~sleep:t.config.sleep ~now:t.config.now
          t.locks variant ~deadline (fun () ->
            match find_session t variant with
            | Some s when idle t s ~now:(t.config.now ()) ->
                (match snapshot t s with Ok () | Error _ -> ());
                Hashtbl.reset s.conns;
                evict t s;
                Obs.Metrics.incr t.i.c_reaped;
                true
            | _ -> false)
      with
      | Ok true -> reaped + 1
      | Ok false | Error _ -> reaped)
    0 candidates

(** Drain in-flight requests (bounded by [drain_timeout]), snapshot every
    dirty session, release all locks.  Further requests get [!err].
    Returns the sessions that failed to snapshot (their journals remain
    authoritative). *)
let shutdown t =
  t.stopping <- true;
  let give_up = t.config.now () +. t.config.drain_timeout in
  while Atomic.get t.inflight > 0 && t.config.now () < give_up do
    t.config.sleep 0.002
  done;
  (* Stop the commit coordinator only after the in-flight drain: waiters
     parked on tickets need the flusher alive to settle them.  [stop]
     flushes whatever is still pending, so the snapshots below see fully
     appended journals and nothing acked is lost. *)
  (match t.commit with Some gc -> Group_commit.stop gc | None -> ());
  let all =
    locked t (fun () -> Hashtbl.fold (fun v s acc -> (v, s) :: acc) t.sessions [])
  in
  List.filter_map
    (fun (variant, s) ->
      let deadline = t.config.now () +. 1.0 in
      let res =
        Locks.with_key ~max_waiters:1 ~sleep:t.config.sleep ~now:t.config.now
          t.locks variant ~deadline (fun () ->
            let r = snapshot t s in
            Hashtbl.reset s.conns;
            evict t s;
            r)
      in
      match res with
      | Ok (Ok ()) -> None
      | Ok (Error m) -> Some (variant, m)
      | Error _ ->
          (* still busy past the drain budget: free without snapshot; the
             journal holds every acknowledged op *)
          (match find_session t variant with Some s -> evict t s | None -> ());
          Some (variant, "busy at shutdown; journal remains authoritative"))
    all
