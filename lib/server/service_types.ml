(** Shared guts of the service: configuration, instruments, the session and
    service records, and the helpers every path (read / write / admin)
    leans on.  The public face is {!Service}; this module has no interface
    of its own and is not re-exported by {!Server}.

    Concurrency invariants, stated once here and relied on everywhere:

    - [t.mu] guards the [sessions] and [breakers] tables and per-session
      bookkeeping ([conns]); it is held only for table operations, never
      across engine or IO work.
    - A session's [state]/[dirty]/[last_used]/[flock] fields are written
      only while holding the variant's writer lock ({!with_writer}).
    - [t.pub] is the lock-free publication table: the writer publishes the
      committed state after every change and retracts it on eviction;
      readers run on published snapshots with {e no} lock at all.  The
      published [Engine.state] is immutable from the reader's point of
      view (sessions are immutable values; the schema index's memoized
      diagnostics are the one benign exception, see DESIGN.md §10). *)

module Engine = Designer.Engine
module Store = Repository.Store
module Repo = Repository.Repo
module Io = Repository.Io

type config = {
  request_deadline : float;  (** seconds from arrival to shed *)
  max_waiters : int;  (** per-variant queue bound *)
  idle_timeout : float;  (** reaper frees sessions idle this long *)
  drain_timeout : float;  (** max wait for in-flight work at shutdown *)
  retry : Retry.policy;  (** around journal appends and snapshots *)
  breaker_threshold : int;
  breaker_cooldown : float;
  use_file_locks : bool;  (** advisory [.lock] per variant (real fs only) *)
  retry_after_ms : int;  (** hint sent with [!busy] *)
  lockfree_reads : bool;
      (** serve read-only commands from the published snapshot without the
          variant lock (default); [false] forces every command through the
          writer lock — the pre-snapshot behavior, kept as a baseline *)
  group_commit : bool;
      (** batch journal fsyncs across concurrent writers through
          {!Group_commit} (default); [false] keeps the per-record-fsync
          write path, kept as a measurable baseline (bench P14) *)
  flush_max_batch : int;  (** flush a lane at this many pending records *)
  flush_linger : float;  (** max seconds a record may wait for company *)
  flush_on_idle : bool;  (** flush short batches when submissions pause *)
  follower : bool;
      (** serve as a replication follower: sessions are never loaded from
          disk — the replication applier publishes replayed snapshots —
          so [@open] only attaches readonly to a published variant, and
          [@new] / non-readonly opens are refused with a pointer at the
          leader *)
  era : int;
      (** this writer's replication era, checked against the store
          manifest at session load: a variant whose stored era is higher
          was fenced by a promotion — a newer writer owns it — and must
          not be opened for writing here *)
  now : unit -> float;
  sleep : float -> unit;
  chaos_hook : (variant:string -> line:string -> unit) option;
      (** test-only: runs inside the variant lock before execution; an
          exception here models a worker thread killed mid-request.  Never
          fired on the lock-free read path (which holds no lock). *)
  instance_notes : (string * string) list;
      (** static identity notes appended to every [@stats] snapshot — a
          sharded worker reports its shard id and socket here so merged
          stats stay attributable *)
  shard_span : (int * int) option;
      (** [(shard_id, shards)] when serving as one worker of a sharded
          deployment ([--shard-id K --shard-total N]): repository-wide
          walks ([@query all]) restrict to the variants this shard owns
          under rendezvous hashing, so the router can fan out to every
          worker and merge disjoint blocks without double counting *)
}

let default_config =
  {
    request_deadline = 5.0;
    max_waiters = 8;
    idle_timeout = 300.0;
    drain_timeout = 5.0;
    retry = Retry.default;
    breaker_threshold = 3;
    breaker_cooldown = 30.0;
    use_file_locks = true;
    retry_after_ms = 100;
    lockfree_reads = true;
    group_commit = true;
    flush_max_batch = 64;
    flush_linger = 0.002;
    flush_on_idle = true;
    follower = false;
    era = 0;
    now = Unix.gettimeofday;
    sleep = Thread.delay;
    chaos_hook = None;
    instance_notes = [];
    shard_span = None;
  }

(* --- instruments ----------------------------------------------------------

   Every counter/histogram the service records into, resolved once at
   [open_service] so the hot path never looks instruments up by name.  With
   a disabled registry ([Obs.noop], the [--no-obs] configuration) each of
   these is a no-op object and every record call is a load and a branch.

   Naming scheme: [swsd.<area>.<name>], [_total] for counters, [_seconds]
   for latency histograms (exported in ms by the text renderer); dimension-
   less histograms (queue depth, dirty-set size) carry no suffix. *)

type instruments = {
  obs : Obs.t;
  tracer : Obs.Trace.t;
  c_requests : Obs.Metrics.counter;
  c_ok : Obs.Metrics.counter;
  c_err : Obs.Metrics.counter;
  c_shed_queue : Obs.Metrics.counter;  (** [!busy]: variant queue full *)
  c_shed_deadline : Obs.Metrics.counter;  (** [!busy]: deadline while queued *)
  c_readonly_rejected : Obs.Metrics.counter;  (** [!readonly] refusals *)
  c_breaker_rejected : Obs.Metrics.counter;  (** mutations refused read-only *)
  c_breaker_trips : Obs.Metrics.counter;  (** closed/half-open → open edges *)
  c_read_lockfree : Obs.Metrics.counter;
      (** read-class commands served from the published snapshot *)
  c_read_fallback : Obs.Metrics.counter;
      (** read-class commands that went through the writer lock instead
          (nothing published, eviction race, or [lockfree_reads = false]) *)
  c_write : Obs.Metrics.counter;  (** write-class commands executed *)
  c_ops : Obs.Metrics.counter;  (** committed engine operations *)
  c_opened : Obs.Metrics.counter;  (** sessions loaded from disk *)
  c_evicted : Obs.Metrics.counter;  (** sessions dropped on failure *)
  c_reaped : Obs.Metrics.counter;  (** sessions freed by the idle reaper *)
  c_retries : Obs.Metrics.counter;  (** backoff sleeps inside {!Retry} *)
  c_query : Obs.Metrics.counter;  (** [@query] requests *)
  c_query_lockfree : Obs.Metrics.counter;
      (** per-variant query evaluations served from the published view with
          no variant writer lock *)
  c_query_fallback : Obs.Metrics.counter;
      (** query evaluations that first had to load the variant through the
          writer path (nothing published) *)
  c_view_refresh : Obs.Metrics.counter;  (** incremental view refreshes *)
  c_view_rebuild : Obs.Metrics.counter;  (** from-scratch view builds *)
  c_merge_clean : Obs.Metrics.counter;
      (** rebased branch ops that applied with their recorded impact *)
  c_merge_auto : Obs.Metrics.counter;
      (** rebased ops auto-merged (already present, or adapted impact) *)
  c_merge_conflict : Obs.Metrics.counter;
      (** rebased ops refused (permission matrix / consistency checker) *)
  g_sessions : Obs.Metrics.gauge;
  g_inflight : Obs.Metrics.gauge;
  g_commit_stalled : Obs.Metrics.gauge;
      (** writers currently blocked on a group-commit ticket *)
  g_view_lag : Obs.Metrics.gauge;
      (** max over variants of (publication stamp − view stamp), refreshed
          at [@stats] read time: the query views' staleness bound *)
  h_request : Obs.Histo.t;  (** whole request, arrival to response *)
  h_query : Obs.Histo.t;  (** whole [@query] request, parse to response *)
  h_view_maintain : Obs.Histo.t;  (** one view build/refresh (any path) *)
  h_read : Obs.Histo.t;  (** read-class command, either path *)
  h_write : Obs.Histo.t;  (** write-class command, lock wait included *)
  h_lock_wait : Obs.Histo.t;
  h_lock_hold : Obs.Histo.t;
  h_queue_depth : Obs.Histo.t;  (** waiters seen at admission *)
  h_apply : Obs.Histo.t;  (** engine execution of a command line *)
  h_check : Obs.Histo.t;  (** incremental consistency report *)
  h_dirty : Obs.Histo.t;  (** dirty-set size per committed op *)
  h_respond : Obs.Histo.t;  (** feedback rendering *)
  h_commit_batch : Obs.Histo.t;  (** records per group-commit flush *)
  h_commit_flush : Obs.Histo.t;  (** one batch append + fsync *)
  h_journal_append : Obs.Histo.t;  (** record + fsync, the commit path *)
  h_journal_rewrite : Obs.Histo.t;  (** snapshot / repair replace *)
  h_io_write : Obs.Histo.t;
  h_io_append : Obs.Histo.t;
  h_io_fsync : Obs.Histo.t;
  h_io_rename : Obs.Histo.t;
}

let make_instruments obs =
  let c = Obs.counter obs and g = Obs.gauge obs in
  let h ?lo ?hi name = Obs.histo ?lo ?hi obs name in
  {
    obs;
    tracer = Obs.tracer obs;
    c_requests = c "swsd.requests_total";
    c_ok = c "swsd.responses.ok_total";
    c_err = c "swsd.responses.err_total";
    c_shed_queue = c "swsd.shed.queue_full_total";
    c_shed_deadline = c "swsd.shed.deadline_total";
    c_readonly_rejected = c "swsd.readonly.rejected_total";
    c_breaker_rejected = c "swsd.breaker.rejected_total";
    c_breaker_trips = c "swsd.breaker.trips_total";
    c_read_lockfree = c "swsd.read.lockfree_total";
    c_read_fallback = c "swsd.read.fallback_total";
    c_write = c "swsd.write_total";
    c_ops = c "swsd.engine.ops_total";
    c_opened = c "swsd.sessions.opened_total";
    c_evicted = c "swsd.sessions.evicted_total";
    c_reaped = c "swsd.sessions.reaped_total";
    c_retries = c "swsd.retry.attempts_total";
    c_query = c "swsd.query.requests_total";
    c_query_lockfree = c "swsd.query.lockfree_total";
    c_query_fallback = c "swsd.query.fallback_total";
    c_view_refresh = c "swsd.query.view.refresh_total";
    c_view_rebuild = c "swsd.query.view.rebuild_total";
    c_merge_clean = c "swsd.merge.clean_total";
    c_merge_auto = c "swsd.merge.auto_total";
    c_merge_conflict = c "swsd.merge.conflict_total";
    g_sessions = g "swsd.sessions.open";
    g_inflight = g "swsd.requests.inflight";
    g_commit_stalled = g "swsd.commit.stalled";
    g_view_lag = g "swsd.query.view.lag";
    h_request = h "swsd.request_seconds";
    h_query = h "swsd.query.seconds";
    h_view_maintain = h "swsd.query.view.maintain_seconds";
    h_read = h "swsd.read_seconds";
    h_write = h "swsd.write_seconds";
    h_lock_wait = h "swsd.lock.wait_seconds";
    h_lock_hold = h "swsd.lock.hold_seconds";
    h_queue_depth = h ~lo:1.0 ~hi:1e4 "swsd.lock.queue_depth";
    h_apply = h "swsd.engine.apply_seconds";
    h_check = h "swsd.engine.check_seconds";
    h_dirty = h ~lo:1.0 ~hi:1e4 "swsd.engine.dirty_set";
    h_respond = h "swsd.respond_seconds";
    h_commit_batch = h ~lo:1.0 ~hi:1e4 "swsd.commit.batch_size";
    h_commit_flush = h "swsd.commit.flush_seconds";
    h_journal_append = h "swsd.journal.append_seconds";
    h_journal_rewrite = h "swsd.journal.rewrite_seconds";
    h_io_write = h "swsd.io.write_seconds";
    h_io_append = h "swsd.io.append_seconds";
    h_io_fsync = h "swsd.io.fsync_seconds";
    h_io_rename = h "swsd.io.rename_seconds";
  }

(** The hook a replication hub installs on the leader service.  [rs_ship]
    is called from the commit paths — after the records are durable, in
    publication-stamp order per variant — with the exact journal bytes
    that were appended.  [rs_invalidate] fires whenever the on-disk
    journal is {e rewritten} rather than appended to (snapshot, recovery
    repair): the shipped byte stream is no longer a suffix of the file,
    so followers must be re-seeded from a fresh snapshot. *)
type replication_sink = {
  rs_ship : variant:string -> stamp:int -> data:string -> unit;
  rs_invalidate : variant:string -> unit;
}

type session = {
  variant : string;
  store : Store.t;
  conns : (int, unit) Hashtbl.t;  (** attached connection ids *)
  mutable state : Engine.state;  (** writer's copy; readers use [t.pub] *)
  mutable dirty : bool;  (** changes not yet snapshotted *)
  mutable last_used : float;  (** writer-path activity; reads go to [pub] *)
  mutable flock : Locks.file_lock option;
}

type t = {
  repo : Repo.t;
  config : config;
  locks : Locks.t;  (** the per-variant {e writer} locks *)
  pub : Engine.state Publish.t;
      (** lock-free snapshot publication, one cell per variant; stamps and
          epochs survive session eviction *)
  sessions : (string, session) Hashtbl.t;
  breakers : (string, Breaker.t) Hashtbl.t;
      (** per variant, surviving session eviction *)
  views : (string, Query.View.t option Atomic.t) Hashtbl.t;
      (** per-variant materialized query views ({!Query.View}), published
          epoch-stamped beside the snapshot: the writer refreshes after
          each committed op, queries read lock-free.  The cell survives
          session eviction — the next refresh diffs across the reload. *)
  mu : Mutex.t;  (** guards [sessions], [breakers], and session bookkeeping *)
  inflight : int Atomic.t;
  conn_ids : int Atomic.t;
  mutable stopping : bool;
  rand : Random.State.t;
  commit : Group_commit.t option;
      (** the group-commit coordinator; [None] runs the per-record-fsync
          baseline ([group_commit = false]) *)
  commit_waiting : int Atomic.t;
      (** writers blocked on a ticket right now (feeds the stall gauge) *)
  mutable repl : replication_sink option;
      (** installed by {!Replication.hub} on the leader; [None] when the
          server does not replicate.  Written once before the first
          client is served, read on every commit. *)
  i : instruments;
}

type conn = {
  id : int;
  mutable variant : string option;
  mutable readonly : bool;  (** attached via [@open v readonly] *)
}

(* --- small helpers -------------------------------------------------------- *)

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let breaker_of t variant =
  locked t (fun () ->
      match Hashtbl.find_opt t.breakers variant with
      | Some b -> b
      | None ->
          let b =
            Breaker.create ~threshold:t.config.breaker_threshold
              ~cooldown:t.config.breaker_cooldown ()
          in
          Hashtbl.add t.breakers variant b;
          b)

let shed t (failure : Locks.failure) =
  match failure with
  | Locks.Busy n ->
      Protocol.busy ~retry_after_ms:t.config.retry_after_ms
        (Printf.sprintf "%d request(s) queued on this variant" n)
  | Locks.Timed_out ->
      Protocol.busy ~retry_after_ms:t.config.retry_after_ms
        "deadline exceeded waiting for the variant"

(** Run [f] holding the variant's writer lock (bounded queue, deadline);
    [Error] is the (already counted) admission failure.  Every
    state-changing path goes through here — the lock-free read path never
    does.  {!with_writer} is the common wrapper that renders the failure
    as [!busy]; the group-commit write path uses [try_writer] directly
    because it must keep working {e after} the lock is released (awaiting
    its ticket) before it has a response. *)
let try_writer t variant f =
  let i = t.i in
  let deadline = t.config.now () +. t.config.request_deadline in
  let arrived = t.config.now () in
  let observe =
    if not (Obs.enabled i.obs) then None
    else
      Some
        (fun ~waited ~held ~depth ->
          Obs.Histo.observe i.h_lock_wait waited;
          Obs.Histo.observe i.h_lock_hold held;
          Obs.Histo.observe i.h_queue_depth (float_of_int depth))
  in
  (* the wait phase is stamped on entry (not from [observe], which fires
     after release) so trace phases read in execution order *)
  let g () =
    if Obs.enabled i.obs then
      Obs.Trace.add_phase_current i.tracer "wait" (t.config.now () -. arrived);
    f ()
  in
  match
    Locks.with_key ~max_waiters:t.config.max_waiters ~sleep:t.config.sleep
      ~now:t.config.now ?observe t.locks variant ~deadline g
  with
  | Ok _ as r -> r
  | Error failure ->
      (match failure with
      | Locks.Busy _ -> Obs.Metrics.incr i.c_shed_queue
      | Locks.Timed_out -> Obs.Metrics.incr i.c_shed_deadline);
      Error failure

let with_writer t variant f =
  match try_writer t variant f with
  | Ok r -> r
  | Error failure -> shed t failure

let find_session t variant =
  locked t (fun () -> Hashtbl.find_opt t.sessions variant)

(* Free a session's cross-process lock and drop it from the table; the
   published snapshot is retracted (epoch flip), so lock-free readers fall
   back and learn the session is gone.  Caller holds the writer lock;
   never snapshots. *)
let evict t (s : session) =
  locked t (fun () -> Hashtbl.remove t.sessions s.variant);
  Publish.retract t.pub s.variant;
  Option.iter Locks.unlock_file s.flock;
  s.flock <- None

(* Publish the session's current state for lock-free readers; returns the
   publication stamp.  Caller holds the writer lock. *)
let publish t (s : session) = Publish.publish t.pub s.variant s.state

(* --- materialized query views --------------------------------------------- *)

let view_cell t variant =
  locked t (fun () ->
      match Hashtbl.find_opt t.views variant with
      | Some c -> c
      | None ->
          let c = Atomic.make None in
          Hashtbl.add t.views variant c;
          c)

(* Bring the variant's materialized query view to [stamp] (the publication
   stamp of [state]).  Lock-free: a CAS retry loop on the view cell — a
   loser recomputes against the winner's newer view, and a cell already at
   or past [stamp] means a racing writer got there first, which is fine
   (views are monotone per variant, like publication stamps).  Runs on the
   writer's own thread (group-commit phase 2, the per-record path), on the
   replication applier, and — self-healing — on the query read path; never
   on the group-commit flusher, whose batches must not wait on view
   maintenance. *)
let advance_view t variant (state : Engine.state) stamp =
  let cell = view_cell t variant in
  let session = state.Engine.session in
  let rec loop () =
    let prev = Atomic.get cell in
    match prev with
    | Some v when Query.View.stamp v >= stamp -> ()
    | _ ->
        let t0 = t.config.now () in
        (* a from-scratch build caches the variant's lineage record off the
           manifest, so the [lineage] atom answers without touching disk;
           refreshes carry it forward *)
        let lineage =
          match prev with
          | Some _ -> None
          | None -> (
              match Repo.variant_lineage t.repo variant with
              | l -> l
              | exception _ -> None)
        in
        let v = Query.View.update ?prev ?lineage ~stamp session in
        (match prev with
        | None -> Obs.Metrics.incr t.i.c_view_rebuild
        | Some _ -> Obs.Metrics.incr t.i.c_view_refresh);
        Obs.Histo.observe t.i.h_view_maintain (t.config.now () -. t0);
        if not (Atomic.compare_and_set cell prev (Some v)) then loop ()
  in
  loop ()

(* Hand freshly durable journal bytes to the replication hub (no-ops
   without one).  Called with the publication stamp the bytes correspond
   to, in stamp order per variant: under group commit that order is
   guaranteed by the flusher running [on_durable] hooks in submission
   order; on the per-record path by the variant writer lock. *)
let ship t ~variant ~stamp ~data =
  match t.repl with
  | None -> ()
  | Some sink -> sink.rs_ship ~variant ~stamp ~data

(* Tell the hub the variant's journal file was rewritten (snapshot,
   repair): shipped bytes no longer extend the file, re-seed followers. *)
let invalidate t variant =
  match t.repl with
  | None -> ()
  | Some sink -> sink.rs_invalidate ~variant

let log_path (s : session) = Store.log_file s.store

(* Wait until the session's group-commit lane is empty and no flush is in
   flight.  Mandatory before any whole-file journal rewrite (snapshot,
   recovery repair): the rewrite materializes pending records from the
   in-memory state, so a batch append racing it would write them twice. *)
let drain_commits t (s : session) =
  match t.commit with
  | None -> ()
  | Some gc -> Group_commit.drain gc ~path:(log_path s)

(* Snapshot a dirty session through the regular Store path. *)
let snapshot t (s : session) =
  if not s.dirty then Ok ()
  else begin
    drain_commits t s;
    match
      Retry.with_retries ~rand:t.rand ~sleep:t.config.sleep
        ~on_retry:(fun ~attempt:_ ~delay:_ -> Obs.Metrics.incr t.i.c_retries)
        t.config.retry
        (fun () -> Store.save_session s.store s.state.Engine.session)
    with
    | Ok () ->
        s.dirty <- false;
        (* the snapshot rewrote the journal; shipped bytes no longer
           extend the on-disk file, so followers must re-seed *)
        invalidate t s.variant;
        Ok ()
    | Error e -> Error (Printexc.to_string e)
    | exception e ->
        (* e.g. an injected crash: atomic whole-file writes keep every
           artifact whole, and the journal remains authoritative *)
        Error (Printexc.to_string e)
  end

let feedback_body feedback = List.map Designer.Feedback.to_string feedback

(* --- journal persistence -------------------------------------------------- *)

let step_op (st : Core.Session.step) = (st.Core.Session.st_kind, st.st_op)

let step_eq s1 s2 =
  let k1, o1 = step_op s1 and k2, o2 = step_op s2 in
  k1 = k2 && Core.Modop.equal o1 o2

(** The journal records turning [before]'s log into [after]'s: undos for
    the popped tail, then the fresh steps.  Ops only push/pop at the tail,
    so the common prefix characterizes the delta exactly.

    Cost is O(changed steps), not O(log): [after] derives from [before] by
    applies (cons) and undos (pop) on the session's newest-first spine
    ({!Core.Session.steps_rev}), so below the divergence point the two
    spines are {e physically} the same list.  Walk the longer spine down
    to the shorter's length, then both in lockstep until they are pointer
    equal — everything popped on the way is the delta.  This matters under
    group commit: the delta runs once per accepted op with the variant
    lock held, and an O(log) walk there makes a long-lived session's
    write throughput decay with its own history. *)
let journal_delta ~before ~after =
  let rec chop n popped l =
    if n = 0 then (popped, l)
    else
      match l with
      | s :: rest -> chop (n - 1) (s :: popped) rest
      | [] -> (popped, [])
  in
  let nb = Core.Session.step_count before
  and na = Core.Session.step_count after in
  let popped, b =
    chop (max 0 (nb - na)) [] (Core.Session.steps_rev before)
  in
  let added, a = chop (max 0 (na - nb)) [] (Core.Session.steps_rev after) in
  (* equal lengths now; [] == [] terminates the walk *)
  let rec sync popped added b a =
    if b == a then (popped, added)
    else
      match (b, a) with
      | sb :: b', sa :: a' -> sync (sb :: popped) (sa :: added) b' a'
      | _ -> assert false
  in
  let popped, added = sync popped added b a in
  (* an undone-then-reapplied step is structurally unchanged even though
     its spine node is fresh: emitting undo + re-add for it would be
     correct but noisy, so trim matching pairs (both lists are oldest
     first, mirroring the old full-log common-prefix semantics) *)
  let rec trim = function
    | pb :: p', aa :: a' when step_eq pb aa -> trim (p', a')
    | rest -> rest
  in
  let popped, added = trim (popped, added) in
  (List.length popped, List.map step_op added)

(** Append [data] — pre-encoded journal records from {!encoded_delta} —
    through the retry policy; durable (appended and fsync'd as one batch)
    on [Ok].  Any failure leaves the on-disk journal in an unknown
    (possibly torn) state: the caller must evict the session so the next
    open reloads through recovery.  This is the whole of the non-group-
    commit persistence path: the per-record append/fsync loop it replaces
    duplicated the delta encoding the group-commit path already owns. *)
let append_data t (s : session) ~data =
  match
    Retry.with_retries ~rand:t.rand ~sleep:t.config.sleep
      ~on_retry:(fun ~attempt:_ ~delay:_ -> Obs.Metrics.incr t.i.c_retries)
      t.config.retry
      (fun () -> Repository.Journal.append_raw (Store.io s.store) (log_path s) data)
  with
  | Ok () -> Ok ()
  | Error e -> Error e

(** The delta as one pre-encoded byte run: the record count and the exact
    bytes to append — undo records first, then the fresh steps, each
    newline-terminated.  Both commit paths (group commit and the
    per-command-fsync baseline) append exactly these bytes. *)
let encoded_delta ~before ~after =
  let undos, adds = journal_delta ~before ~after in
  let buf = Buffer.create 128 in
  for _ = 1 to undos do
    Buffer.add_string buf (Repository.Journal.encode Repository.Journal.Undo)
  done;
  List.iter
    (fun (kind, op) ->
      Buffer.add_string buf
        (Repository.Journal.encode (Repository.Journal.Op (kind, op))))
    adds;
  (undos + List.length adds, Buffer.contents buf)
