(** The multi-session design service (transport-agnostic core).

    Serves a multi-variant repository to many concurrent connections; each
    open variant is one shared session (engine state + durable store).
    Mutating requests serialize through a per-variant writer lock with
    bounded queues and per-request deadlines ([!busy]/[!retry-after]);
    read-only commands are served {e lock-free} from the variant's
    published immutable snapshot (single-writer MVCC, see {!Publish} and
    DESIGN.md §10).  Journal appends are retried with jittered backoff and
    acknowledged only once durable, and repeated failures trip a
    per-variant circuit breaker to read-only.  Successful responses carry
    the variant's publication stamp ([#version], monotone per variant);
    the writer publishes before acknowledging, so a connection always
    reads its own acknowledged writes.  Thread-safe: {!request} may be
    called from any number of threads. *)

type config = Service_types.config = {
  request_deadline : float;  (** seconds from arrival to shed *)
  max_waiters : int;  (** per-variant queue bound *)
  idle_timeout : float;  (** reaper frees sessions idle this long *)
  drain_timeout : float;  (** max wait for in-flight work at shutdown *)
  retry : Retry.policy;  (** around journal appends and snapshots *)
  breaker_threshold : int;
  breaker_cooldown : float;
  use_file_locks : bool;  (** advisory [.lock] per variant (real fs only) *)
  retry_after_ms : int;  (** hint sent with [!busy] *)
  lockfree_reads : bool;
      (** serve read-class commands from the published snapshot with no
          variant lock (default [true]); [false] forces every command
          through the writer lock — the pre-snapshot behavior, kept as a
          measurable baseline (bench P13) *)
  group_commit : bool;
      (** batch journal fsyncs across concurrent writers ({!Group_commit}):
          writers enqueue their encoded records and block on a ticket, one
          flusher thread pays a single fsync per batch, and an ack still
          implies durability (default [true]); [false] keeps the
          per-record-fsync write path as a measurable baseline (bench
          P14) *)
  flush_max_batch : int;
      (** flush a batch at this many pending records (default 64) *)
  flush_linger : float;
      (** max seconds a record waits for company before its batch is
          flushed anyway (default 0.002) *)
  flush_on_idle : bool;
      (** flush short batches as soon as submissions pause, so a lone
          writer is not held for the full linger (default [true]) *)
  follower : bool;
      (** serve as a replication follower (default [false]): sessions are
          never loaded from disk — the replication applier publishes
          replayed snapshots — so [@open] only attaches readonly to a
          published variant, and [@new] / non-readonly opens are refused
          with a pointer at the leader *)
  era : int;
      (** this writer's replication era (default [0]), checked against
          the store manifest at session load: a variant whose stored era
          is higher was fenced by a promotion — a newer writer owns it —
          and is refused here (see {!Replication.promote}) *)
  now : unit -> float;
  sleep : float -> unit;
  chaos_hook : (variant:string -> line:string -> unit) option;
      (** test-only: runs inside the variant lock before execution; an
          exception here models a worker thread killed mid-request.  Never
          fired on the lock-free read path (which holds no lock). *)
  instance_notes : (string * string) list;
      (** static identity notes appended to every [@stats] snapshot (e.g.
          a worker's shard id and socket under [--shards]) *)
  shard_span : (int * int) option;
      (** [(shard_id, shards)] when serving as one worker of a sharded
          deployment: [@query all] restricts to the variants this shard
          owns under rendezvous hashing, so the router's fan-out merges
          disjoint blocks *)
}

val default_config : config

type t = Service_types.t
(** Transparent so sibling subsystems with their own interfaces
    ({!Replication}) can accept a [Service.t] and still reach the shared
    internals through {!Service_types}.  External users should treat it
    as opaque — [Service_types] is not re-exported by {!Server}. *)

type conn

val open_service :
  ?config:config -> ?io:Repository.Io.t -> ?obs:Obs.t -> string -> (t, string) result
(** Open the multi-variant repository at the directory and serve it.

    [obs] (default: a fresh enabled registry) receives the service's
    counters, latency histograms, and request traces, served back over the
    protocol's [@stats] request; pass [Obs.noop] to disable every
    instrumentation point ([--no-obs]). Opening with an enabled registry
    installs the process-wide session/journal observation hooks. *)

val obs : t -> Obs.t
(** The registry the service records into. *)

val rearm_hooks : t -> unit
(** Re-install the process-wide session/journal hooks pointing at [t]
    (no-op for a disabled registry).  The hooks are last-writer-wins, so a
    process juggling several services — tests, the overhead benchmark —
    uses this to hand them to the service about to run. *)

val disarm_hooks : unit -> unit
(** Uninstall the process-wide session/journal hooks entirely. *)

val connect : t -> conn
(** A fresh connection context (one per client). *)

val request : t -> conn -> string -> Protocol.response
(** Execute one request line on behalf of [conn]; a mutating request
    blocks at most [request_deadline] (then sheds), a read-class request
    never queues.  Mutations are durable when the response is [!ok].  A
    connection attached with [@open v readonly] gets [!readonly] for any
    mutating command. *)

val disconnect : t -> conn -> unit
(** Drop the connection; its session detach behaves like [@close]. *)

val session_count : t -> int

val reap_idle : t -> int
(** Snapshot and free sessions idle past [idle_timeout]; busy variants —
    including any with a thread currently reading a published snapshot —
    are skipped.  Returns how many were reaped. *)

val shutdown : t -> (string * string) list
(** Drain in-flight requests (bounded by [drain_timeout]), snapshot every
    dirty session, release all locks; later requests get [!err].  Returns
    [(variant, reason)] for sessions whose snapshot failed — their
    journals remain authoritative. *)
