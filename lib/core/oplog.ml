(** Replayable op-log values and optimistic rebase.  See the interface for
    the classification contract.

    The rebase loop deliberately reuses {!Session.apply} instead of calling
    the engines directly: that is the exact pipeline a designer's own op
    runs through (permission matrix, incremental constraint check,
    propagation, validity preservation), so a branch op merges cleanly iff
    the designer could have typed it against the base right now.  The only
    extra work is the up-front {!Permission.allowed} probe, which lets the
    report distinguish "Table 1 forbids this here" from "the checker
    refused it" — the paper's two different designer-facing answers. *)

type entry = {
  e_kind : Concept.kind;
  e_op : Modop.t;
  e_events : Change.event list;
}

type t = { entries : entry list; sealed_at : int }

let entry_of_step (st : Session.step) =
  { e_kind = st.st_kind; e_op = st.st_op; e_events = st.st_events }

let of_session s =
  {
    entries = List.map entry_of_step (Session.log s);
    sealed_at = Session.version s;
  }

let pairs t = List.map (fun e -> (e.e_kind, e.e_op)) t.entries
let length t = List.length t.entries

let render t =
  t.entries
  |> List.map (fun e ->
         Printf.sprintf "// in %s\n%s;"
           (Concept.kind_name e.e_kind)
           (Op_printer.to_string e.e_op))
  |> String.concat "\n"

let replay ?paranoid shrink_wrap steps =
  match Session.create ?paranoid shrink_wrap with
  | Error ds ->
      Error
        (Apply.Violation
           (Fmt.str "shrink wrap schema invalid: %a"
              Fmt.(list ~sep:(any "; ") Odl.Validate.pp_diagnostic_line)
              ds))
  | Ok session ->
      List.fold_left
        (fun acc (kind, op) ->
          Result.bind acc (fun s -> Result.map fst (Session.apply s ~kind op)))
        (Ok session) steps

let replay_log ?paranoid shrink_wrap t = replay ?paranoid shrink_wrap (pairs t)

(* --- fork-point arithmetic ------------------------------------------------ *)

let same_step (a : Session.step) (b : Session.step) =
  Concept.equal_kind a.st_kind b.st_kind && Modop.equal a.st_op b.st_op

let common_prefix ~base ~branch =
  let rec go n = function
    | a :: xs, b :: ys when same_step a b -> go (n + 1) (xs, ys)
    | _ -> n
  in
  go 0 (Session.log base, Session.log branch)

let branch_entries ~base ~branch =
  let n = common_prefix ~base ~branch in
  Session.log branch
  |> List.filteri (fun i _ -> i >= n)
  |> List.map entry_of_step

(* --- rebase --------------------------------------------------------------- *)

type reason = Permission of string | Rejected of Apply.error

type outcome =
  | Clean of Change.event list
  | Auto_merged of string * Change.event list
  | Conflict of reason

type verdict = { v_entry : entry; v_outcome : outcome }

type report = {
  r_base_version : int;
  r_session : Session.t;
  r_mapping : Mapping.t;
  r_verdicts : verdict list;
  r_clean : int;
  r_auto : int;
  r_conflict : int;
}

let already_applied session e =
  List.exists
    (fun (st : Session.step) ->
      Concept.equal_kind st.st_kind e.e_kind && Modop.equal st.st_op e.e_op)
    (Session.steps_rev session)

let rebase_one session e =
  if already_applied session e then
    (session, Auto_merged ("already applied on base", []))
  else
    match Permission.allowed e.e_kind e.e_op with
    | Error why -> (session, Conflict (Permission why))
    | Ok () -> (
        match Session.apply session ~kind:e.e_kind e.e_op with
        | Error err -> (session, Conflict (Rejected err))
        | Ok (session', events) ->
            if List.equal Change.equal_event events e.e_events then
              (session', Clean events)
            else
              ( session',
                Auto_merged ("propagated impact differs on rebased base", events)
              ))

let rebase ~base ~branch_ops =
  let r_base_version = Session.version base in
  let session, rev_verdicts =
    List.fold_left
      (fun (session, acc) e ->
        let session, outcome = rebase_one session e in
        (session, { v_entry = e; v_outcome = outcome } :: acc))
      (base, []) branch_ops
  in
  let r_verdicts = List.rev rev_verdicts in
  let count p = List.length (List.filter p r_verdicts) in
  {
    r_base_version;
    r_session = session;
    r_mapping = Session.mapping session;
    r_verdicts;
    r_clean = count (fun v -> match v.v_outcome with Clean _ -> true | _ -> false);
    r_auto =
      count (fun v -> match v.v_outcome with Auto_merged _ -> true | _ -> false);
    r_conflict =
      count (fun v -> match v.v_outcome with Conflict _ -> true | _ -> false);
  }

let rebase_ops ?paranoid shrink_wrap ~base_ops ~branch_ops =
  Result.map
    (fun base -> rebase ~base ~branch_ops)
    (replay ?paranoid shrink_wrap base_ops)

let conflicts report =
  List.filter_map
    (fun v ->
      match v.v_outcome with
      | Conflict r -> Some (v.v_entry, r)
      | Clean _ | Auto_merged _ -> None)
    report.r_verdicts

let reason_to_string = function
  | Permission why -> "permission: " ^ why
  | Rejected err -> Apply.error_to_string err

let verdict_lines i v =
  let head verdict =
    Printf.sprintf "%d. [%s] %s : %s" (i + 1)
      (Concept.kind_name v.v_entry.e_kind)
      (Op_printer.to_string v.v_entry.e_op)
      verdict
  in
  match v.v_outcome with
  | Clean events ->
      head "clean" :: List.map (fun e -> "   " ^ Change.event_to_string e) events
  | Auto_merged (why, events) ->
      head (Printf.sprintf "auto-merged (%s)" why)
      :: List.map (fun e -> "   " ^ Change.event_to_string e) events
  | Conflict r -> [ head (Printf.sprintf "CONFLICT (%s)" (reason_to_string r)) ]

let render_report label report =
  let body = List.concat (List.mapi verdict_lines report.r_verdicts) in
  let tally =
    Printf.sprintf "rebased %d op(s): %d clean, %d auto-merged, %d conflict(s)"
      (List.length report.r_verdicts)
      report.r_clean report.r_auto report.r_conflict
  in
  String.concat "\n"
    ([ "merge report: " ^ label ]
    @ body
    @ [ tally; Fmt.str "%a" Mapping.pp report.r_mapping ])
