(** Interoperation through common objects (paper section 5): given two custom
    schemas derived from one shrink wrap schema, the constructs both
    customizations preserved are semantically identical across the two
    databases.  This module computes that correspondence and materializes it
    as the {e interchange schema}. *)

open Odl.Types

(** A shrink-wrap construct surviving in both customizations. *)
type common = {
  co_construct : Change.construct;  (** in shrink wrap schema coordinates *)
  co_in_a : type_name;  (** interface carrying it in custom schema A *)
  co_in_b : type_name;  (** interface carrying it in custom schema B *)
}

val common_constructs :
  original:schema -> custom_a:schema -> custom_b:schema -> common list

val interchange_schema :
  original:schema -> custom_a:schema -> custom_b:schema -> schema
(** The shrink wrap schema restricted to the constructs both customs kept:
    relationship ends survive only when both ends do, and the result is
    closed under the propagation rules (hence valid whenever the shrink wrap
    schema is). *)

type report = {
  r_common : common list;
  r_interchange : schema;
  r_only_a : Change.construct list;  (** shrink-wrap constructs only A kept *)
  r_only_b : Change.construct list;
}

val analyse : original:schema -> custom_a:schema -> custom_b:schema -> report
val report_text : name_a:string -> name_b:string -> report -> string
