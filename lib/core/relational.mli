(** Translation of extended-ODL schemas to relational DDL (class-table
    inheritance; see the implementation header for the full mapping rules).
    Makes the paper's data-model-independence claim executable: a customized
    schema carries straight to a relational DBMS. *)

val ddl : Odl.Types.schema -> string
(** SQL DDL for the whole schema: one table per interface (plus side tables
    for collection attributes and junction tables for M:N relationships),
    foreign keys for ISA and relationship ends, [ON DELETE CASCADE] on
    part-of and instance-of.  Operations are emitted as comments. *)

val table_count : Odl.Types.schema -> int
(** Number of tables {!ddl} emits. *)
