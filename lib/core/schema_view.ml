(** Abstract schema views: the query/update surface the operation engine is
    written against.

    The engine ({!Apply}, {!Propagate}, {!Decompose}) is functorized over
    this signature so it can run on two backends:

    - {!Naive} — a plain {!Odl.Types.schema}, every query a list scan.  This
      is the reference implementation and the oracle for differential
      testing.
    - {!Schema_index} — an incrementally-maintained index with O(log n)
      lookups, adjacency maps and a dirty-set diagnostics cache.

    Both backends must answer every query identically, {e including result
    order} (declaration order unless documented otherwise): check results,
    propagation events and decompositions are all order-sensitive. *)

open Odl.Types

module type S = sig
  type t

  val schema : t -> schema
  (** The underlying schema value (interfaces in declaration order). *)

  (** {1 Lookup} *)

  val find_interface : t -> type_name -> interface option
  val mem_interface : t -> type_name -> bool

  val get_interface : t -> type_name -> interface
  (** @raise Odl.Schema.Unknown_interface when absent. *)

  val interface_names : t -> type_name list
  (** In declaration order. *)

  (** {1 Generalization hierarchy} *)

  val direct_supertypes : t -> type_name -> type_name list
  val direct_subtypes : t -> type_name -> type_name list
  val ancestors : t -> type_name -> type_name list
  val descendants : t -> type_name -> type_name list
  val same_isa_line : t -> type_name -> type_name -> bool
  val isa_roots : t -> type_name list
  val visible_attrs : t -> type_name -> attribute list

  (** {1 Relationship queries} *)

  val relationships_targeting :
    t -> type_name -> (interface * relationship) list

  (** {1 Functional updates}

      Updates return a new view; old values stay valid (undo keeps them). *)

  val update_interface : t -> type_name -> (interface -> interface) -> t
  (** @raise Odl.Schema.Unknown_interface when absent. *)

  val add_interface : t -> interface -> t
  (** Appends; the caller must ensure the name is fresh. *)

  val remove_interface : t -> type_name -> t
  (** No-op when absent. *)

  (** {1 Consistency checking} *)

  val affected_by : t -> type_name list -> type_name list
  (** Existing interfaces (declaration order) whose checks or propagation
      rules may react to a change of the named interfaces.  A sound
      over-approximation: the naive backend returns every interface; the
      index returns the dirty neighbourhood closure. *)

  val diagnostics : t -> Odl.Validate.diagnostic list
  (** Equal to [Odl.Validate.check (schema t)] — possibly served from a
      cache. *)

  val errors : t -> Odl.Validate.diagnostic list
end

(** The reference backend: plain schemas, no caching, every query a scan. *)
module Naive : S with type t = schema = struct
  module Schema = Odl.Schema

  type t = schema

  let schema s = s
  let find_interface = Schema.find_interface
  let mem_interface = Schema.mem_interface
  let get_interface = Schema.get_interface
  let interface_names = Schema.interface_names
  let direct_supertypes = Schema.direct_supertypes
  let direct_subtypes = Schema.direct_subtypes
  let ancestors = Schema.ancestors
  let descendants = Schema.descendants
  let same_isa_line = Schema.same_isa_line
  let isa_roots = Schema.isa_roots
  let visible_attrs = Schema.visible_attrs
  let relationships_targeting = Schema.relationships_targeting
  let update_interface = Schema.update_interface
  let add_interface = Schema.add_interface
  let remove_interface = Schema.remove_interface

  (* No dirty tracking: everything is always (re)checked. *)
  let affected_by s _touched = Schema.interface_names s
  let diagnostics = Odl.Validate.check
  let errors = Odl.Validate.errors
end
