(** Schema differencing: infer a modification-operation log that transforms
    one schema into another.

    Inference works under the paper's assumptions — name equivalence (a
    same-named construct is the same construct) and semantic stability (a
    same-named member found elsewhere on the ISA line was moved).  Every
    emitted operation is validated by applying it to a working copy as it is
    generated, so the result is replayable by construction. *)

type step = Concept.kind * Modop.t

val infer :
  original:Odl.Types.schema ->
  target:Odl.Types.schema ->
  step list * Odl.Types.schema * bool
(** [(log, reached, converged)]: the inferred log, the schema it reaches,
    and whether that schema equals the target in content.  [converged] holds
    whenever the target is expressible under the operation constraints
    (tested by property over random schema pairs). *)
