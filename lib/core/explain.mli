(** The explanation facility (paper section 5, proposed extension): prose
    explanations of concept schemas.  Output is deterministic English, one
    sentence per fact, in declaration order. *)

open Odl.Types

val wagon_wheel : schema -> Concept.t -> string list
val generalization : schema -> Concept.t -> string list
val aggregation : schema -> Concept.t -> string list
val instance_chain : schema -> Concept.t -> string list

val concept : schema -> Concept.t -> string list
(** Dispatch on the concept schema's kind; one sentence per list element. *)

val concept_text : schema -> Concept.t -> string
(** {!concept}, newline-joined. *)
