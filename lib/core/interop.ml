(** Interoperation through common objects (paper section 5).

    "Systems built from the same shrink wrap schema (i.e., common objects)
    can be integrated for information interchange because the semantically
    identical constructs have already been identified."

    Given two custom schemas derived from one shrink wrap schema — each with
    its own mapping — the constructs that {e both} customizations preserved
    are semantically identical across the two databases.  This module
    computes that correspondence and materializes it as an {e interchange
    schema}: the largest sub-schema of the shrink wrap schema on which the
    two systems agree. *)

open Odl.Types
module Schema = Odl.Schema

(** Where a shrink-wrap construct survives in a custom schema (interface name
    it now lives on), when it does. *)
let survives (m : Mapping.t) construct =
  List.find_map
    (fun (e : Mapping.entry) ->
      if not (Change.equal_construct e.m_construct construct) then None
      else
        match e.m_status with
        | Mapping.Preserved | Mapping.Modified _ -> (
            match construct with
            | Change.C_interface n -> Some n
            | Change.C_attribute (n, _)
            | Change.C_relationship (n, _)
            | Change.C_operation (n, _) -> Some n
            | Change.C_supertype (n, _) | Change.C_extent n
            | Change.C_key (n, _) -> Some n)
        | Mapping.Moved dest | Mapping.Moved_and_modified (dest, _) -> Some dest
        | Mapping.Deleted -> None)
    m.entries

type common = {
  co_construct : Change.construct;  (** in shrink wrap schema coordinates *)
  co_in_a : type_name;  (** interface carrying it in custom schema A *)
  co_in_b : type_name;  (** interface carrying it in custom schema B *)
}

(** The constructs of the shrink wrap schema that survive in both customs. *)
let common_constructs ~original ~custom_a ~custom_b =
  let ma = Mapping.compute ~original ~custom:custom_a in
  let mb = Mapping.compute ~original ~custom:custom_b in
  ma.entries
  |> List.filter_map (fun (e : Mapping.entry) ->
         match
           (survives ma e.m_construct, survives mb e.m_construct)
         with
         | Some a, Some b ->
             Some { co_construct = e.m_construct; co_in_a = a; co_in_b = b }
         | _ -> None)

(** The interchange schema: the shrink wrap schema restricted to the
    interfaces, attributes, relationships and operations that survive in both
    customizations.  Relationship ends are kept only when both ends survive
    (so the interchange schema stays structurally whole), and it is closed by
    the propagation rules. *)
let interchange_schema ~original ~custom_a ~custom_b =
  let commons = common_constructs ~original ~custom_a ~custom_b in
  let has c = List.exists (fun x -> Change.equal_construct x.co_construct c) commons in
  let restrict (i : interface) =
    {
      i with
      i_supertypes =
        List.filter (fun s -> has (Change.C_interface s)) i.i_supertypes;
      i_attrs =
        List.filter (fun a -> has (Change.C_attribute (i.i_name, a.attr_name))) i.i_attrs;
      i_rels =
        List.filter
          (fun r ->
            has (Change.C_relationship (i.i_name, r.rel_name))
            && has (Change.C_interface r.rel_target)
            && has (Change.C_relationship (r.rel_target, r.rel_inverse)))
          i.i_rels;
      i_ops =
        List.filter (fun o -> has (Change.C_operation (i.i_name, o.op_name))) i.i_ops;
    }
  in
  let restricted =
    {
      s_name = original.s_name ^ "_interchange";
      s_interfaces =
        original.s_interfaces
        |> List.filter (fun i -> has (Change.C_interface i.i_name))
        |> List.map restrict;
    }
  in
  fst (Propagate.repair restricted)

type report = {
  r_common : common list;
  r_interchange : schema;
  r_only_a : Change.construct list;  (** shrink-wrap constructs only A kept *)
  r_only_b : Change.construct list;
}

let analyse ~original ~custom_a ~custom_b =
  let ma = Mapping.compute ~original ~custom:custom_a in
  let mb = Mapping.compute ~original ~custom:custom_b in
  let commons = common_constructs ~original ~custom_a ~custom_b in
  let in_common c =
    List.exists (fun x -> Change.equal_construct x.co_construct c) commons
  in
  let only_in m other =
    m.Mapping.entries
    |> List.filter_map (fun (e : Mapping.entry) ->
           if in_common e.m_construct then None
           else
             match (survives m e.m_construct, survives other e.m_construct) with
             | Some _, None -> Some e.m_construct
             | _ -> None)
  in
  {
    r_common = commons;
    r_interchange = interchange_schema ~original ~custom_a ~custom_b;
    r_only_a = only_in ma mb;
    r_only_b = only_in mb ma;
  }

let report_text ~name_a ~name_b r =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "interoperation report (%s <-> %s)" name_a name_b;
  add "  %d constructs are semantically identical in both systems"
    (List.length r.r_common);
  add "  interchange schema: %s" (Render.summary r.r_interchange);
  add "  %d shrink-wrap constructs survive only in %s"
    (List.length r.r_only_a) name_a;
  add "  %d shrink-wrap constructs survive only in %s"
    (List.length r.r_only_b) name_b;
  let moved =
    List.filter
      (fun c -> not (String.equal c.co_in_a c.co_in_b))
      r.r_common
  in
  if moved <> [] then begin
    add "  constructs residing on different interfaces (move translation needed):";
    List.iter
      (fun c ->
        add "    %s: %s in %s, %s in %s"
          (Change.construct_to_string c.co_construct)
          c.co_in_a name_a c.co_in_b name_b)
      moved
  end;
  Buffer.contents buf
