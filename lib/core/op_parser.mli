(** Parser for the schema modification language (Appendix A of the paper).
    Each operation has the shape [keyword(argument, ...)]; see the
    implementation header for the argument forms. *)

exception Parse_error of string * int * int
(** [(message, line, column)]. *)

val parse : string -> Modop.t
(** Parse exactly one operation.
    @raise Parse_error on syntax errors. *)

val parse_many : string -> Modop.t list
(** Parse a sequence of operations separated by optional semicolons. *)
