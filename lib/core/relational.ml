(** Translation of extended-ODL schemas to relational DDL.

    The paper (section 5) grounds its generality claim in the existence of
    translations "to other models such as entity relationship diagrams and
    relational models"; this module is that translation, so a customized
    schema can be carried straight to a relational DBMS.

    Mapping rules (class-table inheritance):

    - one table per interface; primary key is the declared key when it is a
      single own/inherited attribute set, else a surrogate [<name>_id];
    - a subtype's table holds its own attributes plus a foreign key to each
      supertype's table sharing the primary key (class-table inheritance);
    - single-valued attributes become columns ([string<n>] → [VARCHAR(n)],
      [string] → [TEXT], [int] → [INTEGER], [float] → [DOUBLE PRECISION],
      [boolean] → [BOOLEAN], [char] → [CHAR(1)], named types → foreign
      keys); collection-valued attributes become side tables;
    - a relationship pair becomes: a foreign key column on the to-one side
      (1:N and part-of / instance-of, with [ON DELETE CASCADE] for part-of),
      a junction table for M:N, and a foreign key with a [UNIQUE]
      constraint for 1:1;
    - operations do not translate (behaviour is out of the relational
      model); they are emitted as comments so nothing is silently lost. *)

open Odl.Types
module Schema = Odl.Schema

let keyword_clash = [ "order"; "table"; "select"; "from"; "where"; "group"; "user" ]

let sql_name s =
  let lower = String.lowercase_ascii s in
  if List.mem lower keyword_clash then lower ^ "_" else lower

let rec sql_type = function
  | D_int -> "INTEGER"
  | D_float -> "DOUBLE PRECISION"
  | D_string -> "TEXT"
  | D_char -> "CHAR(1)"
  | D_boolean -> "BOOLEAN"
  | D_void -> "TEXT"  (* unreachable for attributes *)
  | D_named _ -> "INTEGER"  (* foreign key to the named table's surrogate *)
  | D_collection (_, t) -> sql_type t

let sized_sql_type a =
  match (a.attr_type, a.attr_size) with
  | D_string, Some n -> Printf.sprintf "VARCHAR(%d)" n
  | t, _ -> sql_type t

let surrogate i = sql_name i.i_name ^ "_id"

(* The primary key column(s) of a table: a single-attribute declared key of
   scalar type when available, else the surrogate. *)
let primary_key schema (i : interface) =
  let visible = Schema.visible_attrs schema i.i_name in
  let scalar_key =
    List.find_map
      (fun k ->
        match k with
        | [ single ] -> (
            match List.find_opt (fun a -> a.attr_name = single) visible with
            | Some a -> (
                match a.attr_type with
                | D_named _ | D_collection _ -> None
                | _ -> Some (sql_name single, sized_sql_type a))
            | None -> None)
        | _ -> None)
      i.i_keys
  in
  match scalar_key with
  | Some (col, ty) -> (col, ty, false)
  | None -> (surrogate i, "INTEGER", true)

type emitted = { tables : string list; comments : string list }

let fk_clause ~column ~target_table ~target_col ~cascade =
  Printf.sprintf "  FOREIGN KEY (%s) REFERENCES %s(%s)%s" column target_table
    target_col
    (if cascade then " ON DELETE CASCADE" else "")

(* A collection attribute becomes a side table keyed by owner + position. *)
let collection_attr_table schema i a =
  let pk_col, pk_ty, _ = primary_key schema i in
  let owner_table = sql_name i.i_name in
  Printf.sprintf
    "CREATE TABLE %s_%s (\n\
    \  %s %s NOT NULL,\n\
    \  position INTEGER NOT NULL,\n\
    \  value %s,\n\
    \  PRIMARY KEY (%s, position),\n\
     %s\n\
     );"
    owner_table (sql_name a.attr_name) pk_col pk_ty
    (sql_type a.attr_type) pk_col
    (fk_clause ~column:pk_col ~target_table:owner_table ~target_col:pk_col
       ~cascade:true)

(* One end of each relationship pair carries the translation; pick the
   to-one end for 1:N, the canonical end otherwise. *)
let owning_end schema (i : interface) (r : relationship) =
  match Schema.inverse_of schema r with
  | None -> true  (* dangling: translate what we can see *)
  | Some (_, inv) -> (
      match (r.rel_card, inv.rel_card) with
      | None, Some _ -> true  (* this is the to-one side of a 1:N *)
      | Some _, None -> false
      | None, None | Some _, Some _ ->
          (* 1:1 or M:N: translate from the canonical end *)
          (i.i_name, r.rel_name) <= (r.rel_target, r.rel_inverse))

let relationship_sql schema (i : interface) (r : relationship) =
  let target = Schema.get_interface schema r.rel_target in
  let t_pk_col, t_pk_ty, _ = primary_key schema target in
  let o_pk_col, o_pk_ty, _ = primary_key schema i in
  let cascade = r.rel_kind = Part_of || r.rel_kind = Instance_of in
  match (r.rel_card, Option.map (fun (_, inv) -> inv.rel_card) (Schema.inverse_of schema r)) with
  | None, (Some (Some _) | None) ->
      (* to-one side of 1:N: a column + FK on this table *)
      `Column
        ( Printf.sprintf "  %s %s," (sql_name r.rel_name) t_pk_ty,
          fk_clause ~column:(sql_name r.rel_name)
            ~target_table:(sql_name r.rel_target) ~target_col:t_pk_col ~cascade
          ^ "," )
  | None, Some None ->
      (* 1:1: column + FK + UNIQUE *)
      `Column
        ( Printf.sprintf "  %s %s UNIQUE," (sql_name r.rel_name) t_pk_ty,
          fk_clause ~column:(sql_name r.rel_name)
            ~target_table:(sql_name r.rel_target) ~target_col:t_pk_col ~cascade
          ^ "," )
  | Some _, _ ->
      (* M:N (or the collection side chosen as canonical): junction table *)
      let jt = Printf.sprintf "%s_%s" (sql_name i.i_name) (sql_name r.rel_name) in
      `Table
        (Printf.sprintf
           "CREATE TABLE %s (\n\
           \  %s_src %s NOT NULL,\n\
           \  %s_dst %s NOT NULL,\n\
           \  PRIMARY KEY (%s_src, %s_dst),\n\
            %s,\n\
            %s\n\
            );"
           jt (sql_name i.i_name) o_pk_ty (sql_name r.rel_target) t_pk_ty
           (sql_name i.i_name) (sql_name r.rel_target)
           (fk_clause
              ~column:(sql_name i.i_name ^ "_src")
              ~target_table:(sql_name i.i_name) ~target_col:o_pk_col ~cascade:true)
           (fk_clause
              ~column:(sql_name r.rel_target ^ "_dst")
              ~target_table:(sql_name r.rel_target) ~target_col:t_pk_col
              ~cascade))

let table_sql schema (i : interface) =
  let pk_col, pk_ty, is_surrogate = primary_key schema i in
  let pk_line =
    if is_surrogate then
      [ Printf.sprintf "  %s INTEGER PRIMARY KEY," pk_col ]
    else [ Printf.sprintf "  %s %s PRIMARY KEY," pk_col pk_ty ]
  in
  let attr_lines =
    i.i_attrs
    |> List.filter_map (fun a ->
           match a.attr_type with
           | D_collection _ -> None  (* side table *)
           | _ when (not is_surrogate) && sql_name a.attr_name = pk_col -> None
           | _ ->
               Some (Printf.sprintf "  %s %s," (sql_name a.attr_name) (sized_sql_type a)))
  in
  let isa_lines =
    i.i_supertypes
    |> List.filter (Schema.mem_interface schema)
    |> List.concat_map (fun s ->
           let si = Schema.get_interface schema s in
           let s_pk_col, s_pk_ty, _ = primary_key schema si in
           [
             Printf.sprintf "  %s_%s %s NOT NULL," (sql_name s) s_pk_col s_pk_ty;
             fk_clause
               ~column:(Printf.sprintf "%s_%s" (sql_name s) s_pk_col)
               ~target_table:(sql_name s) ~target_col:s_pk_col ~cascade:true
             ^ ",";
           ])
  in
  let rel_columns, rel_fks, junctions =
    List.fold_left
      (fun (cols, fks, tabs) r ->
        if not (owning_end schema i r) then (cols, fks, tabs)
        else if not (Schema.mem_interface schema r.rel_target) then (cols, fks, tabs)
        else
          match relationship_sql schema i r with
          | `Column (col, fk) -> (cols @ [ col ], fks @ [ fk ], tabs)
          | `Table t -> (cols, fks, tabs @ [ t ]))
      ([], [], []) i.i_rels
  in
  let op_comments =
    List.map
      (fun o ->
        Printf.sprintf "-- operation %s.%s does not translate to SQL"
          i.i_name o.op_name)
      i.i_ops
  in
  let body_lines = pk_line @ attr_lines @ isa_lines @ rel_columns @ rel_fks in
  let body =
    (* strip the trailing comma of the final line *)
    match List.rev body_lines with
    | [] -> ""
    | last :: rev_rest ->
        let last =
          if String.length last > 0 && last.[String.length last - 1] = ',' then
            String.sub last 0 (String.length last - 1)
          else last
        in
        String.concat "\n" (List.rev (last :: rev_rest))
  in
  let table = Printf.sprintf "CREATE TABLE %s (\n%s\n);" (sql_name i.i_name) body in
  let side_tables =
    i.i_attrs
    |> List.filter (fun a ->
           match a.attr_type with D_collection _ -> true | _ -> false)
    |> List.map (collection_attr_table schema i)
  in
  { tables = (table :: side_tables) @ junctions; comments = op_comments }

(** Translate a whole schema to SQL DDL text.  Tables are emitted in
    declaration order, with side and junction tables after their owners. *)
let ddl schema =
  let emitted = List.map (table_sql schema) schema.s_interfaces in
  let tables = List.concat_map (fun e -> e.tables) emitted in
  let comments = List.concat_map (fun e -> e.comments) emitted in
  String.concat "\n\n"
    ((Printf.sprintf "-- relational DDL generated from schema %s" schema.s_name
     :: tables)
    @ comments)
  ^ "\n"

(** Count of tables the translation produces (base + side + junction). *)
let table_count schema =
  List.fold_left
    (fun acc i -> acc + List.length (table_sql schema i).tables)
    0 schema.s_interfaces
