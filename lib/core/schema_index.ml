(** The indexed schema backend: O(log n) lookups, adjacency maps and
    incremental, dirty-set consistency checking.

    A value of type {!t} carries, alongside the schema itself:

    - [by_name] — name → (interface record, declaration position);
    - [subs] — supertype name → set of interfaces declaring it (the reverse
      ISA adjacency; keys may be dangling names);
    - [mentions] — name → set of interfaces whose definition mentions it
      anywhere (supertype list, relationship target, attribute domain,
      operation signature).  This is the reverse dependency relation the
      dirty-set is computed from;
    - a per-interface diagnostics cache plus a cache of the schema-global
      check results.

    The index is {e persistent}: updates return a new value and old values
    stay usable, which is what lets {!Session} implement undo by keeping
    old index versions.  For that reason the maps are balanced trees
    ([Map.Make (String)]) rather than mutable hashtables — a hashtable
    would be shared across versions and corrupted by divergence (the caches
    are mutable, but they are {e per-version} fields holding persistent
    maps, so mutation is only ever memoization).

    Incrementality: when interface [x] changes, the set of interfaces whose
    per-interface check results (or propagation-rule firings) can change is

    {v affected(x) = B ∪ ⋃ {mentions(b) | b ∈ B}   where B = {x} ∪ descendants(x) v}

    — descendants because inherited visibility flows down the ISA graph,
    mentions because every cross-interface check first names the interface
    it depends on.  {!update_interface} invalidates exactly that
    neighbourhood, so a later {!diagnostics} recomputes O(degree) interface
    checks instead of O(schema).  The schema-global checks (duplicate
    names, hierarchy shape, duplicate extents) are cached as a block and
    invalidated only by updates that touch names, supertypes, relationships
    or extents.

    Degenerate schemas with duplicate interface names (always an error, and
    rejected by {!Session.create}) are handled by falling back to a full
    rebuild on update and bypassing the cache for the duplicated names, so
    {!diagnostics} still equals the naive checker's output exactly. *)

open Odl.Types
module Schema = Odl.Schema
module Validate = Odl.Validate
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type iface_diags = {
  d_naming : Validate.diagnostic list;
  d_structural : Validate.diagnostic list;
  d_semantic : Validate.diagnostic list;
}

type global_diags = {
  g_naming : Validate.diagnostic list;
  g_hierarchy : Validate.diagnostic list;
  g_extents : Validate.diagnostic list;
  g_dups : SSet.t;  (** duplicated interface names (cache-bypass set) *)
}

type t = {
  sch : schema;
  by_name : (interface * int) SMap.t;
      (** position = declaration order; not contiguous after removals *)
  subs : SSet.t SMap.t;
  mentions : SSet.t SMap.t;
  next_pos : int;
  has_dups : bool;
  mutable cache : iface_diags SMap.t;
  mutable g_cache : global_diags option;
}

(* --- reverse-reference maintenance -------------------------------------- *)

let mentioned_names i =
  let add_domain d acc =
    match base_name d with None -> acc | Some n -> SSet.add n acc
  in
  SSet.empty
  |> (fun acc -> List.fold_left (Fun.flip SSet.add) acc i.i_supertypes)
  |> (fun acc ->
       List.fold_left (fun acc r -> SSet.add r.rel_target acc) acc i.i_rels)
  |> (fun acc ->
       List.fold_left (fun acc a -> add_domain a.attr_type acc) acc i.i_attrs)
  |> fun acc ->
  List.fold_left
    (fun acc o ->
      List.fold_left
        (fun acc a -> add_domain a.arg_type acc)
        (add_domain o.op_return acc) o.op_args)
    acc i.i_ops

let multi_add key v m =
  SMap.update key
    (function None -> Some (SSet.singleton v) | Some s -> Some (SSet.add v s))
    m

let multi_remove key v m =
  SMap.update key
    (function
      | None -> None
      | Some s ->
          let s = SSet.remove v s in
          if SSet.is_empty s then None else Some s)
    m

let index_refs name i (subs, mentions) =
  let subs = List.fold_left (fun m s -> multi_add s name m) subs i.i_supertypes in
  let mentions =
    SSet.fold (fun m acc -> multi_add m name acc) (mentioned_names i) mentions
  in
  (subs, mentions)

let deindex_refs name i (subs, mentions) =
  let subs =
    List.fold_left (fun m s -> multi_remove s name m) subs i.i_supertypes
  in
  let mentions =
    SSet.fold (fun m acc -> multi_remove m name acc) (mentioned_names i) mentions
  in
  (subs, mentions)

let build sch =
  let by_name, subs, mentions, next_pos, has_dups =
    List.fold_left
      (fun (by, subs, mentions, pos, dups) i ->
        let dups = dups || SMap.mem i.i_name by in
        let by =
          if SMap.mem i.i_name by then by else SMap.add i.i_name (i, pos) by
        in
        let subs, mentions = index_refs i.i_name i (subs, mentions) in
        (by, subs, mentions, pos + 1, dups))
      (SMap.empty, SMap.empty, SMap.empty, 0, false)
      sch.s_interfaces
  in
  {
    sch;
    by_name;
    subs;
    mentions;
    next_pos;
    has_dups;
    cache = SMap.empty;
    g_cache = None;
  }

(* --- queries -------------------------------------------------------------

   Each must answer exactly as the corresponding [Odl.Schema] scan does,
   including result order; the traversal code below mirrors the naive
   algorithms with the list scans replaced by map lookups. *)

let schema t = t.sch
let find_interface t n = Option.map fst (SMap.find_opt n t.by_name)
let mem_interface t n = SMap.mem n t.by_name

let get_interface t n =
  match find_interface t n with
  | Some i -> i
  | None -> raise (Schema.Unknown_interface n)

let interface_names t = List.map (fun i -> i.i_name) t.sch.s_interfaces

let pos_of t n =
  match SMap.find_opt n t.by_name with Some (_, p) -> p | None -> max_int

let in_declaration_order t names =
  List.sort (fun a b -> compare (pos_of t a) (pos_of t b)) names

let direct_supertypes t n =
  match find_interface t n with
  | None -> []
  | Some i -> List.filter (mem_interface t) i.i_supertypes

let direct_subtypes t n =
  match SMap.find_opt n t.subs with
  | None -> []
  | Some s -> in_declaration_order t (SSet.elements s)

let rec closure next visited frontier =
  match frontier with
  | [] -> List.rev visited
  | n :: rest ->
      if List.mem n visited then closure next visited rest
      else closure next (n :: visited) (next n @ rest)

let ancestors t n = closure (direct_supertypes t) [] (direct_supertypes t n)
let descendants t n = closure (direct_subtypes t) [] (direct_subtypes t n)

let same_isa_line t a b =
  String.equal a b || List.mem b (ancestors t a) || List.mem b (descendants t a)

let isa_roots t =
  t.sch.s_interfaces
  |> List.filter (fun i -> not (List.exists (mem_interface t) i.i_supertypes))
  |> List.map (fun i -> i.i_name)

let topo_ancestors t name = List.rev (name :: ancestors t name)

let dedup_by key xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    xs

let visible_attrs t name =
  topo_ancestors t name
  |> List.concat_map (fun n ->
         match find_interface t n with None -> [] | Some i -> i.i_attrs)
  |> List.rev
  |> dedup_by (fun a -> a.attr_name)
  |> List.rev

let relationships_targeting t name =
  (match SMap.find_opt name t.mentions with
  | None -> []
  | Some owners -> in_declaration_order t (SSet.elements owners))
  |> List.filter_map (find_interface t)
  |> List.concat_map (fun owner ->
         owner.i_rels
         |> List.filter (fun r -> String.equal r.rel_target name)
         |> List.map (fun r -> (owner, r)))

(* --- the dirty neighbourhood --------------------------------------------- *)

(* [seeds] plus all their transitive subtypes, as a set (order irrelevant
   here).  Walks [subs] directly so it also works for just-removed names. *)
let desc_set t seeds =
  let rec go visited = function
    | [] -> visited
    | n :: rest ->
        if SSet.mem n visited then go visited rest
        else
          let subs =
            match SMap.find_opt n t.subs with
            | None -> []
            | Some s -> SSet.elements s
          in
          go (SSet.add n visited) (subs @ rest)
  in
  go SSet.empty seeds

let dirty_closure t names =
  let b = desc_set t names in
  SSet.fold
    (fun n acc ->
      match SMap.find_opt n t.mentions with
      | None -> acc
      | Some refs -> SSet.union refs acc)
    b b

let affected_by t names =
  dirty_closure t names |> SSet.elements
  |> List.filter (mem_interface t)
  |> in_declaration_order t

(* --- updates -------------------------------------------------------------

   The dirty set is computed on the pre-update index; it is invariant under
   the update itself ([subs] entries reachable from the changed name and the
   [mentions] of that region only ever change in ways already covered by the
   seed), so pre- and post-computation agree. *)

let prune dirty cache = SSet.fold SMap.remove dirty cache

(* Schema-global checks survive an interface update that leaves names,
   supertype links, relationship ends and extents untouched. *)
let globals_survive old_i new_i =
  old_i.i_supertypes = new_i.i_supertypes
  && old_i.i_rels = new_i.i_rels
  && old_i.i_extent = new_i.i_extent

let update_interface t name f =
  match SMap.find_opt name t.by_name with
  | None -> raise (Schema.Unknown_interface name)
  | Some (old_i, p) ->
      let new_i = f old_i in
      if t.has_dups || not (String.equal new_i.i_name name) then
        (* rename or duplicated names: rare, degenerate — rebuild *)
        build (Schema.update_interface t.sch name f)
      else
        let dirty = dirty_closure t [ name ] in
        let refs = deindex_refs name old_i (t.subs, t.mentions) in
        let subs, mentions = index_refs name new_i refs in
        {
          t with
          sch = Schema.update_interface t.sch name (fun _ -> new_i);
          by_name = SMap.add name (new_i, p) t.by_name;
          subs;
          mentions;
          cache = prune dirty t.cache;
          g_cache =
            (if globals_survive old_i new_i then t.g_cache else None);
        }

let add_interface t i =
  let name = i.i_name in
  if t.has_dups || SMap.mem name t.by_name then
    build (Schema.add_interface t.sch i)
  else
    let dirty = dirty_closure t [ name ] in
    let subs, mentions = index_refs name i (t.subs, t.mentions) in
    {
      t with
      sch = Schema.add_interface t.sch i;
      by_name = SMap.add name (i, t.next_pos) t.by_name;
      subs;
      mentions;
      next_pos = t.next_pos + 1;
      cache = prune dirty t.cache;
      g_cache = None;
    }

let remove_interface t name =
  if t.has_dups then build (Schema.remove_interface t.sch name)
  else
    match SMap.find_opt name t.by_name with
    | None -> t  (* naive removal of an absent name is a no-op *)
    | Some (old_i, _) ->
        let dirty = dirty_closure t [ name ] in
        let subs, mentions = deindex_refs name old_i (t.subs, t.mentions) in
        {
          t with
          sch = Schema.remove_interface t.sch name;
          by_name = SMap.remove name t.by_name;
          subs;
          mentions;
          cache = prune dirty t.cache;
          g_cache = None;
        }

(* --- version deltas ------------------------------------------------------ *)

(* Because updates rebuild only the touched [by_name] entries (persistent
   maps share the rest), two versions of one lineage disagree physically on
   exactly the entries some update replaced.  Comparing entries by pointer
   therefore recovers the changed-name set in O(n) worst case but O(changed ·
   log n) typically, without storing any explicit changelog.  A no-op update
   that returns the old record unchanged compares equal and is (correctly)
   not reported. *)
let changed_names a b =
  if a.sch == b.sch then []
  else
    let s =
      SMap.fold
        (fun n (ia, _) acc ->
          match SMap.find_opt n b.by_name with
          | Some (ib, _) when ia == ib -> acc
          | _ -> SSet.add n acc)
        a.by_name SSet.empty
    in
    let s =
      SMap.fold
        (fun n _ acc -> if SMap.mem n a.by_name then acc else SSet.add n acc)
        b.by_name s
    in
    SSet.elements s

(* --- incremental consistency checking ------------------------------------ *)

module Lookup = struct
  type nonrec t = t

  let schema = schema
  let find_interface = find_interface
  let mem_interface = mem_interface
  let direct_supertypes = direct_supertypes
  let direct_subtypes = direct_subtypes
  let ancestors = ancestors
  let visible_attrs = visible_attrs
end

module C = Validate.Checks (Lookup)

let globals t =
  match t.g_cache with
  | Some g -> g
  | None ->
      let g_naming = C.naming_global t in
      let g =
        {
          g_naming;
          g_hierarchy = C.hierarchy t;
          g_extents = C.semantic_global t;
          g_dups =
            List.fold_left
              (fun s (d : Validate.diagnostic) -> SSet.add d.subject s)
              SSet.empty g_naming;
        }
      in
      t.g_cache <- Some g;
      g

let interface_diags t ~bypass i =
  let compute () =
    {
      d_naming = C.naming_interface i;
      d_structural = C.structural_interface t i;
      d_semantic = C.semantic_interface t i;
    }
  in
  if bypass then compute ()
  else
    match SMap.find_opt i.i_name t.cache with
    | Some d -> d
    | None ->
        let d = compute () in
        t.cache <- SMap.add i.i_name d t.cache;
        d

let diagnostics t =
  let g = globals t in
  let per =
    List.map
      (fun i ->
        (* duplicated names share one cache slot; bypass it so each record
           is checked individually, exactly as the naive checker does *)
        interface_diags t ~bypass:(t.has_dups && SSet.mem i.i_name g.g_dups) i)
      t.sch.s_interfaces
  in
  g.g_naming
  @ List.concat_map (fun d -> d.d_naming) per
  @ List.concat_map (fun d -> d.d_structural) per
  @ g.g_hierarchy @ g.g_extents
  @ List.concat_map (fun d -> d.d_semantic) per

let errors t =
  List.filter
    (fun (d : Validate.diagnostic) -> d.severity = Validate.Error)
    (diagnostics t)

let is_valid t = errors t = []
