(** The replayable operation log, extracted from {!Session} as a value of
    its own.

    A session records {e steps} (operation + impact + undo snapshot); an
    op-log is the durable, exchangeable projection of that record: the
    [(concept kind, operation)] pairs in application order, each with the
    impact events observed when it committed, stamped with the session
    version it was sealed at.  The log is what the repository journals,
    what [replay] rebuilds a session from — and, new here, what [rebase]
    replays onto a {e moved-ahead} base when two designers branched the
    same variant and one of them merges back.

    Rebase is optimistic and semantic, not textual: every branch operation
    is re-run through the permission matrix ({!Permission.allowed}) and the
    incremental consistency checker (via {!Session.apply}, i.e.
    {!Apply.Indexed} over {!Schema_index}) against the base as it stands
    now.  Each op is classified:

    - {e clean} — applies with exactly the impact recorded on the branch;
    - {e auto-merged} — already present on the base (both sides made the
      same change) or applies with {e different} propagated impact, which
      the merge adopts;
    - {e conflict} — refused, either by the permission matrix (the op's
      concept schema type no longer admits it) or by the checker
      (constraint violation / unknown construct on the rebased base).
      Conflicts are reported, never silently applied.

    The result folds into the shrink-wrap → custom {!Mapping} of the merged
    session plus a structured impact report. *)

open Odl.Types

type entry = {
  e_kind : Concept.kind;  (** concept schema type the op was issued from *)
  e_op : Modop.t;
  e_events : Change.event list;
      (** impact recorded when the op originally committed *)
}

type t = {
  entries : entry list;  (** application order (oldest first) *)
  sealed_at : int;  (** {!Session.version} stamp the log was taken at *)
}

val of_session : Session.t -> t
(** The committed (not undone) steps of [s], oldest first, stamped with the
    session's current version. *)

val entry_of_step : Session.step -> entry
val pairs : t -> (Concept.kind * Modop.t) list
val length : t -> int

val render : t -> string
(** The log in the modification language (replayable via {!replay}); one
    [// in <concept schema>] comment line per op.  This is the text the
    repository stores as [oplog.txt]. *)

val replay :
  ?paranoid:bool ->
  schema ->
  (Concept.kind * Modop.t) list ->
  (Session.t, Apply.error) result
(** Rebuild a session by replaying a [(kind, op)] log on a shrink wrap
    schema.  (Moved here from [Session.replay].) *)

val replay_log : ?paranoid:bool -> schema -> t -> (Session.t, Apply.error) result

(** {1 Fork-point arithmetic} *)

val common_prefix : base:Session.t -> branch:Session.t -> int
(** Length of the longest shared leading run of [(kind, op)] steps — the
    fork point of two sessions that branched from one lineage.  Robust
    against undo on either side: steps only push and pop at the tail, so
    the prefix is exactly what both histories still agree on. *)

val branch_entries : base:Session.t -> branch:Session.t -> entry list
(** The branch's steps past {!common_prefix} — the ops to rebase. *)

(** {1 Rebase} *)

type reason =
  | Permission of string
      (** refused by the paper's Table 1: the op's concept schema type does
          not admit it against the rebased base *)
  | Rejected of Apply.error
      (** refused by the consistency checker: unknown construct, conflict,
          or constraint violation on the moved-ahead base *)

type outcome =
  | Clean of Change.event list  (** applied; impact identical to recorded *)
  | Auto_merged of string * Change.event list
      (** applied (or skipped as already-present), with the difference
          described; the events are the ones actually produced *)
  | Conflict of reason  (** not applied; surfaced in the report *)

type verdict = { v_entry : entry; v_outcome : outcome }

type report = {
  r_base_version : int;  (** base session version the rebase started from *)
  r_session : Session.t;  (** the merged session (conflicts excluded) *)
  r_mapping : Mapping.t;  (** shrink-wrap → custom mapping of the merge *)
  r_verdicts : verdict list;  (** one per branch op, in branch order *)
  r_clean : int;
  r_auto : int;
  r_conflict : int;
}

val rebase : base:Session.t -> branch_ops:entry list -> report
(** Replay [branch_ops] onto [base] (already moved ahead of the fork
    point), classifying each op as above.  Conflicting ops are skipped —
    the merged session contains only the clean and auto-merged ones. *)

val rebase_ops :
  ?paranoid:bool ->
  schema ->
  base_ops:(Concept.kind * Modop.t) list ->
  branch_ops:entry list ->
  (report, Apply.error) result
(** Convenience: replay [base_ops] on [schema] first, then {!rebase}. *)

val conflicts : report -> (entry * reason) list

val render_report : string -> report -> string
(** The structured merge impact report shown to the designer: per-op
    verdict lines (with impact events for applied ops and refusal reasons
    for conflicts), the clean/auto/conflict tally, and the merged mapping
    summary.  The first argument labels the merge (e.g. ["w into v"]). *)
