(** A shrink wrap schema design session.

    The session owns the artifacts of the paper's architecture (Figure 1):
    the original shrink wrap schema, its concept schemas, the workspace for
    the schema under design, the operation log with recorded impacts, the
    local-name bindings, and — derived on demand — the custom schema, the
    consistency report, and the shrink-wrap → custom mapping.  Sessions are
    immutable values: applying an operation returns a new session, and undo
    is structural. *)

open Odl.Types

type step = {
  st_kind : Concept.kind;  (** concept schema type the op was issued from *)
  st_op : Modop.t;
  st_events : Change.event list;  (** direct + propagated impact *)
  st_before : schema;  (** workspace before this step, for undo *)
}

type t

exception Divergence of string
(** Raised in paranoid mode when the indexed engine's outcome for an
    operation differs from the naive reference engine's — acceptance,
    resulting workspace, impact events, or diagnostics.  Indicates a bug in
    the index; the operation is not committed. *)

(** {1 Observation hooks}

    Process-wide, installed once by the serving layer; [None] (the default)
    reduces every instrumentation point to a single load.  The hooks run on
    the applying thread and must be fast and non-raising. *)

type hooks = {
  h_now : unit -> float;
      (** clock for [h_check] timing — supplied by the installer, since this
          library links no clock source *)
  h_op_applied : kind:Concept.kind -> dirty:int -> unit;
      (** a committed operation (apply or redo), with the size of the
          neighbourhood the incremental checker re-examines for it *)
  h_check : seconds:float -> findings:int -> unit;
      (** a consistency report was served: wall time and finding count *)
}

val set_hooks : hooks option -> unit

val create : ?paranoid:bool -> schema -> (t, Odl.Validate.diagnostic list) result
(** Start a session; an invalid shrink wrap schema is rejected with its
    error diagnostics.  Operations run on the indexed engine; with
    [~paranoid:true] (default [false]) every operation is additionally run
    through the naive engine and compared (see {!Divergence}). *)

val original : t -> schema
(** The shrink wrap schema; never modified. *)

val workspace : t -> schema

val index : t -> Schema_index.t
(** The workspace's schema index (kept in lock-step with {!workspace}). *)
val concepts : t -> Concept.t list
(** The decomposition of the original schema. *)

val log : t -> step list
(** The applied steps, oldest first (rebuilt on each call — report-path
    cost; the hot path uses {!steps_rev}). *)

val steps_rev : t -> step list
(** The applied steps, {e newest} first — the session's internal spine.
    Apply conses onto it and undo pops it, so two sessions of one lineage
    share the spine below their divergence point {e physically}; callers
    (the service's journal delta) exploit this to diff logs by pointer
    equality in O(changed steps). *)

val step_count : t -> int
(** [List.length (log t)]: committed (not undone) steps.  O(1). *)

val version : t -> int
(** Monotonic change stamp: [0] at {!create}, bumped by every state
    transition (apply, undo, redo, alias changes).  Unlike {!step_count} it
    never goes backwards along a session's lineage, so snapshot readers can
    use it to detect staleness. *)
val find_concept : t -> string -> Concept.t option

val apply :
  t -> kind:Concept.kind -> Modop.t -> (t * Change.event list, Apply.error) result

val apply_in :
  t -> concept_id:string -> Modop.t -> (t * Change.event list, Apply.error) result
(** Apply from a specific concept schema; the operation's subject must be
    covered by that concept schema. *)

val preview : t -> kind:Concept.kind -> Modop.t -> (Change.event list, Apply.error) result

val undo : t -> t option
(** Revert the most recent step; [None] when the log is empty.  The undone
    operation becomes redoable until the next fresh application. *)

val redo : t -> (t * Change.event list) option
(** Re-apply the most recently undone step; [None] when there is nothing to
    redo. *)

val redoable : t -> int
(** How many undone steps could be redone. *)

val custom_schema : ?name:string -> t -> schema
(** The customized user schema (default name: ["<original>_custom"]). *)

(** {1 Local names} *)

val add_alias : t -> Aliases.target -> string -> (t, string) result
val remove_alias : t -> Aliases.target -> t
val aliases : t -> Aliases.t
(** Live bindings; stale ones are pruned on read. *)

val aliases_report : t -> string
val restore_aliases : t -> Aliases.t -> t

(** {1 Reports and deliverables} *)

val consistency_report : t -> Odl.Validate.diagnostic list
(** Equal to [Odl.Validate.check (workspace t)], served incrementally from
    the index's dirty-set diagnostics cache. *)
val consistency_report_text : t -> string
val mapping : t -> Mapping.t
val mapping_report : t -> string
val impact_report : t -> string
val current_concepts : t -> Concept.t list
(** Decomposition of the workspace (reflects customizations). *)

val deliverables : t -> string
(** All designer deliverables in one document. *)

(** The replayable op-log projection of a session — serialization
    ([Oplog.render]), replay ([Oplog.replay]), and optimistic rebase across
    branched variants ([Oplog.rebase]) — lives in {!Oplog}. *)
