(** The explanation facility (paper section 5, proposed extension): prose
    explanations of concept schemas, so a designer can read what a concept
    schema says instead of decoding the notation.

    Output is deterministic English, one sentence per fact, in declaration
    order. *)

open Odl.Types
module Schema = Odl.Schema

let article noun =
  match noun.[0] with
  | 'a' | 'e' | 'i' | 'o' | 'u' | 'A' | 'E' | 'I' | 'O' | 'U' -> "an " ^ noun
  | _ -> "a " ^ noun

(* "Course_Offering" -> "course offering" *)
let prose_name n = String.lowercase_ascii (String.map (function '_' -> ' ' | c -> c) n)

let rec domain_prose = function
  | D_int -> "an integer"
  | D_float -> "a number"
  | D_string -> "a string"
  | D_char -> "a character"
  | D_boolean -> "a flag"
  | D_void -> "nothing"
  | D_named n -> article (prose_name n)
  | D_collection (k, t) ->
      Printf.sprintf "a %s of %s values" (collection_kind_name k)
        (match t with
        | D_named n -> prose_name n
        | _ -> String.concat " " (List.tl (String.split_on_char ' ' (domain_prose t))))

let attr_sentence owner (a : attribute) =
  Printf.sprintf "Each %s records %s (%s%s)." (prose_name owner) a.attr_name
    (domain_prose a.attr_type)
    (match a.attr_size with
    | Some n -> Printf.sprintf " of at most %d" n
    | None -> "")

let card_phrase = function
  | None -> "exactly one"
  | Some Set -> "a set of"
  | Some List -> "an ordered list of"
  | Some Bag -> "a bag of"
  | Some Array -> "an array of"

let rel_sentence owner (r : relationship) =
  let target = prose_name r.rel_target in
  let base =
    match role_of_relationship r with
    | Assoc_end ->
        Printf.sprintf "Each %s is related to %s %s through %s (inverse %s)."
          (prose_name owner) (card_phrase r.rel_card) target r.rel_name
          r.rel_inverse
    | Whole_end ->
        Printf.sprintf "Each %s is a whole aggregating %s %s parts through %s."
          (prose_name owner) (card_phrase r.rel_card) target r.rel_name
    | Part_end ->
        Printf.sprintf "Each %s is a part of exactly one %s (through %s)."
          (prose_name owner) target r.rel_name
    | Generic_end ->
        Printf.sprintf
          "Each %s is a generic specification with %s %s instances through %s."
          (prose_name owner) (card_phrase r.rel_card) target r.rel_name
    | Instance_end ->
        Printf.sprintf "Each %s is an instance of exactly one %s (through %s)."
          (prose_name owner) target r.rel_name
  in
  if r.rel_order_by = [] then base
  else
    Printf.sprintf "%s The %s end is kept ordered by %s." base r.rel_name
      (String.concat ", " r.rel_order_by)

let op_sentence owner (o : operation) =
  let args =
    match o.op_args with
    | [] -> "no arguments"
    | args ->
        String.concat ", "
          (List.map (fun a -> a.arg_name ^ " (" ^ domain_prose a.arg_type ^ ")") args)
  in
  let raises =
    match o.op_raises with
    | [] -> ""
    | es -> Printf.sprintf "  It can raise %s." (String.concat ", " es)
  in
  Printf.sprintf "A %s can %s, taking %s and returning %s.%s" (prose_name owner)
    o.op_name args (domain_prose o.op_return) raises

let keys_sentence owner keys =
  match keys with
  | [] -> []
  | keys ->
      [
        Printf.sprintf "A %s is identified by %s." (prose_name owner)
          (String.concat " or by "
             (List.map (fun k -> String.concat " together with " k) keys));
      ]

(** Explain one wagon wheel: what the focal type records, how it relates to
    its neighbours, and what it can do. *)
let wagon_wheel schema (c : Concept.t) =
  let i = Schema.get_interface schema c.c_focus in
  let intro =
    Printf.sprintf "This concept schema presents the %s point of view."
      (prose_name c.c_focus)
  in
  let isa =
    match i.i_supertypes with
    | [] -> []
    | supers ->
        [
          Printf.sprintf "Every %s is %s." (prose_name c.c_focus)
            (String.concat " and "
               (List.map (fun s -> article (prose_name s)) supers));
        ]
  in
  let subs =
    match Schema.direct_subtypes schema c.c_focus with
    | [] -> []
    | subs ->
        [
          Printf.sprintf "Specialized kinds of %s: %s." (prose_name c.c_focus)
            (String.concat ", " (List.map prose_name subs));
        ]
  in
  (intro :: isa)
  @ subs
  @ keys_sentence c.c_focus i.i_keys
  @ List.map (attr_sentence c.c_focus) i.i_attrs
  @ List.map (rel_sentence c.c_focus) i.i_rels
  @ List.map (op_sentence c.c_focus) i.i_ops

(** Explain a generalization hierarchy: the inheritance paths and what each
    subtype adds. *)
let generalization schema (c : Concept.t) =
  let intro =
    Printf.sprintf
      "This concept schema presents the generalization hierarchy rooted at %s."
      (prose_name c.c_focus)
  in
  let member n =
    match Schema.find_interface schema n with
    | None -> []
    | Some i ->
        let path = Schema.ancestors schema n in
        let inherits =
          if path = [] then
            Printf.sprintf "%s is the root of the hierarchy."
              (String.capitalize_ascii (prose_name n))
          else
            Printf.sprintf "%s inherits from %s."
              (String.capitalize_ascii (prose_name n))
              (String.concat ", then " (List.map prose_name path))
        in
        let adds =
          let own =
            List.map (fun a -> a.attr_name) i.i_attrs
            @ List.map (fun r -> r.rel_name) i.i_rels
            @ List.map (fun o -> o.op_name) i.i_ops
          in
          match own with
          | [] -> []
          | own -> [ Printf.sprintf "  It adds: %s." (String.concat ", " own) ]
        in
        inherits :: adds
  in
  intro :: List.concat_map member c.c_members

(** Explain an aggregation hierarchy: the parts explosion in prose. *)
let aggregation schema (c : Concept.t) =
  let intro =
    Printf.sprintf
      "This concept schema presents the parts explosion of %s."
      (prose_name c.c_focus)
  in
  let member n =
    match Schema.find_interface schema n with
    | None -> []
    | Some i ->
        i.i_rels
        |> List.filter (fun r ->
               role_of_relationship r = Whole_end
               && Concept.mem_edge c n r.rel_name)
        |> List.map (fun r ->
               Printf.sprintf "Each %s consists of %s %s (through %s)."
                 (prose_name n) (card_phrase r.rel_card)
                 (prose_name r.rel_target) r.rel_name)
  in
  intro :: List.concat_map member c.c_members

(** Explain an instance-of chain: generic specifications and their
    instantiation levels. *)
let instance_chain schema (c : Concept.t) =
  let intro =
    Printf.sprintf
      "This concept schema presents the instantiation sequence headed by %s."
      (prose_name c.c_focus)
  in
  let member n =
    match Schema.find_interface schema n with
    | None -> []
    | Some i ->
        i.i_rels
        |> List.filter (fun r ->
               role_of_relationship r = Generic_end
               && Concept.mem_edge c n r.rel_name)
        |> List.map (fun r ->
               Printf.sprintf
                 "Each %s is a generic specification; its instances are %s \
                  objects (through %s)."
                 (prose_name n) (prose_name r.rel_target) r.rel_name)
  in
  intro :: List.concat_map member c.c_members

(** Explain any concept schema, as a list of sentences. *)
let concept schema (c : Concept.t) =
  match c.c_kind with
  | Concept.Wagon_wheel -> wagon_wheel schema c
  | Concept.Generalization -> generalization schema c
  | Concept.Aggregation -> aggregation schema c
  | Concept.Instance_chain -> instance_chain schema c

let concept_text schema c = String.concat "\n" (concept schema c)
