(** Remedial suggestions after a rejected operation (paper section 5: using
    constraint analysis "to suggest the operations that need to be altered").

    Given the operation, the concept schema context, and the rejection, the
    advisor proposes concrete next steps: the right concept schema to issue
    the operation from, near-miss name corrections, prerequisite additions,
    corrected old-values for stale modifications, or legal move destinations. *)

open Odl.Types
module Schema = Odl.Schema

(* Damerau-free Levenshtein distance, small strings only. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let d = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do
    d.(i).(0) <- i
  done;
  for j = 0 to lb do
    d.(0).(j) <- j
  done;
  for i = 1 to la do
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      d.(i).(j) <-
        min
          (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1))
          (d.(i - 1).(j - 1) + cost)
    done
  done;
  d.(la).(lb)

(** Names from [candidates] within edit distance 2 of [name], nearest
    first. *)
let near_misses name candidates =
  candidates
  |> List.filter_map (fun c ->
         let dist = edit_distance (String.lowercase_ascii name) (String.lowercase_ascii c) in
         if dist > 0 && dist <= 2 then Some (dist, c) else None)
  |> List.sort compare
  |> List.map snd

let member_names i =
  List.map (fun a -> a.attr_name) i.i_attrs
  @ List.map (fun r -> r.rel_name) i.i_rels
  @ List.map (fun o -> o.op_name) i.i_ops

(* did-you-mean for a name that failed to resolve *)
let name_suggestions schema missing =
  let interface_hits = near_misses missing (Schema.interface_names schema) in
  let member_hits =
    schema.s_interfaces
    |> List.concat_map (fun i ->
           near_misses missing (member_names i)
           |> List.map (fun m -> i.i_name ^ "." ^ m))
  in
  (match interface_hits with
  | [] -> []
  | hits ->
      [ Printf.sprintf "did you mean interface %s?" (String.concat " or " hits) ])
  @
  match member_hits with
  | [] -> []
  | hits -> [ Printf.sprintf "did you mean %s?" (String.concat " or " hits) ]

let isa_line_of ~original schema t =
  let s = if Schema.mem_interface original t then original else schema in
  Schema.ancestors s t @ Schema.descendants s t

(* extract the word after a known prefix in an error message, e.g. the
   missing name in "interface Foo" *)
let last_word m =
  match String.rindex_opt m ' ' with
  | None -> m
  | Some i -> String.sub m (i + 1) (String.length m - i - 1)

(** Suggestions for [op] issued in [kind] and rejected with [error].
    Best-effort; the empty list means the advisor has nothing to offer. *)
let suggest ~original schema kind op (error : Apply.error) =
  let op_name = Modop.name op in
  match error with
  | Apply.Not_allowed _ ->
      Permission.homes op_name
      |> List.filter (fun k -> k <> kind)
      |> List.map (fun k ->
             Printf.sprintf "issue %s from a %s concept schema (e.g. focus %s:...)"
               op_name (Concept.kind_name k) (Concept.id_prefix k))
  | Apply.Unknown m ->
      let missing = last_word m in
      (* member errors read "attribute Person.nmae": search on the member *)
      let missing =
        match String.rindex_opt missing '.' with
        | Some i -> String.sub missing (i + 1) (String.length missing - i - 1)
        | None -> missing
      in
      let add_first =
        if
          String.length m >= 9
          && String.sub m 0 9 = "interface"
          && not (Schema.mem_interface schema missing)
        then
          [
            Printf.sprintf "add it first: add_type_definition(%s)" missing;
          ]
        else []
      in
      name_suggestions schema missing @ add_first
  | Apply.Conflict m ->
      if Str_helpers.contains m "already exists" then
        [
          Printf.sprintf
            "delete the existing construct first, or customize it with modify \
             operations (name equivalence identifies same-named constructs)";
        ]
      else if Str_helpers.contains m "already has" then
        [ "pick a different name, or delete the existing one first" ]
      else []
  | Apply.Violation m -> (
      if Str_helpers.contains m "generalization hierarchy" then
        (* a move left the ISA line: list the legal destinations *)
        match op with
        | Modop.Modify_attribute (owner, member, _)
        | Modop.Modify_operation (owner, member, _) ->
            let line = isa_line_of ~original schema owner in
            if line = [] then
              [ Printf.sprintf "%s has no ISA line; the member %s cannot move"
                  owner member ]
            else
              [
                Printf.sprintf "legal destinations for %s.%s: %s" owner member
                  (String.concat ", " line);
              ]
        | Modop.Modify_relationship_target_type (_, _, old_t, _)
        | Modop.Modify_part_of_target_type (_, _, old_t, _)
        | Modop.Modify_instance_of_target_type (_, _, old_t, _) ->
            let line = isa_line_of ~original schema old_t in
            if line = [] then []
            else
              [
                Printf.sprintf "legal new targets for the %s end: %s" old_t
                  (String.concat ", " line);
              ]
        | _ -> []
      else if Str_helpers.contains m "expected" then
        (* a stale old-value: report the current value so the designer can
           reissue the corrected operation *)
        [ "the view is stale; the workspace has: " ^ m ]
      else if Str_helpers.contains m "cycle" then
        [ "re-wire the hierarchy top-down: delete the old link before adding \
           the reversed one" ]
      else [])

(* --- repair planning ------------------------------------------------------ *)

(* Rewrite a stale modify operation so its old-value argument matches the
   workspace.  [None] when the operation carries no old value or the
   construct cannot be found. *)
let correct_stale schema (op : Modop.t) : Modop.t option =
  let attr n a = Option.bind (Schema.find_interface schema n) (fun i -> Schema.find_attr i a) in
  let rel n p = Option.bind (Schema.find_interface schema n) (fun i -> Schema.find_rel i p) in
  let op_def n o = Option.bind (Schema.find_interface schema n) (fun i -> Schema.find_op i o) in
  match op with
  | Modify_supertype (n, _, news) ->
      Option.map
        (fun i -> Modop.Modify_supertype (n, i.i_supertypes, news))
        (Schema.find_interface schema n)
  | Modify_extent_name (n, _, new_e) ->
      Option.bind (Schema.find_interface schema n) (fun i ->
          Option.map (fun e -> Modop.Modify_extent_name (n, e, new_e)) i.i_extent)
  | Delete_extent_name (n, _) ->
      Option.bind (Schema.find_interface schema n) (fun i ->
          Option.map (fun e -> Modop.Delete_extent_name (n, e)) i.i_extent)
  | Modify_attribute_type (n, a, _, new_t) ->
      Option.map (fun x -> Modop.Modify_attribute_type (n, a, x.attr_type, new_t)) (attr n a)
  | Modify_attribute_size (n, a, _, new_s) ->
      Option.map (fun x -> Modop.Modify_attribute_size (n, a, x.attr_size, new_s)) (attr n a)
  | Modify_relationship_cardinality (n, p, _, new_c) ->
      Option.map
        (fun r -> Modop.Modify_relationship_cardinality (n, p, r.rel_card, new_c))
        (rel n p)
  | Modify_relationship_order_by (n, p, _, new_l) ->
      Option.map
        (fun r -> Modop.Modify_relationship_order_by (n, p, r.rel_order_by, new_l))
        (rel n p)
  | Modify_part_of_cardinality (n, p, _, new_k) ->
      Option.bind (rel n p) (fun r ->
          match r.rel_card with
          | Some k -> Some (Modop.Modify_part_of_cardinality (n, p, k, new_k))
          | None -> None)
  | Modify_part_of_order_by (n, p, _, new_l) ->
      Option.map
        (fun r -> Modop.Modify_part_of_order_by (n, p, r.rel_order_by, new_l))
        (rel n p)
  | Modify_instance_of_cardinality (n, p, _, new_k) ->
      Option.bind (rel n p) (fun r ->
          match r.rel_card with
          | Some k -> Some (Modop.Modify_instance_of_cardinality (n, p, k, new_k))
          | None -> None)
  | Modify_instance_of_order_by (n, p, _, new_l) ->
      Option.map
        (fun r -> Modop.Modify_instance_of_order_by (n, p, r.rel_order_by, new_l))
        (rel n p)
  | Modify_operation_return_type (n, o, _, new_t) ->
      Option.map
        (fun x -> Modop.Modify_operation_return_type (n, o, x.op_return, new_t))
        (op_def n o)
  | Modify_operation_arg_list (n, o, _, new_a) ->
      Option.map
        (fun x -> Modop.Modify_operation_arg_list (n, o, x.op_args, new_a))
        (op_def n o)
  | Modify_operation_exceptions_raised (n, o, _, new_e) ->
      Option.map
        (fun x -> Modop.Modify_operation_exceptions_raised (n, o, x.op_raises, new_e))
        (op_def n o)
  | Modify_relationship_target_type (n, p, _, new_t) ->
      Option.map
        (fun r -> Modop.Modify_relationship_target_type (n, p, r.rel_target, new_t))
        (rel n p)
  | Modify_part_of_target_type (n, p, _, new_t) ->
      Option.map
        (fun r -> Modop.Modify_part_of_target_type (n, p, r.rel_target, new_t))
        (rel n p)
  | Modify_instance_of_target_type (n, p, _, new_t) ->
      Option.map
        (fun r -> Modop.Modify_instance_of_target_type (n, p, r.rel_target, new_t))
        (rel n p)
  | Modify_key_list (n, _, new_k) ->
      (* only unambiguous when the interface has exactly one key *)
      Option.bind (Schema.find_interface schema n) (fun i ->
          match i.i_keys with
          | [ only ] -> Some (Modop.Modify_key_list (n, only, new_k))
          | _ -> None)
  | _ -> None

(* One candidate fix for a failed step: either a prerequisite operation to
   prepend, or a replacement for the failing operation itself. *)
type fix = Prepend of Concept.kind * Modop.t | Replace of Concept.kind * Modop.t

let fix_for schema kind op (error : Apply.error) =
  match error with
  | Apply.Not_allowed _ -> (
      match Permission.homes (Modop.name op) with
      | k :: _ -> Some (Replace (k, op))
      | [] -> None)
  | Apply.Unknown m when Str_helpers.starts_with ~prefix:"interface " m
                         || Str_helpers.starts_with ~prefix:"domain type " m
                         || Str_helpers.starts_with ~prefix:"signature type " m ->
      let missing = last_word m in
      if Odl.Names.is_valid missing && not (Odl.Names.is_keyword missing)
         && not (Schema.mem_interface schema missing)
      then Some (Prepend (Concept.Wagon_wheel, Modop.Add_type_definition missing))
      else None
  | Apply.Violation m when Str_helpers.contains m "expected" ->
      Option.map (fun op' -> Replace (kind, op')) (correct_stale schema op)
  | _ -> None

(** [repair_plan ~original workspace kind op] attempts to turn a rejected
    operation into a short {e verified} plan: prerequisite operations
    followed by (a possibly corrected form of) the operation itself, such
    that the whole plan applies cleanly.  [None] when no plan is found. *)
let repair_plan ~original workspace kind op =
  let rec go workspace prefix kind op budget =
    match Apply.apply ~original ~kind workspace op with
    | Ok _ -> Some (List.rev ((kind, op) :: prefix))
    | Error _ when budget = 0 -> None
    | Error e -> (
        match fix_for workspace kind op e with
        | None -> None
        | Some (Replace (kind', op')) ->
            if kind' = kind && Modop.equal op' op then None
            else go workspace prefix kind' op' (budget - 1)
        | Some (Prepend (pk, pre)) -> (
            match Apply.apply ~original ~kind:pk workspace pre with
            | Error _ -> None
            | Ok (workspace', _) ->
                go workspace' ((pk, pre) :: prefix) kind op (budget - 1)))
  in
  go workspace [] kind op 4

let suggest_text ~original schema kind op error =
  match suggest ~original schema kind op error with
  | [] -> []
  | suggestions -> List.map (fun s -> "suggestion: " ^ s) suggestions
