(** Algorithmic decomposition of a shrink wrap schema into concept schemas.

    Guarantees (tested): at least one wagon wheel exists per object type, and
    the union of all wagon wheel projections reconstructs the original schema
    ({!Recompose.reconstruct}). *)

open Odl.Types

val wagon_wheel : schema -> type_name -> Concept.t
(** The wagon wheel centred on the given object type: the focal interface,
    every interface one relationship link away (any kind, either direction),
    and the focal point's direct supertypes and subtypes. *)

val wagon_wheels : schema -> Concept.t list
(** One per object type, in declaration order. *)

val generalization_hierarchy : schema -> type_name -> Concept.t
(** The ISA tree rooted at the given type. *)

val generalization_hierarchies : schema -> Concept.t list
(** One per ISA root that has subtypes. *)

val aggregation_hierarchy : schema -> type_name -> Concept.t
(** The parts explosion rooted at the given type. *)

val aggregation_roots : schema -> type_name list
(** Interfaces that aggregate parts but are not parts themselves. *)

val aggregation_hierarchies : schema -> Concept.t list

val instance_chain : schema -> type_name -> Concept.t
(** The instance-of chain headed at the given type. *)

val instance_heads : schema -> type_name list
(** Generic entities that are not themselves instances of anything. *)

val instance_chains : schema -> Concept.t list

val decompose : schema -> Concept.t list
(** Wagon wheels, then generalization, aggregation and instance-of
    hierarchies. *)

val find : Concept.t list -> string -> Concept.t option
(** Look a concept schema up by its id (e.g. ["ww:Course_Offering"]). *)
