(** Algorithmic decomposition of a shrink wrap schema into concept schemas.

    Guarantees (tested): at least one wagon wheel exists per object type, and
    the union of all wagon wheel projections reconstructs the original schema
    ({!Recompose.reconstruct}).

    Functorized over {!Schema_view.S}; the top-level functions below are the
    naive instantiation, {!Indexed} the one over {!Schema_index.t}.  Both
    backends produce identical concept lists (tested by property). *)

open Odl.Types

module Make (V : Schema_view.S) : sig
  val wagon_wheel : V.t -> type_name -> Concept.t
  val wagon_wheels : V.t -> Concept.t list
  val generalization_hierarchy : V.t -> type_name -> Concept.t
  val generalization_hierarchies : V.t -> Concept.t list
  val aggregation_hierarchy : V.t -> type_name -> Concept.t
  val aggregation_roots : V.t -> type_name list
  val aggregation_hierarchies : V.t -> Concept.t list
  val instance_chain : V.t -> type_name -> Concept.t
  val instance_heads : V.t -> type_name list
  val instance_chains : V.t -> Concept.t list
  val decompose : V.t -> Concept.t list
end

module Indexed : module type of Make (Schema_index)

val wagon_wheel : schema -> type_name -> Concept.t
(** The wagon wheel centred on the given object type: the focal interface,
    every interface one relationship link away (any kind, either direction),
    and the focal point's direct supertypes and subtypes. *)

val wagon_wheels : schema -> Concept.t list
(** One per object type, in declaration order. *)

val generalization_hierarchy : schema -> type_name -> Concept.t
(** The ISA tree rooted at the given type. *)

val generalization_hierarchies : schema -> Concept.t list
(** One per ISA root that has subtypes. *)

val aggregation_hierarchy : schema -> type_name -> Concept.t
(** The parts explosion rooted at the given type. *)

val aggregation_roots : schema -> type_name list
(** Interfaces that aggregate parts but are not parts themselves. *)

val aggregation_hierarchies : schema -> Concept.t list

val instance_chain : schema -> type_name -> Concept.t
(** The instance-of chain headed at the given type. *)

val instance_heads : schema -> type_name list
(** Generic entities that are not themselves instances of anything. *)

val instance_chains : schema -> Concept.t list

val decompose : schema -> Concept.t list
(** Wagon wheels, then generalization, aggregation and instance-of
    hierarchies. *)

val find : Concept.t list -> string -> Concept.t option
(** Look a concept schema up by its id (e.g. ["ww:Course_Offering"]). *)
