(** Text rendering of concept schemas and schema graphs — the executable
    counterpart of the paper's figures.  Renderings are deterministic and
    parse-stable so tests can assert on them. *)

open Odl.Types

val wagon_wheel : schema -> Concept.t -> string
(** Figure-3 style: the focal type with attribute / operation / relationship
    spokes, incoming spokes last. *)

val generalization : schema -> Concept.t -> string
(** Figure-4 style: an indented ISA tree. *)

val aggregation : schema -> Concept.t -> string
(** Figure-5 style: an indented parts explosion. *)

val instance_chain : schema -> Concept.t -> string
(** Figure-6 style: the instantiation sequence with arrows. *)

val concept : schema -> Concept.t -> string
(** Dispatch on the concept schema's kind. *)

val object_type_graph : schema -> string
(** Figure-9/10/11 style: every object type with its outgoing links. *)

val summary : schema -> string
(** One-line inventory: interface / attribute / relationship / operation
    counts. *)
