(** Recomposition: merging concept-schema projections back into one schema.

    The paper's decomposition invariant — "the union of all the initial
    concept schemas gives the original shrink wrap schema" — is realised by
    {!union} together with {!normalize}: the normalized union of all wagon
    wheel projections equals the normalized original schema. *)

open Odl.Types

let union_lists eq xs ys =
  xs @ List.filter (fun y -> not (List.exists (eq y) xs)) ys

let merge_interface (a : interface) (b : interface) =
  {
    i_name = a.i_name;
    i_supertypes = union_lists String.equal a.i_supertypes b.i_supertypes;
    i_extent = (match a.i_extent with Some _ -> a.i_extent | None -> b.i_extent);
    i_keys = union_lists ( = ) a.i_keys b.i_keys;
    i_attrs =
      union_lists (fun x y -> String.equal x.attr_name y.attr_name) a.i_attrs b.i_attrs;
    i_rels =
      union_lists (fun x y -> String.equal x.rel_name y.rel_name) a.i_rels b.i_rels;
    i_ops =
      union_lists (fun x y -> String.equal x.op_name y.op_name) a.i_ops b.i_ops;
  }

(** [union ~name schemas] merges interfaces by name; same-named attributes,
    relationships and operations are identified (the paper's name-equivalence
    assumption). *)
let union ~name schemas =
  let add acc i =
    match List.partition (fun j -> String.equal j.i_name i.i_name) acc with
    | [ existing ], rest -> rest @ [ merge_interface existing i ]
    | _, _ -> acc @ [ i ]
  in
  let interfaces =
    List.fold_left (fun acc s -> List.fold_left add acc s.s_interfaces) [] schemas
  in
  { s_name = name; s_interfaces = interfaces }

(** Canonical form for schema comparison: interfaces and their components are
    sorted by name, supertypes and keys sorted.  Two schemas describe the
    same design iff their normalized forms are equal. *)
let normalize schema =
  let norm_interface i =
    {
      i with
      i_supertypes = List.sort_uniq compare i.i_supertypes;
      i_keys = List.sort_uniq compare i.i_keys;
      i_attrs = List.sort (fun a b -> compare a.attr_name b.attr_name) i.i_attrs;
      i_rels = List.sort (fun a b -> compare a.rel_name b.rel_name) i.i_rels;
      i_ops = List.sort (fun a b -> compare a.op_name b.op_name) i.i_ops;
    }
  in
  {
    schema with
    s_interfaces =
      schema.s_interfaces |> List.map norm_interface
      |> List.sort (fun a b -> compare a.i_name b.i_name);
  }

(** [equal_content a b] — equality of design content, ignoring declaration
    order and the schema name. *)
let equal_content a b =
  let a = normalize a and b = normalize b in
  a.s_interfaces = b.s_interfaces

(** [reconstruct schema] rebuilds [schema] from its wagon wheel
    decomposition.  [equal_content (reconstruct s) s] holds for every
    well-formed [s] (tested by property). *)
let reconstruct schema =
  let wheels = Decompose.wagon_wheels schema in
  union ~name:schema.s_name (List.map (Concept.project schema) wheels)
