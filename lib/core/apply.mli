(** Application of modification operations to the workspace schema.

    An operation is accepted only if it is admissible in the concept schema
    type it is issued from (Table 1), its own constraints hold (existence,
    stale old-value checks, uniqueness, semantic stability with respect to
    the shrink wrap generalization hierarchy, acyclicity), and — after the
    primary effect and the propagation rules — the workspace has no
    error-level diagnostics.  Accepted operations therefore preserve schema
    validity (tested by property).

    The engine is functorized over {!Schema_view.S}.  {!Naive} (re-exported
    as the top-level [apply]/[preview]/[apply_log]) runs on plain schemas
    and is the reference; {!Indexed} runs on {!Schema_index.t} with
    incremental checking and propagation, and is differentially tested to
    accept/reject identically, produce equal workspaces and equal event
    lists, and render equal error messages. *)

open Odl.Types

type error =
  | Not_allowed of string  (** denied by the permission matrix *)
  | Unknown of string  (** a referenced construct does not exist *)
  | Conflict of string  (** a name is already taken *)
  | Violation of string  (** a semantic constraint fails *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

module Make (V : Schema_view.S) : sig
  val apply :
    original:V.t ->
    kind:Concept.kind ->
    V.t ->
    Modop.t ->
    (V.t * Change.event list, error) result
  (** [apply ~original ~kind workspace op] — [original] is the shrink wrap
      schema (the reference for semantic stability).  On success, the events
      are the operation's impact report: the direct change first, propagated
      consequences after. *)

  val preview :
    original:V.t ->
    kind:Concept.kind ->
    V.t ->
    Modop.t ->
    (Change.event list, error) result
  (** Dry run: the impact report without committing. *)

  val apply_log :
    original:V.t ->
    V.t ->
    (Concept.kind * Modop.t) list ->
    (V.t * Change.event list, error) result
  (** Replay a log, stopping at the first failure. *)

  (**/**)

  (* Exposed for ablation benchmarking only: the primary effect of an
     operation without permission checking, propagation, or re-validation.
     Production callers must use [apply]. *)
  val primary :
    original:V.t -> V.t -> Modop.t -> (V.t * Change.event list, error) result
end

module Naive : module type of Make (Schema_view.Naive)

module Indexed : module type of Make (Schema_index)
(** The incremental engine.  Assumes the workspace it is given is
    rule-closed (no error-level diagnostics), which {!Session} guarantees;
    on such workspaces it is observationally equal to {!Naive}. *)

(** {1 The reference engine over plain schemas} *)

val apply :
  original:schema ->
  kind:Concept.kind ->
  schema ->
  Modop.t ->
  (schema * Change.event list, error) result
(** [Naive.apply]. *)

val preview :
  original:schema ->
  kind:Concept.kind ->
  schema ->
  Modop.t ->
  (Change.event list, error) result

val apply_log :
  original:schema ->
  schema ->
  (Concept.kind * Modop.t) list ->
  (schema * Change.event list, error) result

(**/**)

val primary :
  original:Odl.Types.schema ->
  Odl.Types.schema ->
  Modop.t ->
  (Odl.Types.schema * Change.event list, error) result
