(** Application of modification operations to the workspace schema.

    An operation is accepted only if it is admissible in the concept schema
    type it is issued from (Table 1), its own constraints hold (existence,
    stale old-value checks, uniqueness, semantic stability with respect to
    the shrink wrap generalization hierarchy, acyclicity), and — after the
    primary effect and the propagation rules — the workspace has no
    error-level diagnostics.  Accepted operations therefore preserve schema
    validity (tested by property). *)

open Odl.Types

type error =
  | Not_allowed of string  (** denied by the permission matrix *)
  | Unknown of string  (** a referenced construct does not exist *)
  | Conflict of string  (** a name is already taken *)
  | Violation of string  (** a semantic constraint fails *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val apply :
  original:schema ->
  kind:Concept.kind ->
  schema ->
  Modop.t ->
  (schema * Change.event list, error) result
(** [apply ~original ~kind workspace op] — [original] is the shrink wrap
    schema (the reference for semantic stability).  On success, the events
    are the operation's impact report: the direct change first, propagated
    consequences after. *)

val preview :
  original:schema ->
  kind:Concept.kind ->
  schema ->
  Modop.t ->
  (Change.event list, error) result
(** Dry run: the impact report without committing. *)

val apply_log :
  original:schema ->
  schema ->
  (Concept.kind * Modop.t) list ->
  (schema * Change.event list, error) result
(** Replay a log, stopping at the first failure. *)

(**/**)

(* Exposed for ablation benchmarking only: the primary effect of an
   operation without permission checking, propagation, or re-validation.
   Production callers must use {!apply}. *)
val primary :
  original:Odl.Types.schema ->
  Odl.Types.schema ->
  Modop.t ->
  (Odl.Types.schema * Change.event list, error) result
