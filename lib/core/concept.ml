(** Concept schemas: single-viewpoint subsets of a shrink wrap schema.

    The paper defines four generic structure patterns (concept schema types):

    - {e wagon wheel} — one focal object type plus all attributes,
      operations, and relationship links of distance one;
    - {e generalization hierarchy} — a rooted ISA tree;
    - {e aggregation hierarchy} — a rooted part-of explosion;
    - {e instance-of hierarchy} — a chain of instance-of links.

    A concept schema here is a named selection over a schema: the set of
    member object types and the set of relationship edges it presents.  The
    projection of a concept schema ({!project}) is itself a schema — a
    subset of the application schema, as required by the paper. *)

open Odl.Types

type kind =
  | Wagon_wheel
  | Generalization
  | Aggregation
  | Instance_chain
[@@deriving show, eq, ord]

type t = {
  c_kind : kind;
  c_id : string;  (** unique within a decomposition, e.g. ["ww:Course"] *)
  c_focus : type_name;  (** focal point, hierarchy root, or chain head *)
  c_members : type_name list;  (** object types covered, focus first *)
  c_edges : (type_name * string) list;
      (** relationship edges included, as [(owner, traversal path)] *)
}
[@@deriving show, eq]

let kind_name = function
  | Wagon_wheel -> "wagon wheel"
  | Generalization -> "generalization hierarchy"
  | Aggregation -> "aggregation hierarchy"
  | Instance_chain -> "instance-of hierarchy"

let id_prefix = function
  | Wagon_wheel -> "ww"
  | Generalization -> "gh"
  | Aggregation -> "ah"
  | Instance_chain -> "ih"

let make kind focus members edges =
  {
    c_kind = kind;
    c_id = id_prefix kind ^ ":" ^ focus;
    c_focus = focus;
    c_members = members;
    c_edges = edges;
  }

let mem_type c name = List.mem name c.c_members
let mem_edge c owner path = List.mem (owner, path) c.c_edges

(** [project schema c] is the sub-schema presented by concept schema [c].

    The focal point of a wagon wheel keeps its complete definition; all other
    members keep only the constructs [c] selects (the edges, plus — for
    hierarchy concept schemas — their ISA links within the members).  The
    union of the projections of all wagon wheels reconstructs the original
    schema (see {!Recompose.union}). *)
let project schema c =
  let keep_edge i (r : relationship) =
    mem_edge c i.i_name r.rel_name
    ||
    (* keep the inverse end of any selected edge so projections are
       structurally well formed *)
    mem_edge c r.rel_target r.rel_inverse
  in
  let restrict i =
    let full =
      match c.c_kind with
      | Wagon_wheel -> String.equal i.i_name c.c_focus
      | Generalization | Aggregation | Instance_chain -> false
    in
    if full then
      (* keep only ISA links to members so the projection is closed *)
      { i with i_supertypes = List.filter (mem_type c) i.i_supertypes }
    else
      {
        i with
        i_supertypes =
          (match c.c_kind with
          | Generalization -> List.filter (mem_type c) i.i_supertypes
          | Wagon_wheel | Aggregation | Instance_chain -> []);
        i_extent = None;
        i_keys = [];
        i_attrs = [];
        i_ops = [];
        i_rels = List.filter (keep_edge i) i.i_rels;
      }
  in
  {
    s_name = c.c_id;
    s_interfaces =
      schema.s_interfaces
      |> List.filter (fun i -> mem_type c i.i_name)
      |> List.map restrict;
  }
