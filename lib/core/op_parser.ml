(** Parser for the schema modification language (Appendix A of the paper).

    Each operation has the shape [keyword ( argument , ... )].  Argument
    forms:
    - identifiers (type, attribute, path, extent names);
    - ODL domain types ([string], [set<Course>], ...);
    - sizes: an integer or [none];
    - cardinalities: a collection keyword ([set], [list], [bag], [array])
      or [one];
    - name lists: [(a, b, c)] — also accepted for a single name as [a];
    - operation argument lists: [(string term, int year)];
    - an optional trailing order-by name list on the add-relationship
      operations. *)

open Odl.Types
open Odl.Lexer
module T = Odl.Token_stream
module P = Odl.Parser

exception Parse_error = T.Parse_error

let parse_domain = P.parse_domain

let parse_size t =
  match T.peek t with
  | Ident "none" ->
      T.advance t;
      None
  | Int _ -> Some (T.int t)
  | tok ->
      T.error t
        (Printf.sprintf "expected size (integer or 'none'), found %s"
           (token_to_string tok))

let parse_card t =
  let id = T.ident t in
  if String.equal id "one" then None
  else
    match P.collection_of_ident id with
    | Some k -> Some k
    | None -> T.error t (Printf.sprintf "expected cardinality, found %s" id)

let parse_collection t =
  let id = T.ident t in
  match P.collection_of_ident id with
  | Some k -> k
  | None -> T.error t (Printf.sprintf "expected collection kind, found %s" id)

let parse_name_list t =
  match T.peek t with
  | Lparen -> T.paren_list t T.ident
  | _ -> [ T.ident t ]

let parse_target_of_path t =
  let id = T.ident t in
  match P.collection_of_ident id with
  | Some k ->
      T.expect t Langle;
      let target = T.ident t in
      T.expect t Rangle;
      (target, Some k)
  | None -> (id, None)

let parse_op_arg t =
  let ty = parse_domain t in
  let name = T.ident t in
  { arg_name = name; arg_type = ty }

let parse_arg_list t = T.paren_list t parse_op_arg

let comma t = T.expect t Comma

let parse_add_rel t mk =
  T.expect t Lparen;
  let owner = T.ident t in
  comma t;
  let target, card = parse_target_of_path t in
  comma t;
  let name = T.ident t in
  comma t;
  let inverse = T.ident t in
  let order_by = if T.eat t Comma then parse_name_list t else [] in
  T.expect t Rparen;
  mk
    {
      Modop.ar_owner = owner;
      ar_target = target;
      ar_card = card;
      ar_name = name;
      ar_inverse = inverse;
      ar_order_by = order_by;
    }

(* Combinator helpers: parse a fixed parenthesized argument tuple. *)
let args1 t p1 mk =
  T.expect t Lparen;
  let a = p1 t in
  T.expect t Rparen;
  mk a

let args2 t p1 p2 mk =
  T.expect t Lparen;
  let a = p1 t in
  comma t;
  let b = p2 t in
  T.expect t Rparen;
  mk a b

let args3 t p1 p2 p3 mk =
  T.expect t Lparen;
  let a = p1 t in
  comma t;
  let b = p2 t in
  comma t;
  let c = p3 t in
  T.expect t Rparen;
  mk a b c

let args4 t p1 p2 p3 p4 mk =
  T.expect t Lparen;
  let a = p1 t in
  comma t;
  let b = p2 t in
  comma t;
  let c = p3 t in
  comma t;
  let d = p4 t in
  T.expect t Rparen;
  mk a b c d

let args5 t p1 p2 p3 p4 p5 mk =
  T.expect t Lparen;
  let a = p1 t in
  comma t;
  let b = p2 t in
  comma t;
  let c = p3 t in
  comma t;
  let d = p4 t in
  comma t;
  let e = p5 t in
  T.expect t Rparen;
  mk a b c d e

let ident = T.ident

let parse_one t : Modop.t =
  let kw = T.ident t in
  match kw with
  | "add_type_definition" -> args1 t ident (fun n -> Modop.Add_type_definition n)
  | "delete_type_definition" ->
      args1 t ident (fun n -> Modop.Delete_type_definition n)
  | "add_supertype" -> args2 t ident ident (fun n s -> Modop.Add_supertype (n, s))
  | "delete_supertype" ->
      args2 t ident ident (fun n s -> Modop.Delete_supertype (n, s))
  | "modify_supertype" ->
      args3 t ident parse_name_list parse_name_list (fun n o w ->
          Modop.Modify_supertype (n, o, w))
  | "add_extent_name" ->
      args2 t ident ident (fun n e -> Modop.Add_extent_name (n, e))
  | "delete_extent_name" ->
      args2 t ident ident (fun n e -> Modop.Delete_extent_name (n, e))
  | "modify_extent_name" ->
      args3 t ident ident ident (fun n o w -> Modop.Modify_extent_name (n, o, w))
  | "add_key_list" ->
      args2 t ident parse_name_list (fun n k -> Modop.Add_key_list (n, k))
  | "delete_key_list" ->
      args2 t ident parse_name_list (fun n k -> Modop.Delete_key_list (n, k))
  | "modify_key_list" ->
      args3 t ident parse_name_list parse_name_list (fun n o w ->
          Modop.Modify_key_list (n, o, w))
  | "add_attribute" ->
      args4 t ident parse_domain parse_size ident (fun n d s a ->
          Modop.Add_attribute (n, d, s, a))
  | "delete_attribute" ->
      args2 t ident ident (fun n a -> Modop.Delete_attribute (n, a))
  | "modify_attribute" ->
      args3 t ident ident ident (fun n a n' -> Modop.Modify_attribute (n, a, n'))
  | "modify_attribute_type" ->
      args4 t ident ident parse_domain parse_domain (fun n a o w ->
          Modop.Modify_attribute_type (n, a, o, w))
  | "modify_attribute_size" ->
      args4 t ident ident parse_size parse_size (fun n a o w ->
          Modop.Modify_attribute_size (n, a, o, w))
  | "add_relationship" -> parse_add_rel t (fun ar -> Modop.Add_relationship ar)
  | "delete_relationship" ->
      args2 t ident ident (fun n p -> Modop.Delete_relationship (n, p))
  | "modify_relationship_target_type" ->
      args4 t ident ident ident ident (fun n p o w ->
          Modop.Modify_relationship_target_type (n, p, o, w))
  | "modify_relationship_cardinality" ->
      args4 t ident ident parse_card parse_card (fun n p o w ->
          Modop.Modify_relationship_cardinality (n, p, o, w))
  | "modify_relationship_order_by" ->
      args4 t ident ident parse_name_list parse_name_list (fun n p o w ->
          Modop.Modify_relationship_order_by (n, p, o, w))
  | "add_operation" ->
      args5 t ident parse_domain ident parse_arg_list parse_name_list
        (fun n ret o args raises -> Modop.Add_operation (n, ret, o, args, raises))
  | "delete_operation" ->
      args2 t ident ident (fun n o -> Modop.Delete_operation (n, o))
  | "modify_operation" ->
      args3 t ident ident ident (fun n o n' -> Modop.Modify_operation (n, o, n'))
  | "modify_operation_return_type" ->
      args4 t ident ident parse_domain parse_domain (fun n o ot nt ->
          Modop.Modify_operation_return_type (n, o, ot, nt))
  | "modify_operation_arg_list" ->
      args4 t ident ident parse_arg_list parse_arg_list (fun n o oa na ->
          Modop.Modify_operation_arg_list (n, o, oa, na))
  | "modify_operation_exceptions_raised" ->
      args4 t ident ident parse_name_list parse_name_list (fun n o oe ne ->
          Modop.Modify_operation_exceptions_raised (n, o, oe, ne))
  | "add_part_of_relationship" ->
      parse_add_rel t (fun ar -> Modop.Add_part_of_relationship ar)
  | "delete_part_of_relationship" ->
      args2 t ident ident (fun n p -> Modop.Delete_part_of_relationship (n, p))
  | "modify_part_of_target_type" ->
      args4 t ident ident ident ident (fun n p o w ->
          Modop.Modify_part_of_target_type (n, p, o, w))
  | "modify_part_of_cardinality" ->
      args4 t ident ident parse_collection parse_collection (fun n p o w ->
          Modop.Modify_part_of_cardinality (n, p, o, w))
  | "modify_part_of_order_by" ->
      args4 t ident ident parse_name_list parse_name_list (fun n p o w ->
          Modop.Modify_part_of_order_by (n, p, o, w))
  | "add_instance_of_relationship" ->
      parse_add_rel t (fun ar -> Modop.Add_instance_of_relationship ar)
  | "delete_instance_of_relationship" ->
      args2 t ident ident (fun n p ->
          Modop.Delete_instance_of_relationship (n, p))
  | "modify_instance_of_target_type" ->
      args4 t ident ident ident ident (fun n p o w ->
          Modop.Modify_instance_of_target_type (n, p, o, w))
  | "modify_instance_of_cardinality" ->
      args4 t ident ident parse_collection parse_collection (fun n p o w ->
          Modop.Modify_instance_of_cardinality (n, p, o, w))
  | "modify_instance_of_order_by" ->
      args4 t ident ident parse_name_list parse_name_list (fun n p o w ->
          Modop.Modify_instance_of_order_by (n, p, o, w))
  | other -> T.error t (Printf.sprintf "unknown operation '%s'" other)

(** Parse exactly one operation from [src].
    @raise Parse_error on syntax errors. *)
let parse src =
  let t = T.of_string src in
  let op = parse_one t in
  ignore (T.eat t Semi);
  T.expect t Eof;
  op

(** Parse a sequence of operations (an operation log), separated by optional
    semicolons. *)
let parse_many src =
  let t = T.of_string src in
  let rec go acc =
    match T.peek t with
    | Eof -> List.rev acc
    | _ ->
        let op = parse_one t in
        ignore (T.eat t Semi);
        go (op :: acc)
  in
  go []
