(** Completeness analysis — the machinery behind the paper's Tables 2 and 3.

    The paper enumerates every construct expressible in ODL (the "candidates
    for modification") and shows that each is covered by an add and a delete
    operation (Table 2) and, where the name-equivalence assumption does not
    forbid it, by modify operations (Table 3).  This module encodes the
    candidate enumeration once, so that both the regenerated tables and the
    completeness tests are computed rather than transcribed. *)

type row = {
  group : string;  (** e.g. "Relationship" *)
  field : string;  (** e.g. "Target type" *)
  add_op : string;
  delete_op : string;
  modify_op : string option;  (** [None]: disallowed to support name equivalence *)
}

let r group field add_op delete_op modify_op =
  { group; field; add_op; delete_op; modify_op }

(** Every ODL candidate for modification, in the paper's Table 2/3 order. *)
let candidates =
  [
    r "Interface Definition" "Type name" "add_type_definition"
      "delete_type_definition" None;
    r "Type Properties" "Supertype (ISA)" "add_supertype" "delete_supertype"
      (Some "modify_supertype");
    r "Type Properties" "Extent name" "add_extent_name" "delete_extent_name"
      (Some "modify_extent_name");
    r "Type Properties" "Key list" "add_key_list" "delete_key_list"
      (Some "modify_key_list");
    r "Attribute" "Residence (move in ISA hierarchy)" "add_attribute"
      "delete_attribute" (Some "modify_attribute");
    r "Attribute" "Type" "add_attribute" "delete_attribute"
      (Some "modify_attribute_type");
    r "Attribute" "Size" "add_attribute" "delete_attribute"
      (Some "modify_attribute_size");
    r "Attribute" "Name" "add_attribute" "delete_attribute" None;
    r "Relationship" "Target type" "add_relationship" "delete_relationship"
      (Some "modify_relationship_target_type");
    r "Relationship" "Traversal path name" "add_relationship"
      "delete_relationship" None;
    r "Relationship" "Inverse path name" "add_relationship" "delete_relationship"
      None;
    r "Relationship" "One way cardinality" "add_relationship"
      "delete_relationship" (Some "modify_relationship_cardinality");
    r "Relationship" "Order by list" "add_relationship" "delete_relationship"
      (Some "modify_relationship_order_by");
    r "Operation" "Name" "add_operation" "delete_operation" None;
    r "Operation" "Residence (move in ISA hierarchy)" "add_operation"
      "delete_operation" (Some "modify_operation");
    r "Operation" "Return type" "add_operation" "delete_operation"
      (Some "modify_operation_return_type");
    r "Operation" "Argument list" "add_operation" "delete_operation"
      (Some "modify_operation_arg_list");
    r "Operation" "Exceptions raised" "add_operation" "delete_operation"
      (Some "modify_operation_exceptions_raised");
    r "Part-of Relationship" "Target type" "add_part_of_relationship"
      "delete_part_of_relationship" (Some "modify_part_of_target_type");
    r "Part-of Relationship" "Traversal path name" "add_part_of_relationship"
      "delete_part_of_relationship" None;
    r "Part-of Relationship" "Inverse path name" "add_part_of_relationship"
      "delete_part_of_relationship" None;
    r "Part-of Relationship" "One way cardinality" "add_part_of_relationship"
      "delete_part_of_relationship" (Some "modify_part_of_cardinality");
    r "Part-of Relationship" "Order by list" "add_part_of_relationship"
      "delete_part_of_relationship" (Some "modify_part_of_order_by");
    r "Instance-of Relationship" "Target type" "add_instance_of_relationship"
      "delete_instance_of_relationship" (Some "modify_instance_of_target_type");
    r "Instance-of Relationship" "Traversal path name"
      "add_instance_of_relationship" "delete_instance_of_relationship" None;
    r "Instance-of Relationship" "Inverse path name"
      "add_instance_of_relationship" "delete_instance_of_relationship" None;
    r "Instance-of Relationship" "One way cardinality"
      "add_instance_of_relationship" "delete_instance_of_relationship"
      (Some "modify_instance_of_cardinality");
    r "Instance-of Relationship" "Order by list" "add_instance_of_relationship"
      "delete_instance_of_relationship" (Some "modify_instance_of_order_by");
  ]

(** Table 2 (additions): [(group, field, covering add operation)]. *)
let addition_table =
  List.map (fun row -> (row.group, row.field, row.add_op)) candidates

(** Table 2, deletion half. *)
let deletion_table =
  List.map (fun row -> (row.group, row.field, row.delete_op)) candidates

(** Table 3 (modifications); name rows carry the name-equivalence note. *)
let modification_table =
  List.map
    (fun row ->
      ( row.group,
        row.field,
        match row.modify_op with
        | Some op -> op
        | None -> "-- (name equivalence)" ))
    candidates

(** Every operation keyword named in the tables must exist in the language
    and vice versa (checked in the tests): the candidate enumeration and the
    operation language cover each other. *)
let named_ops =
  List.concat_map
    (fun row ->
      row.add_op :: row.delete_op
      :: (match row.modify_op with Some m -> [ m ] | None -> []))
    candidates
  |> List.sort_uniq compare
