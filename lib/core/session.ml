(** A shrink wrap schema design session.

    The session owns the artifacts of the paper's architecture (Figure 1):
    the original shrink wrap schema, its concept schemas, the workspace for
    the schema under design, the operation log with recorded impacts, and —
    derived on demand — the custom schema, the consistency report, and the
    shrink-wrap → custom mapping.  Sessions are immutable values: applying
    an operation returns a new session, and undo is structural. *)

open Odl.Types
module Validate = Odl.Validate

type step = {
  st_kind : Concept.kind;  (** concept schema type the op was issued from *)
  st_op : Modop.t;
  st_events : Change.event list;  (** direct + propagated impact *)
  st_before : schema;  (** workspace before this step, for undo *)
}

type t = {
  original : schema;  (** the shrink wrap schema, never modified *)
  concepts : Concept.t list;  (** decomposition of [original] *)
  workspace : schema;  (** the schema under design *)
  log : step list;  (** applied steps, oldest first *)
  aliases : Aliases.t;  (** local names (presentation-level renaming) *)
  future : (Concept.kind * Modop.t) list;  (** undone steps, for redo *)
}

(** Start a session on [shrink_wrap].  The shrink wrap schema must be valid;
    otherwise its error diagnostics are returned so the designer can fix the
    repository copy first. *)
let create shrink_wrap =
  match Validate.errors shrink_wrap with
  | [] ->
      Ok
        {
          original = shrink_wrap;
          concepts = Decompose.decompose shrink_wrap;
          workspace = shrink_wrap;
          log = [];
          aliases = Aliases.empty;
          future = [];
        }
  | errors -> Error errors

let original t = t.original
let workspace t = t.workspace
let concepts t = t.concepts
let log t = t.log

let find_concept t id = Decompose.find t.concepts id

(** Apply [op] in a concept schema of type [kind].  A fresh application
    clears the redo history. *)
let apply t ~kind op =
  match Apply.apply ~original:t.original ~kind t.workspace op with
  | Error _ as e -> e
  | Ok (workspace, events) ->
      Ok
        ( {
            t with
            workspace;
            future = [];
            log =
              t.log
              @ [
                  {
                    st_kind = kind;
                    st_op = op;
                    st_events = events;
                    st_before = t.workspace;
                  };
                ];
          },
          events )

(** Apply [op] from the concept schema identified by [concept_id]; the
    operation must also mention only interfaces that concept schema covers
    (you modify what you are looking at). *)
let apply_in t ~concept_id op =
  match find_concept t concept_id with
  | None -> Error (Apply.Unknown (Printf.sprintf "concept schema %s" concept_id))
  | Some c ->
      let subj = Modop.subject op in
      if Concept.mem_type c subj || not (Odl.Schema.mem_interface t.workspace subj)
      then apply t ~kind:c.Concept.c_kind op
      else
        Error
          (Apply.Not_allowed
             (Printf.sprintf "%s is not part of concept schema %s" subj concept_id))

(** Impact preview: what would [op] change, without committing. *)
let preview t ~kind op = Apply.preview ~original:t.original ~kind t.workspace op

(** Undo the most recent step; [None] when the log is empty.  The undone
    operation becomes redoable until the next fresh application. *)
let undo t =
  match List.rev t.log with
  | [] -> None
  | last :: rev_rest ->
      Some
        {
          t with
          workspace = last.st_before;
          log = List.rev rev_rest;
          future = (last.st_kind, last.st_op) :: t.future;
        }

(** Redo the most recently undone step; [None] when there is nothing to
    redo.  Cannot fail otherwise: the operation applied before and the
    workspace is back in the state it applied to. *)
let redo t =
  match t.future with
  | [] -> None
  | (kind, op) :: rest -> (
      match Apply.apply ~original:t.original ~kind t.workspace op with
      | Error _ -> None  (* unreachable by construction; be defensive *)
      | Ok (workspace, events) ->
          Some
            ( {
                t with
                workspace;
                future = rest;
                log =
                  t.log
                  @ [
                      {
                        st_kind = kind;
                        st_op = op;
                        st_events = events;
                        st_before = t.workspace;
                      };
                    ];
              },
              events ))

let redoable t = List.length t.future

(** The customized user schema: the current workspace, renamed. *)
let custom_schema ?name t =
  let name = Option.value name ~default:(t.original.s_name ^ "_custom") in
  { t.workspace with s_name = name }

(* --- local names (paper section 5 extension) ----------------------------- *)

(** Bind a local (presentation) name to a construct of the workspace. *)
let add_alias t target local =
  Result.map
    (fun aliases -> { t with aliases })
    (Aliases.add t.workspace t.aliases target local)

(** Remove a construct's local name. *)
let remove_alias t target = { t with aliases = Aliases.remove t.aliases target }

(** The live bindings: stale ones (whose construct was deleted since) are
    pruned on read. *)
let aliases t = fst (Aliases.prune t.workspace t.aliases)

let aliases_report t = Aliases.report (aliases t)

(** Install persisted bindings wholesale (used when loading a repository);
    stale bindings are dropped lazily by {!aliases}. *)
let restore_aliases t aliases = { t with aliases }

(** Consistency report over the workspace (errors cannot occur — accepted
    operations preserve validity — so this surfaces the warnings). *)
let consistency_report t = Validate.check t.workspace

let mapping t = Mapping.compute ~original:t.original ~custom:t.workspace

(** Refresh the concept schemas against the workspace (after modifications,
    the decomposition of the workspace shows the customized concepts). *)
let current_concepts t = Decompose.decompose t.workspace

(* --- deliverables -------------------------------------------------------- *)

let pp_step ppf (idx, s) =
  Fmt.pf ppf "@[<v 2>%d. [%s] %a" (idx + 1)
    (Concept.kind_name s.st_kind)
    Op_printer.pp s.st_op;
  List.iter (fun e -> Fmt.pf ppf "@,%s" (Change.event_to_string e)) s.st_events;
  Fmt.pf ppf "@]"

(** The impact report: every applied operation with its direct and
    propagated changes. *)
let impact_report t =
  Fmt.str "@[<v>impact report for %s@,%a@]" t.original.s_name
    Fmt.(list ~sep:(any "@,") pp_step)
    (List.mapi (fun i s -> (i, s)) t.log)

let consistency_report_text t =
  let ds = consistency_report t in
  if ds = [] then "consistency report: no findings"
  else
    Fmt.str "@[<v>consistency report (%d findings)@,%a@]" (List.length ds)
      Fmt.(list ~sep:(any "@,") Validate.pp_diagnostic_line)
      ds

let mapping_report t = Fmt.str "@[<v>mapping report@,%a@]" Mapping.pp (mapping t)

(** All designer deliverables in one document: schema summaries, the
    operation log with impacts, the consistency report, and the mapping. *)
let deliverables t =
  String.concat "\n"
    [
      "== shrink wrap schema ==";
      Render.summary t.original;
      "";
      "== custom schema ==";
      Render.summary (custom_schema t);
      "";
      "== " ^ impact_report t;
      "";
      "== " ^ consistency_report_text t;
      "";
      "== " ^ mapping_report t;
      "";
      "== local names ==";
      aliases_report t;
    ]

(** Serialize the operation log in the modification language (replayable via
    {!replay}). *)
let log_text t =
  t.log
  |> List.map (fun s ->
         Printf.sprintf "// in %s\n%s;"
           (Concept.kind_name s.st_kind)
           (Op_printer.to_string s.st_op))
  |> String.concat "\n"

(** Replay a [(kind, op)] log on a fresh session over [shrink_wrap]. *)
let replay shrink_wrap steps =
  match create shrink_wrap with
  | Error ds ->
      Error
        (Apply.Violation
           (Fmt.str "shrink wrap schema invalid: %a"
              Fmt.(list ~sep:(any "; ") Validate.pp_diagnostic_line)
              ds))
  | Ok session ->
      List.fold_left
        (fun acc (kind, op) ->
          Result.bind acc (fun s -> Result.map fst (apply s ~kind op)))
        (Ok session) steps
