(** A shrink wrap schema design session.

    The session owns the artifacts of the paper's architecture (Figure 1):
    the original shrink wrap schema, its concept schemas, the workspace for
    the schema under design, the operation log with recorded impacts, and —
    derived on demand — the custom schema, the consistency report, and the
    shrink-wrap → custom mapping.  Sessions are immutable values: applying
    an operation returns a new session, and undo is structural.

    Operations run on the {e indexed} engine ({!Apply.Indexed} over
    {!Schema_index}): per-op constraint checking and propagation touch only
    the affected neighbourhood, and the consistency report is served from
    the index's dirty-set cache.  The plain [workspace] schema is kept in
    lock-step for callers that want the value.  In {e paranoid} mode every
    operation is additionally run through the naive reference engine and
    the two outcomes compared — a mismatch raises {!Divergence}. *)

open Odl.Types
module Validate = Odl.Validate

type step = {
  st_kind : Concept.kind;  (** concept schema type the op was issued from *)
  st_op : Modop.t;
  st_events : Change.event list;  (** direct + propagated impact *)
  st_before : schema;  (** workspace before this step, for undo *)
}

type t = {
  original : schema;  (** the shrink wrap schema, never modified *)
  original_index : Schema_index.t;  (** index of [original] (stability checks) *)
  concepts : Concept.t list;  (** decomposition of [original] *)
  workspace : schema;  (** the schema under design; equals [schema index] *)
  index : Schema_index.t;  (** the workspace's index, updated per op *)
  past_indexes : Schema_index.t list;
      (** index versions before each step, newest first (parallels
          [rev_log]); undo restores from here in O(1) *)
  rev_log : step list;
      (** applied steps, {e newest} first: apply conses and undo pops, so
          the spine below any point is shared physically across every
          session derived from it — {!steps_rev} exposes this so the
          journal layer can diff two lineage-related sessions in
          O(changed steps) instead of walking both full logs *)
  nlog : int;  (** [List.length rev_log], maintained for O(1) counting *)
  aliases : Aliases.t;  (** local names (presentation-level renaming) *)
  future : (Concept.kind * Modop.t) list;  (** undone steps, for redo *)
  paranoid : bool;  (** cross-check every op against the naive engine *)
  version : int;
      (** monotonic change stamp: bumped by every state transition (apply,
          undo, redo, alias changes) and never decremented — two sessions
          with the same version along one lineage are the same value *)
}

exception Divergence of string

let divergence fmt = Printf.ksprintf (fun m -> raise (Divergence m)) fmt

(* --- observation hooks ---------------------------------------------------- *)

type hooks = {
  h_now : unit -> float;
      (** clock for [h_check] timing — supplied by the installer so this
          library stays clock-free (core does not link unix) *)
  h_op_applied : kind:Concept.kind -> dirty:int -> unit;
      (** a committed operation, with the size of the neighbourhood the
          incremental checker re-examined for it *)
  h_check : seconds:float -> findings:int -> unit;
      (** a consistency report was served: wall time and finding count *)
}

(* Process-wide rather than per-session: sessions are immutable values
   copied on every apply, so per-value hooks would have to be re-threaded
   through replay/undo/redo and serialized alongside.  The observability
   layer is a singleton anyway.  [None] (the default) costs one load. *)
let hooks : hooks option ref = ref None
let set_hooks h = hooks := h

let observe_apply ~kind ~index ~subject =
  match !hooks with
  | None -> ()
  | Some h ->
      h.h_op_applied ~kind
        ~dirty:(List.length (Schema_index.affected_by index [ subject ]))

(* Differential cross-check of one operation: the indexed outcome must match
   the naive engine's exactly — acceptance, workspace, events, and the full
   diagnostics list (the error messages embed the first diagnostic, so
   diagnostic equality also pins error-message equality). *)
let check_divergence t ~kind op indexed_outcome =
  let naive = Apply.apply ~original:t.original ~kind t.workspace op in
  let ctx = Fmt.str "%a" Op_printer.pp op in
  match (indexed_outcome, naive) with
  | Ok (idx, evs), Ok (ws, evs') ->
      if not (equal_schema (Schema_index.schema idx) ws) then
        divergence "%s: indexed and naive workspaces differ" ctx;
      if not (List.equal Change.equal_event evs evs') then
        divergence "%s: indexed and naive impact events differ" ctx;
      if
        not
          (List.equal Validate.equal_diagnostic
             (Schema_index.diagnostics idx)
             (Validate.check ws))
      then divergence "%s: indexed and naive diagnostics differ" ctx
  | Error e, Error e' ->
      if Apply.error_to_string e <> Apply.error_to_string e' then
        divergence "%s: engines reject with different errors (%s vs %s)" ctx
          (Apply.error_to_string e) (Apply.error_to_string e')
  | Ok _, Error e ->
      divergence "%s: indexed engine accepted what the naive engine rejects (%s)"
        ctx (Apply.error_to_string e)
  | Error e, Ok _ ->
      divergence "%s: indexed engine rejected (%s) what the naive engine accepts"
        ctx (Apply.error_to_string e)

(** Start a session on [shrink_wrap].  The shrink wrap schema must be valid;
    otherwise its error diagnostics are returned so the designer can fix the
    repository copy first.  [paranoid] turns on per-operation differential
    checking against the naive engine (see {!Divergence}). *)
let create ?(paranoid = false) shrink_wrap =
  let index = Schema_index.build shrink_wrap in
  if paranoid then begin
    let di = Schema_index.diagnostics index in
    let dn = Validate.check shrink_wrap in
    if not (List.equal Validate.equal_diagnostic di dn) then
      divergence "create: indexed and naive diagnostics differ"
  end;
  match Schema_index.errors index with
  | [] ->
      Ok
        {
          original = shrink_wrap;
          original_index = index;
          concepts = Decompose.Indexed.decompose index;
          workspace = shrink_wrap;
          index;
          past_indexes = [];
          rev_log = [];
          nlog = 0;
          aliases = Aliases.empty;
          future = [];
          paranoid;
          version = 0;
        }
  | errors -> Error errors

let original t = t.original
let workspace t = t.workspace
let index t = t.index
let concepts t = t.concepts
let log t = List.rev t.rev_log
let steps_rev t = t.rev_log
let step_count t = t.nlog
let version t = t.version

let find_concept t id = Decompose.find t.concepts id

let indexed_apply t ~kind op =
  let outcome = Apply.Indexed.apply ~original:t.original_index ~kind t.index op in
  if t.paranoid then check_divergence t ~kind op outcome;
  outcome

let commit t ~kind op (index, events) ~future =
  observe_apply ~kind ~index ~subject:(Modop.subject op);
  ( {
      t with
      workspace = Schema_index.schema index;
      index;
      past_indexes = t.index :: t.past_indexes;
      future;
      version = t.version + 1;
      rev_log =
        { st_kind = kind; st_op = op; st_events = events; st_before = t.workspace }
        :: t.rev_log;
      nlog = t.nlog + 1;
    },
    events )

(** Apply [op] in a concept schema of type [kind].  A fresh application
    clears the redo history. *)
let apply t ~kind op =
  match indexed_apply t ~kind op with
  | Error _ as e -> e
  | Ok (index, events) -> Ok (commit t ~kind op (index, events) ~future:[])

(** Apply [op] from the concept schema identified by [concept_id]; the
    operation must also mention only interfaces that concept schema covers
    (you modify what you are looking at). *)
let apply_in t ~concept_id op =
  match find_concept t concept_id with
  | None -> Error (Apply.Unknown (Printf.sprintf "concept schema %s" concept_id))
  | Some c ->
      let subj = Modop.subject op in
      if Concept.mem_type c subj || not (Schema_index.mem_interface t.index subj)
      then apply t ~kind:c.Concept.c_kind op
      else
        Error
          (Apply.Not_allowed
             (Printf.sprintf "%s is not part of concept schema %s" subj concept_id))

(** Impact preview: what would [op] change, without committing. *)
let preview t ~kind op =
  Apply.Indexed.preview ~original:t.original_index ~kind t.index op

(** Undo the most recent step; [None] when the log is empty.  The undone
    operation becomes redoable until the next fresh application.  The index
    version recorded at apply time is restored in O(1). *)
let undo t =
  match t.rev_log with
  | [] -> None
  | last :: rest ->
      let index, past_indexes =
        match t.past_indexes with
        | idx :: rest -> (idx, rest)
        | [] -> (Schema_index.build last.st_before, [])  (* unreachable *)
      in
      Some
        {
          t with
          workspace = last.st_before;
          index;
          past_indexes;
          rev_log = rest;
          nlog = t.nlog - 1;
          future = (last.st_kind, last.st_op) :: t.future;
          version = t.version + 1;
        }

(** Redo the most recently undone step; [None] when there is nothing to
    redo.  Cannot fail otherwise: the operation applied before and the
    workspace is back in the state it applied to. *)
let redo t =
  match t.future with
  | [] -> None
  | (kind, op) :: rest -> (
      match indexed_apply t ~kind op with
      | Error _ -> None  (* unreachable by construction; be defensive *)
      | Ok (index, events) ->
          Some (commit t ~kind op (index, events) ~future:rest))

let redoable t = List.length t.future

(** The customized user schema: the current workspace, renamed. *)
let custom_schema ?name t =
  let name = Option.value name ~default:(t.original.s_name ^ "_custom") in
  { t.workspace with s_name = name }

(* --- local names (paper section 5 extension) ----------------------------- *)

(** Bind a local (presentation) name to a construct of the workspace. *)
let add_alias t target local =
  Result.map
    (fun aliases -> { t with aliases; version = t.version + 1 })
    (Aliases.add t.workspace t.aliases target local)

(** Remove a construct's local name. *)
let remove_alias t target =
  { t with aliases = Aliases.remove t.aliases target; version = t.version + 1 }

(** The live bindings: stale ones (whose construct was deleted since) are
    pruned on read. *)
let aliases t = fst (Aliases.prune t.workspace t.aliases)

let aliases_report t = Aliases.report (aliases t)

(** Install persisted bindings wholesale (used when loading a repository);
    stale bindings are dropped lazily by {!aliases}. *)
let restore_aliases t aliases = { t with aliases; version = t.version + 1 }

(** Consistency report over the workspace (errors cannot occur — accepted
    operations preserve validity — so this surfaces the warnings).  Served
    from the index's diagnostics cache: only checks invalidated since the
    last report are recomputed. *)
let consistency_report t =
  match !hooks with
  | None -> Schema_index.diagnostics t.index
  | Some h ->
      let t0 = h.h_now () in
      let ds = Schema_index.diagnostics t.index in
      h.h_check ~seconds:(h.h_now () -. t0) ~findings:(List.length ds);
      ds

let mapping t = Mapping.compute ~original:t.original ~custom:t.workspace

(** Refresh the concept schemas against the workspace (after modifications,
    the decomposition of the workspace shows the customized concepts). *)
let current_concepts t = Decompose.Indexed.decompose t.index

(* --- deliverables -------------------------------------------------------- *)

let pp_step ppf (idx, s) =
  Fmt.pf ppf "@[<v 2>%d. [%s] %a" (idx + 1)
    (Concept.kind_name s.st_kind)
    Op_printer.pp s.st_op;
  List.iter (fun e -> Fmt.pf ppf "@,%s" (Change.event_to_string e)) s.st_events;
  Fmt.pf ppf "@]"

(** The impact report: every applied operation with its direct and
    propagated changes. *)
let impact_report t =
  Fmt.str "@[<v>impact report for %s@,%a@]" t.original.s_name
    Fmt.(list ~sep:(any "@,") pp_step)
    (List.mapi (fun i s -> (i, s)) (log t))

let consistency_report_text t =
  let ds = consistency_report t in
  if ds = [] then "consistency report: no findings"
  else
    Fmt.str "@[<v>consistency report (%d findings)@,%a@]" (List.length ds)
      Fmt.(list ~sep:(any "@,") Validate.pp_diagnostic_line)
      ds

let mapping_report t = Fmt.str "@[<v>mapping report@,%a@]" Mapping.pp (mapping t)

(** All designer deliverables in one document: schema summaries, the
    operation log with impacts, the consistency report, and the mapping. *)
let deliverables t =
  String.concat "\n"
    [
      "== shrink wrap schema ==";
      Render.summary t.original;
      "";
      "== custom schema ==";
      Render.summary (custom_schema t);
      "";
      "== " ^ impact_report t;
      "";
      "== " ^ consistency_report_text t;
      "";
      "== " ^ mapping_report t;
      "";
      "== local names ==";
      aliases_report t;
    ]

(* Serialization of the log and replay live in {!Oplog}, which builds on
   this module: the session records steps, the op-log is their durable,
   exchangeable (and rebase-capable) projection. *)
