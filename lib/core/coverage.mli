(** Completeness analysis — the machinery behind the paper's Tables 2 and 3:
    every ODL candidate construct is covered by an add and a delete
    operation, and by modify operations except where name equivalence
    forbids (names are never modified). *)

type row = {
  group : string;  (** e.g. ["Relationship"] *)
  field : string;  (** e.g. ["Target type"] *)
  add_op : string;
  delete_op : string;
  modify_op : string option;  (** [None]: disallowed to support name equivalence *)
}

val candidates : row list
(** Every ODL candidate for modification, in the paper's table order. *)

val addition_table : (string * string * string) list
val deletion_table : (string * string * string) list
val modification_table : (string * string * string) list
(** Name rows carry a ["-- (name equivalence)"] marker. *)

val named_ops : string list
(** All operation keywords the tables name (equals the full language;
    tested). *)
