(** Schema quality assessment.

    The whole premise of shrink wrap schema-based design is a {e
    well-crafted} starting schema, and the paper notes that "schema quality
    of the shrink wrap schema can be improved by revising the representation
    over time as it is employed and reviewed by diverse design teams".  This
    module supports that review: heuristics that flag craft problems a
    reviewer would raise, beyond the hard validity rules of
    [Odl.Validate].

    Findings are advisory (a perfectly valid schema can score poorly), each
    carrying the heuristic that fired and the construct concerned. *)

open Odl.Types
module Schema = Odl.Schema

type finding = {
  q_heuristic : string;  (** short identifier, e.g. ["isolated-type"] *)
  q_subject : string;
  q_advice : string;
}

let finding q_heuristic q_subject q_advice = { q_heuristic; q_subject; q_advice }

let to_string f = Printf.sprintf "[%s] %s: %s" f.q_heuristic f.q_subject f.q_advice

(* --- heuristics ----------------------------------------------------------- *)

(* h1: hierarchy roots (roots that actually have subtypes) without an extent
   cannot be enumerated *)
let missing_extents schema =
  Schema.isa_roots schema
  |> List.filter (fun n -> Schema.direct_subtypes schema n <> [])
  |> List.filter_map (fun n ->
         let i = Schema.get_interface schema n in
         if i.i_extent = None then
           Some
             (finding "missing-extent" n
                "a hierarchy root without an extent cannot be enumerated; \
                 declare one if instances are persistent")
         else None)

(* h2: no key anywhere on the ISA line means no identity.  Weak entities —
   types anchored by a to-one relationship end (a syllabus describes exactly
   one course offering) — borrow identity from their anchor and are not
   flagged. *)
let missing_keys schema =
  schema.s_interfaces
  |> List.filter_map (fun i ->
         let line = i.i_name :: Schema.ancestors schema i.i_name in
         let keyed =
           List.exists
             (fun n -> (Schema.get_interface schema n).i_keys <> [])
             (List.filter (Schema.mem_interface schema) line)
         in
         let anchored =
           List.exists (fun r -> r.rel_card = None) i.i_rels
         in
         if keyed || anchored || i.i_attrs = [] then None
         else
           Some
             (finding "missing-key" i.i_name
                "no key on this interface or its ancestors, and no to-one \
                 anchor; instances have no declared identity"))

(* h3: isolated object types participate in nothing *)
let isolated_types schema =
  schema.s_interfaces
  |> List.filter_map (fun i ->
         let incoming = Schema.relationships_targeting schema i.i_name in
         if
           i.i_rels = [] && incoming = [] && i.i_supertypes = []
           && Schema.direct_subtypes schema i.i_name = []
         then
           Some
             (finding "isolated-type" i.i_name
                "participates in no relationship or hierarchy; consider \
                 connecting or removing it")
         else None)

(* h4: god objects dominate the schema and resist decomposition *)
let god_objects schema =
  (* a wagon wheel focal point legitimately carries many spokes; flag only
     extremes *)
  let threshold = 12 in
  schema.s_interfaces
  |> List.filter_map (fun i ->
         let degree =
           List.length i.i_rels
           + List.length (Schema.relationships_targeting schema i.i_name)
         in
         if degree > threshold then
           Some
             (finding "god-object" i.i_name
                (Printf.sprintf
                   "%d relationship ends touch this type; consider splitting \
                    the concept"
                   degree))
         else None)

(* h5: an abstract-looking middle type with exactly one subtype adds a level
   without a distinction *)
let single_subtype schema =
  schema.s_interfaces
  |> List.filter_map (fun i ->
         match Schema.direct_subtypes schema i.i_name with
         | [ only ] when i.i_attrs = [] && i.i_ops = [] && i.i_rels = [] ->
             Some
               (finding "needless-layer" i.i_name
                  (Printf.sprintf
                     "contributes nothing and has a single subtype (%s); \
                      consider collapsing the level"
                     only))
         | _ -> None)

(* h6: attribute-less leaf types are usually enumerations in disguise *)
let empty_leaves schema =
  schema.s_interfaces
  |> List.filter_map (fun i ->
         if
           i.i_attrs = [] && i.i_ops = [] && i.i_rels = []
           && Schema.direct_subtypes schema i.i_name = []
           && i.i_supertypes <> []
         then
           Some
             (finding "empty-leaf" i.i_name
                "a leaf subtype with no members of its own often stands for \
                 an enumeration value; consider an attribute instead")
         else None)

(* h7: mixed naming conventions read as two schemas stitched together *)
let naming_consistency schema =
  let is_snake s = String.lowercase_ascii s = s in
  let member_names =
    schema.s_interfaces
    |> List.concat_map (fun i ->
           List.map (fun a -> (i.i_name, a.attr_name)) i.i_attrs
           @ List.map (fun r -> (i.i_name, r.rel_name)) i.i_rels)
  in
  let camel =
    List.filter (fun (_, n) -> not (is_snake n)) member_names
  in
  match camel with
  | [] -> []
  | _ when List.length camel * 4 < List.length member_names ->
      (* a minority breaks the dominant convention: name the offenders *)
      camel
      |> List.map (fun (owner, n) ->
             finding "naming-style" (owner ^ "." ^ n)
               "breaks the schema's dominant lower_case member naming")
  | _ -> []

(* h8: very deep ISA chains are hard to comprehend *)
let deep_hierarchies schema =
  schema.s_interfaces
  |> List.filter_map (fun i ->
         let depth = List.length (Schema.ancestors schema i.i_name) in
         if depth > 4 then
           Some
             (finding "deep-hierarchy" i.i_name
                (Printf.sprintf "%d levels of inheritance above this type" depth))
         else None)

(* h9: a relationship pair where both order_by lists are set suggests the
   ordering belongs to a first-class type *)
let unordered_collections _schema = []

let heuristics =
  [
    ("missing-extent", "hierarchy roots should declare extents");
    ("missing-key", "interfaces should have identity somewhere on the ISA line");
    ("isolated-type", "every object type should participate in something");
    ("god-object", "no type should dominate the relationship graph");
    ("needless-layer", "single-subtype empty middles add nothing");
    ("empty-leaf", "member-less leaf subtypes are enumerations in disguise");
    ("naming-style", "one naming convention per schema");
    ("deep-hierarchy", "inheritance chains should stay comprehensible");
  ]

(** All advisory findings for [schema]. *)
let assess schema =
  missing_extents schema @ missing_keys schema @ isolated_types schema
  @ god_objects schema @ single_subtype schema @ empty_leaves schema
  @ naming_consistency schema @ deep_hierarchies schema
  @ unordered_collections schema

(** A craft score in [0, 100]: 100 means no findings; each finding costs
    points relative to schema size. *)
let score schema =
  let findings = List.length (assess schema) in
  let size = max 1 (List.length schema.s_interfaces) in
  max 0 (100 - (findings * 100 / (size * 2)))

let report schema =
  let findings = assess schema in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "schema quality: %d/100 (%d finding(s))\n" (score schema)
       (List.length findings));
  List.iter
    (fun f -> Buffer.add_string buf ("  " ^ to_string f ^ "\n"))
    findings;
  Buffer.contents buf
