(** The paper's Table 1: which modification operations are admissible in
    which concept schema type.

    Summary of the policy (paper §3.4):
    - {e wagon wheels} carry the bulk of the modifications: object types,
      extents, keys, attributes, relationships and operations can be added,
      deleted, and have their non-name properties modified; part-of and
      instance-of links can be added and deleted (they appear in a wagon
      wheel) but not modified; supertypes cannot be touched at all;
    - {e generalization hierarchies} own everything ISA: add/delete/re-wire
      supertype links, add/delete object types, and the three "move"
      operations that relocate attributes, relationship ends, and operations
      up or down the hierarchy;
    - {e aggregation hierarchies} own part-of links (add, delete, re-target,
      re-cardinality, re-order) plus add/delete of object types;
    - {e instance-of hierarchies} likewise own instance-of links. *)

let wagon_wheel_ops =
  [
    "add_type_definition"; "delete_type_definition";
    "add_extent_name"; "delete_extent_name"; "modify_extent_name";
    "add_key_list"; "delete_key_list"; "modify_key_list";
    "add_attribute"; "delete_attribute";
    "modify_attribute_type"; "modify_attribute_size";
    "add_relationship"; "delete_relationship";
    "modify_relationship_cardinality"; "modify_relationship_order_by";
    "add_operation"; "delete_operation";
    "modify_operation_return_type"; "modify_operation_arg_list";
    "modify_operation_exceptions_raised";
    "add_part_of_relationship"; "delete_part_of_relationship";
    "add_instance_of_relationship"; "delete_instance_of_relationship";
  ]

let generalization_ops =
  [
    "add_type_definition"; "delete_type_definition";
    "add_supertype"; "delete_supertype"; "modify_supertype";
    "modify_attribute"; "modify_relationship_target_type"; "modify_operation";
  ]

let aggregation_ops =
  [
    "add_type_definition"; "delete_type_definition";
    "add_part_of_relationship"; "delete_part_of_relationship";
    "modify_part_of_target_type"; "modify_part_of_cardinality";
    "modify_part_of_order_by";
  ]

let instance_chain_ops =
  [
    "add_type_definition"; "delete_type_definition";
    "add_instance_of_relationship"; "delete_instance_of_relationship";
    "modify_instance_of_target_type"; "modify_instance_of_cardinality";
    "modify_instance_of_order_by";
  ]

let ops_for = function
  | Concept.Wagon_wheel -> wagon_wheel_ops
  | Concept.Generalization -> generalization_ops
  | Concept.Aggregation -> aggregation_ops
  | Concept.Instance_chain -> instance_chain_ops

(** Every operation keyword of the modification language, in Appendix-A
    order. *)
let all_op_names =
  [
    "add_type_definition"; "delete_type_definition";
    "add_supertype"; "delete_supertype"; "modify_supertype";
    "add_extent_name"; "delete_extent_name"; "modify_extent_name";
    "add_key_list"; "delete_key_list"; "modify_key_list";
    "add_attribute"; "delete_attribute"; "modify_attribute";
    "modify_attribute_type"; "modify_attribute_size";
    "add_relationship"; "delete_relationship";
    "modify_relationship_target_type"; "modify_relationship_cardinality";
    "modify_relationship_order_by";
    "add_operation"; "delete_operation"; "modify_operation";
    "modify_operation_return_type"; "modify_operation_arg_list";
    "modify_operation_exceptions_raised";
    "add_part_of_relationship"; "delete_part_of_relationship";
    "modify_part_of_target_type"; "modify_part_of_cardinality";
    "modify_part_of_order_by";
    "add_instance_of_relationship"; "delete_instance_of_relationship";
    "modify_instance_of_target_type"; "modify_instance_of_cardinality";
    "modify_instance_of_order_by";
  ]

let allowed_name kind op_name = List.mem op_name (ops_for kind)

(** Which concept schema type does admit [op_name]?  Used to word denial
    feedback ("address supertypes in the generalization hierarchy"). *)
let homes op_name =
  List.filter
    (fun k -> allowed_name k op_name)
    [
      Concept.Wagon_wheel; Concept.Generalization; Concept.Aggregation;
      Concept.Instance_chain;
    ]

(** [allowed kind op] is [Ok ()] when [op] may be issued while viewing a
    concept schema of [kind], and [Error reason] otherwise. *)
let allowed kind op =
  let n = Modop.name op in
  if allowed_name kind n then Ok ()
  else
    let hint =
      match homes n with
      | [] -> "this operation is not admissible in any concept schema type"
      | ks ->
          Printf.sprintf "address it in the %s concept schema"
            (String.concat " or " (List.map Concept.kind_name ks))
    in
    Error
      (Printf.sprintf "%s is not allowed in a %s concept schema; %s" n
         (Concept.kind_name kind) hint)
