(** Indexed schema backend: map-backed name→interface lookup, reverse ISA /
    reverse-mention adjacency, and incremental consistency checking with a
    dirty-set diagnostics cache.

    Implements {!Schema_view.S}, so the functorized engine ({!Apply.Make},
    {!Propagate.Make}, {!Decompose.Make}) runs unchanged over it; the naive
    backend {!Schema_view.Naive} is the reference oracle it is
    differentially tested against.

    The index is persistent: every update returns a new value and old values
    remain usable (undo in {!Session} keeps superseded versions).  The
    mutable fields are memoization caches only; each version owns its own,
    so divergent versions cannot corrupt one another.

    {!diagnostics} equals [Odl.Validate.check (schema t)] for {e any}
    schema, including invalid ones.  The other queries assume interface
    names are unique (duplicate names are an error-level diagnostic, and
    {!Session.create} refuses such schemas). *)

type t

val build : Odl.Types.schema -> t
(** Index a schema from scratch; O(size of schema).  The diagnostics cache
    starts cold — the first {!diagnostics} call pays full-check cost. *)

include Schema_view.S with type t := t

val is_valid : t -> bool
(** No error-level diagnostics (cache-served where possible). *)

val changed_names : t -> t -> Odl.Types.type_name list
(** [changed_names old new_] — the interface names whose records differ
    between two index versions of one lineage, sorted.  Detected by pointer
    equality on the persistent [by_name] entries, so the cost is
    proportional to what the updates actually rebuilt; sound for any two
    versions (falls back to reporting every differing entry).  This is the
    dirty seed the materialized query views ({!Query.View}) refresh from. *)
