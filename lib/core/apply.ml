(** Application of modification operations to the workspace schema.

    An operation is accepted only if
    - it is admissible in the concept schema type it is issued from
      (Table 1, {!Permission.allowed});
    - its own constraints hold: referenced constructs exist, {e old} values
      match the workspace (stale-view protection), names stay unique, moves
      respect semantic stability with respect to the {e shrink wrap}
      generalization hierarchy, and no ISA / part-of / instance-of cycle is
      created;
    - after the primary effect and the propagation rules
      ({!Propagate.repair}), the workspace has no error-level diagnostics.

    Accepted operations therefore preserve schema validity (tested by
    property).  The returned events — the direct change plus all propagated
    ones — are the impact report for the operation. *)

open Odl.Types
module Schema = Odl.Schema
module Validate = Odl.Validate

type error =
  | Not_allowed of string  (** denied by the permission matrix *)
  | Unknown of string  (** a referenced construct does not exist *)
  | Conflict of string  (** a name is already taken *)
  | Violation of string  (** a semantic constraint fails *)

let error_to_string = function
  | Not_allowed m -> "not allowed: " ^ m
  | Unknown m -> "unknown: " ^ m
  | Conflict m -> "conflict: " ^ m
  | Violation m -> "violation: " ^ m

let pp_error ppf e = Fmt.string ppf (error_to_string e)

let ( let* ) = Result.bind

let fail_unknown fmt = Printf.ksprintf (fun m -> Error (Unknown m)) fmt
let fail_conflict fmt = Printf.ksprintf (fun m -> Error (Conflict m)) fmt
let fail_violation fmt = Printf.ksprintf (fun m -> Error (Violation m)) fmt
module Make (V : Schema_view.S) = struct
  module P = Propagate.Make (V)

  let require_interface schema n =
    match V.find_interface schema n with
    | Some i -> Ok i
    | None -> fail_unknown "interface %s" n

  let require_fresh_type schema n =
    if V.mem_interface schema n then fail_conflict "interface %s already exists" n
    else if not (Odl.Names.is_valid n) then fail_violation "invalid identifier %s" n
    else if Odl.Names.is_keyword n then
      fail_violation "%s is an ODL keyword and cannot name an interface" n
    else Ok ()

  (* New member names (attributes, traversal paths, operations, arguments,
     exceptions, extents) must be plain identifiers too: an accepted session
     is printed to ODL artifacts that must re-parse. *)
  let require_fresh_name what n =
    if not (Odl.Names.is_valid n) then fail_violation "invalid identifier %s" n
    else if Odl.Names.is_keyword n then
      fail_violation "%s is an ODL keyword and cannot name %s" n what
    else Ok ()

  let require_fresh_names what ns =
    List.fold_left
      (fun acc n -> Result.bind acc (fun () -> require_fresh_name what n))
      (Ok ()) ns

  (* Attributes and relationships share one property namespace per interface. *)
  let require_property_free i name =
    if Schema.has_attr i name || Schema.has_rel i name then
      fail_conflict "%s already has a property named %s" i.i_name name
    else Ok ()

  let require_attr i name =
    match Schema.find_attr i name with
    | Some a -> Ok a
    | None -> fail_unknown "attribute %s.%s" i.i_name name

  let require_rel i name =
    match Schema.find_rel i name with
    | Some r -> Ok r
    | None -> fail_unknown "relationship %s.%s" i.i_name name

  let require_op i name =
    match Schema.find_op i name with
    | Some o -> Ok o
    | None -> fail_unknown "operation %s.%s" i.i_name name

  let require_kind (r : relationship) kind what =
    if r.rel_kind = kind then Ok ()
    else
      fail_violation "%s.%s is not %s" "relationship" r.rel_name what

  (* Semantic stability: moves stay within the generalization hierarchy
     established by the shrink wrap schema; designer-added interfaces are
     judged against the workspace hierarchy instead. *)
  let require_stable ~original schema a b what =
    let line =
      if V.mem_interface original a && V.mem_interface original b then
        V.same_isa_line original a b
      else V.same_isa_line schema a b
    in
    if line then Ok ()
    else
      fail_violation
        "%s may only move within the generalization hierarchy (%s and %s are \
         not on one ancestor/descendant line)"
        what a b

  let require_no_isa_cycle schema sub super =
    if String.equal sub super || List.mem sub (V.ancestors schema super) then
      fail_violation "supertype link %s : %s would create an ISA cycle" sub super
    else Ok ()

  let visible_attr schema t name =
    List.exists
      (fun a -> String.equal a.attr_name name)
      (V.visible_attrs schema t)

  let require_visible_attrs schema t names what =
    match List.find_opt (fun n -> not (visible_attr schema t n)) names with
    | None -> Ok ()
    | Some n -> fail_violation "%s: attribute %s is not visible on %s" what n t

  let require_stale_eq eq old current what pp =
    if eq old current then Ok ()
    else
      fail_violation "%s: expected %s but the workspace has %s" what (pp old)
        (pp current)

  let pp_card = function
    | None -> "one"
    | Some k -> collection_kind_name k

  let pp_size = function None -> "none" | Some n -> string_of_int n

  let pp_domain d = Fmt.str "%a" Odl.Printer.pp_domain d

  let pp_names ns = "(" ^ String.concat ", " ns ^ ")"

  (* --- primary effects ---------------------------------------------------- *)

  open Change

  let complement_card = function Some _ -> None | None -> Some Set

  let add_relationship_ends schema kind (ar : Modop.add_rel) =
    let* owner = require_interface schema ar.ar_owner in
    let* target = require_interface schema ar.ar_target in
    let* () = require_fresh_name "a traversal path" ar.ar_name in
    let* () = require_fresh_name "a traversal path" ar.ar_inverse in
    let* () = require_property_free owner ar.ar_name in
    let* () =
      if String.equal ar.ar_owner ar.ar_target && String.equal ar.ar_name ar.ar_inverse
      then fail_conflict "a self-relationship needs distinct traversal paths"
      else Ok ()
    in
    let* () =
      (* for a self-relationship the owner end is not yet installed, so the
         plain free check suffices in both cases *)
      require_property_free target ar.ar_inverse
    in
    let* () =
      require_visible_attrs schema ar.ar_target ar.ar_order_by "order_by"
    in
    let forward =
      {
        rel_kind = kind;
        rel_name = ar.ar_name;
        rel_target = ar.ar_target;
        rel_inverse = ar.ar_inverse;
        rel_card = ar.ar_card;
        rel_order_by = ar.ar_order_by;
      }
    in
    let backward =
      {
        rel_kind = kind;
        rel_name = ar.ar_inverse;
        rel_target = ar.ar_owner;
        rel_inverse = ar.ar_name;
        rel_card = complement_card ar.ar_card;
        rel_order_by = [];
      }
    in
    let schema =
      V.update_interface schema ar.ar_owner (fun i ->
          { i with i_rels = i.i_rels @ [ forward ] })
    in
    let schema =
      V.update_interface schema ar.ar_target (fun i ->
          { i with i_rels = i.i_rels @ [ backward ] })
    in
    Ok
      ( schema,
        [
          direct (Added (C_relationship (ar.ar_owner, ar.ar_name)));
          propagated (Added (C_relationship (ar.ar_target, ar.ar_inverse)));
        ] )

  let delete_relationship_ends schema kind what owner path =
    let* i = require_interface schema owner in
    let* r = require_rel i path in
    let* () = require_kind r kind what in
    let schema =
      V.update_interface schema owner (fun i ->
          {
            i with
            i_rels =
              List.filter (fun r' -> not (String.equal r'.rel_name path)) i.i_rels;
          })
    in
    let events = [ direct (Removed (C_relationship (owner, path))) ] in
    (* remove the inverse end, if it is still there *)
    match V.find_interface schema r.rel_target with
    | Some target when Schema.has_rel target r.rel_inverse ->
        let schema =
          V.update_interface schema r.rel_target (fun i ->
              {
                i with
                i_rels =
                  List.filter
                    (fun r' -> not (String.equal r'.rel_name r.rel_inverse))
                    i.i_rels;
              })
        in
        Ok
          ( schema,
            events
            @ [ propagated (Removed (C_relationship (r.rel_target, r.rel_inverse))) ]
          )
    | _ -> Ok (schema, events)

  (* Move the far end of a relationship up or down the generalization
     hierarchy: retarget the owner end and physically relocate the inverse end
     from the old target to the new one. *)
  let modify_target_type ~original schema kind what owner path old_t new_t =
    let* i = require_interface schema owner in
    let* r = require_rel i path in
    let* () = require_kind r kind what in
    let* () =
      require_stale_eq String.equal old_t r.rel_target
        (Printf.sprintf "%s of %s.%s" what owner path)
        Fun.id
    in
    let* _new_target = require_interface schema new_t in
    if String.equal old_t new_t then
      fail_violation "new target type equals the old one"
    else
      let* () = require_stable ~original schema old_t new_t "a relationship end" in
      let* old_target = require_interface schema old_t in
      let* inv = require_rel old_target r.rel_inverse in
      let* () =
        let new_target = V.get_interface schema new_t in
        require_property_free new_target r.rel_inverse
      in
      let schema =
        V.update_interface schema owner (fun i ->
            {
              i with
              i_rels =
                List.map
                  (fun r' ->
                    if String.equal r'.rel_name path then
                      { r' with rel_target = new_t }
                    else r')
                  i.i_rels;
            })
      in
      let schema =
        V.update_interface schema old_t (fun i ->
            {
              i with
              i_rels =
                List.filter
                  (fun r' -> not (String.equal r'.rel_name r.rel_inverse))
                  i.i_rels;
            })
      in
      let schema =
        V.update_interface schema new_t (fun i ->
            { i with i_rels = i.i_rels @ [ inv ] })
      in
      Ok
        ( schema,
          [
            direct
              (Altered
                 ( C_relationship (owner, path),
                   Printf.sprintf "target type %s -> %s" old_t new_t ));
            propagated (Moved (C_relationship (old_t, r.rel_inverse), new_t));
          ] )

  let modify_order_by schema kind what owner path old_l new_l =
    let* i = require_interface schema owner in
    let* r = require_rel i path in
    let* () = require_kind r kind what in
    let* () =
      require_stale_eq ( = ) old_l r.rel_order_by
        (Printf.sprintf "order_by of %s.%s" owner path)
        pp_names
    in
    let* () = require_visible_attrs schema r.rel_target new_l "order_by" in
    let schema =
      V.update_interface schema owner (fun i ->
          {
            i with
            i_rels =
              List.map
                (fun r' ->
                  if String.equal r'.rel_name path then
                    { r' with rel_order_by = new_l }
                  else r')
                i.i_rels;
          })
    in
    Ok
      ( schema,
        [
          direct
            (Altered
               ( C_relationship (owner, path),
                 Printf.sprintf "order_by %s -> %s" (pp_names old_l) (pp_names new_l)
               ));
        ] )

  (* Collection-kind change on the collection end of a part-of / instance-of
     relationship (the 1:N shape itself is fixed by definition). *)
  let modify_collection_card schema kind what owner path old_k new_k =
    let* i = require_interface schema owner in
    let* r = require_rel i path in
    let* () = require_kind r kind what in
    match r.rel_card with
    | None ->
        fail_violation
          "%s.%s is the single-valued end; the cardinality of a %s \
           relationship may only change on its collection end"
          owner path what
    | Some current ->
        let* () =
          require_stale_eq ( = ) old_k current
            (Printf.sprintf "cardinality of %s.%s" owner path)
            collection_kind_name
        in
        let schema =
          V.update_interface schema owner (fun i ->
              {
                i with
                i_rels =
                  List.map
                    (fun r' ->
                      if String.equal r'.rel_name path then
                        { r' with rel_card = Some new_k }
                      else r')
                    i.i_rels;
              })
        in
        Ok
          ( schema,
            [
              direct
                (Altered
                   ( C_relationship (owner, path),
                     Printf.sprintf "collection %s -> %s"
                       (collection_kind_name old_k) (collection_kind_name new_k) ));
            ] )

  let delete_type_definition schema n =
    let* i = require_interface schema n in
    (* reconnect direct subtypes to the deleted interface's supertypes so the
       rest of the hierarchy keeps its inheritance paths *)
    let subtypes = V.direct_subtypes schema n in
    let reconnect schema sub =
      V.update_interface schema sub (fun s ->
          let without = List.filter (fun x -> not (String.equal x n)) s.i_supertypes in
          let inherited =
            List.filter (fun x -> not (List.mem x without)) i.i_supertypes
          in
          { s with i_supertypes = without @ inherited })
    in
    let schema = List.fold_left reconnect schema subtypes in
    let events =
      direct (Removed (C_interface n))
      :: List.concat_map
           (fun sub ->
             propagated (Removed (C_supertype (sub, n)))
             :: List.map
                  (fun sup -> propagated (Added (C_supertype (sub, sup))))
                  i.i_supertypes)
           subtypes
    in
    Ok (V.remove_interface schema n, events)

  (* Generic move of an instance property between interfaces on one ISA line. *)
  let move_attribute ~original schema owner attr_name new_owner =
    let* i = require_interface schema owner in
    let* a = require_attr i attr_name in
    let* ni = require_interface schema new_owner in
    if String.equal owner new_owner then
      fail_violation "attribute %s already resides in %s" attr_name owner
    else
      let* () = require_stable ~original schema owner new_owner "an attribute" in
      let* () = require_property_free ni attr_name in
      let schema =
        V.update_interface schema owner (fun i ->
            {
              i with
              i_attrs =
                List.filter
                  (fun a' -> not (String.equal a'.attr_name attr_name))
                  i.i_attrs;
            })
      in
      let schema =
        V.update_interface schema new_owner (fun i ->
            { i with i_attrs = i.i_attrs @ [ a ] })
      in
      Ok (schema, [ direct (Moved (C_attribute (owner, attr_name), new_owner)) ])

  let move_operation ~original schema owner op_name new_owner =
    let* i = require_interface schema owner in
    let* o = require_op i op_name in
    let* ni = require_interface schema new_owner in
    if String.equal owner new_owner then
      fail_violation "operation %s already resides in %s" op_name owner
    else
      let* () = require_stable ~original schema owner new_owner "an operation" in
      let* () =
        if Schema.has_op ni op_name then
          fail_conflict "%s already has an operation named %s" new_owner op_name
        else Ok ()
      in
      let schema =
        V.update_interface schema owner (fun i ->
            {
              i with
              i_ops =
                List.filter (fun o' -> not (String.equal o'.op_name op_name)) i.i_ops;
            })
      in
      let schema =
        V.update_interface schema new_owner (fun i ->
            { i with i_ops = i.i_ops @ [ o ] })
      in
      Ok (schema, [ direct (Moved (C_operation (owner, op_name), new_owner)) ])

  let update_attr schema owner attr_name f =
    V.update_interface schema owner (fun i ->
        {
          i with
          i_attrs =
            List.map
              (fun a -> if String.equal a.attr_name attr_name then f a else a)
              i.i_attrs;
        })

  let update_op schema owner op_name f =
    V.update_interface schema owner (fun i ->
        {
          i with
          i_ops =
            List.map
              (fun o -> if String.equal o.op_name op_name then f o else o)
              i.i_ops;
        })

  (* --- the dispatcher ------------------------------------------------------ *)

  let primary ~original schema (op : Modop.t) =
    match op with
    | Add_type_definition n ->
        let* () = require_fresh_type schema n in
        Ok
          ( V.add_interface schema (empty_interface n),
            [ direct (Added (C_interface n)) ] )
    | Delete_type_definition n -> delete_type_definition schema n
    | Add_supertype (n, s) ->
        let* i = require_interface schema n in
        let* _ = require_interface schema s in
        if List.mem s i.i_supertypes then
          fail_conflict "%s already has supertype %s" n s
        else
          let* () = require_no_isa_cycle schema n s in
          Ok
            ( V.update_interface schema n (fun i ->
                  { i with i_supertypes = i.i_supertypes @ [ s ] }),
              [ direct (Added (C_supertype (n, s))) ] )
    | Delete_supertype (n, s) ->
        let* i = require_interface schema n in
        if not (List.mem s i.i_supertypes) then
          fail_unknown "supertype link %s : %s" n s
        else
          Ok
            ( V.update_interface schema n (fun i ->
                  {
                    i with
                    i_supertypes =
                      List.filter (fun x -> not (String.equal x s)) i.i_supertypes;
                  }),
              [ direct (Removed (C_supertype (n, s))) ] )
    | Modify_supertype (n, olds, news) ->
        let* i = require_interface schema n in
        let* () =
          require_stale_eq ( = )
            (List.sort compare olds)
            (List.sort compare i.i_supertypes)
            (Printf.sprintf "supertypes of %s" n)
            pp_names
        in
        let* () =
          List.fold_left
            (fun acc s ->
              let* () = acc in
              let* _ = require_interface schema s in
              require_no_isa_cycle schema n s)
            (Ok ()) news
        in
        Ok
          ( V.update_interface schema n (fun i ->
                { i with i_supertypes = news }),
            [
              direct
                (Altered
                   ( C_interface n,
                     Printf.sprintf "supertypes %s -> %s" (pp_names olds)
                       (pp_names news) ));
            ] )
    | Add_extent_name (n, e) ->
        let* i = require_interface schema n in
        let* () = require_fresh_name "an extent" e in
        let* () =
          match i.i_extent with
          | Some e' -> fail_conflict "%s already has extent %s" n e'
          | None -> Ok ()
        in
        let* () =
          if
            List.exists
              (fun j -> j.i_extent = Some e)
              (V.schema schema).s_interfaces
          then fail_conflict "extent name %s is already in use" e
          else Ok ()
        in
        Ok
          ( V.update_interface schema n (fun i -> { i with i_extent = Some e }),
            [ direct (Added (C_extent n)) ] )
    | Delete_extent_name (n, e) ->
        let* i = require_interface schema n in
        let* () =
          require_stale_eq ( = ) (Some e) i.i_extent
            (Printf.sprintf "extent of %s" n)
            (function Some x -> x | None -> "none")
        in
        Ok
          ( V.update_interface schema n (fun i -> { i with i_extent = None }),
            [ direct (Removed (C_extent n)) ] )
    | Modify_extent_name (n, old_e, new_e) ->
        let* i = require_interface schema n in
        let* () = require_fresh_name "an extent" new_e in
        let* () =
          require_stale_eq ( = ) (Some old_e) i.i_extent
            (Printf.sprintf "extent of %s" n)
            (function Some x -> x | None -> "none")
        in
        let* () =
          if
            List.exists
              (fun j -> j.i_extent = Some new_e && not (String.equal j.i_name n))
              (V.schema schema).s_interfaces
          then fail_conflict "extent name %s is already in use" new_e
          else Ok ()
        in
        Ok
          ( V.update_interface schema n (fun i ->
                { i with i_extent = Some new_e }),
            [
              direct
                (Altered (C_extent n, Printf.sprintf "%s -> %s" old_e new_e));
            ] )
    | Add_key_list (n, k) ->
        let* i = require_interface schema n in
        let* () =
          if k = [] then fail_violation "a key needs at least one attribute"
          else Ok ()
        in
        let* () = require_visible_attrs schema n k "key" in
        if List.mem k i.i_keys then fail_conflict "%s already declares this key" n
        else
          Ok
            ( V.update_interface schema n (fun i ->
                  { i with i_keys = i.i_keys @ [ k ] }),
              [ direct (Added (C_key (n, k))) ] )
    | Delete_key_list (n, k) ->
        let* i = require_interface schema n in
        if not (List.mem k i.i_keys) then
          fail_unknown "key %s on %s" (pp_names k) n
        else
          Ok
            ( V.update_interface schema n (fun i ->
                  { i with i_keys = List.filter (fun k' -> k' <> k) i.i_keys }),
              [ direct (Removed (C_key (n, k))) ] )
    | Modify_key_list (n, old_k, new_k) ->
        let* i = require_interface schema n in
        if not (List.mem old_k i.i_keys) then
          fail_unknown "key %s on %s" (pp_names old_k) n
        else
          let* () =
            if new_k = [] then fail_violation "a key needs at least one attribute"
            else Ok ()
          in
          let* () = require_visible_attrs schema n new_k "key" in
          Ok
            ( V.update_interface schema n (fun i ->
                  {
                    i with
                    i_keys =
                      List.map (fun k' -> if k' = old_k then new_k else k') i.i_keys;
                  }),
              [
                direct
                  (Altered
                     ( C_key (n, old_k),
                       Printf.sprintf "-> %s" (pp_names new_k) ));
              ] )
    | Add_attribute (n, d, size, a) ->
        let* i = require_interface schema n in
        let* () = require_fresh_name "an attribute" a in
        let* () = require_property_free i a in
        let* () =
          match base_name d with
          | Some t when not (V.mem_interface schema t) ->
              fail_unknown "domain type %s" t
          | _ -> Ok ()
        in
        Ok
          ( V.update_interface schema n (fun i ->
                {
                  i with
                  i_attrs =
                    i.i_attrs @ [ { attr_name = a; attr_type = d; attr_size = size } ];
                }),
            [ direct (Added (C_attribute (n, a))) ] )
    | Delete_attribute (n, a) ->
        let* i = require_interface schema n in
        let* _ = require_attr i a in
        Ok
          ( V.update_interface schema n (fun i ->
                {
                  i with
                  i_attrs =
                    List.filter (fun a' -> not (String.equal a'.attr_name a)) i.i_attrs;
                }),
            [ direct (Removed (C_attribute (n, a))) ] )
    | Modify_attribute (n, a, n') -> move_attribute ~original schema n a n'
    | Modify_attribute_type (n, a, old_t, new_t) ->
        let* i = require_interface schema n in
        let* attr = require_attr i a in
        let* () =
          require_stale_eq equal_domain_type old_t attr.attr_type
            (Printf.sprintf "type of %s.%s" n a)
            pp_domain
        in
        let* () =
          match base_name new_t with
          | Some t when not (V.mem_interface schema t) ->
              fail_unknown "domain type %s" t
          | _ -> Ok ()
        in
        Ok
          ( update_attr schema n a (fun attr -> { attr with attr_type = new_t }),
            [
              direct
                (Altered
                   ( C_attribute (n, a),
                     Printf.sprintf "type %s -> %s" (pp_domain old_t)
                       (pp_domain new_t) ));
            ] )
    | Modify_attribute_size (n, a, old_s, new_s) ->
        let* i = require_interface schema n in
        let* attr = require_attr i a in
        let* () =
          require_stale_eq ( = ) old_s attr.attr_size
            (Printf.sprintf "size of %s.%s" n a)
            pp_size
        in
        Ok
          ( update_attr schema n a (fun attr -> { attr with attr_size = new_s }),
            [
              direct
                (Altered
                   ( C_attribute (n, a),
                     Printf.sprintf "size %s -> %s" (pp_size old_s) (pp_size new_s)
                   ));
            ] )
    | Add_relationship ar -> add_relationship_ends schema Association ar
    | Delete_relationship (n, p) ->
        delete_relationship_ends schema Association "an association" n p
    | Modify_relationship_target_type (n, p, o, w) ->
        modify_target_type ~original schema Association "an association" n p o w
    | Modify_relationship_cardinality (n, p, old_c, new_c) ->
        let* i = require_interface schema n in
        let* r = require_rel i p in
        let* () = require_kind r Association "an association" in
        let* () =
          require_stale_eq ( = ) old_c r.rel_card
            (Printf.sprintf "cardinality of %s.%s" n p)
            pp_card
        in
        let schema =
          V.update_interface schema n (fun i ->
              {
                i with
                i_rels =
                  List.map
                    (fun r' ->
                      if String.equal r'.rel_name p then { r' with rel_card = new_c }
                      else r')
                    i.i_rels;
              })
        in
        Ok
          ( schema,
            [
              direct
                (Altered
                   ( C_relationship (n, p),
                     Printf.sprintf "cardinality %s -> %s" (pp_card old_c)
                       (pp_card new_c) ));
            ] )
    | Modify_relationship_order_by (n, p, o, w) ->
        modify_order_by schema Association "an association" n p o w
    | Add_operation (n, ret, o, args, raises) ->
        let* i = require_interface schema n in
        let* () = require_fresh_name "an operation" o in
        let* () =
          require_fresh_names "an argument" (List.map (fun a -> a.arg_name) args)
        in
        let* () = require_fresh_names "an exception" raises in
        let* () =
          if Schema.has_op i o then
            fail_conflict "%s already has an operation named %s" n o
          else Ok ()
        in
        let* () =
          let domains = ret :: List.map (fun a -> a.arg_type) args in
          match
            List.find_map
              (fun d ->
                match base_name d with
                | Some t when not (V.mem_interface schema t) -> Some t
                | _ -> None)
              domains
          with
          | Some t -> fail_unknown "signature type %s" t
          | None -> Ok ()
        in
        Ok
          ( V.update_interface schema n (fun i ->
                {
                  i with
                  i_ops =
                    i.i_ops
                    @ [
                        {
                          op_name = o;
                          op_return = ret;
                          op_args = args;
                          op_raises = raises;
                        };
                      ];
                }),
            [ direct (Added (C_operation (n, o))) ] )
    | Delete_operation (n, o) ->
        let* i = require_interface schema n in
        let* _ = require_op i o in
        Ok
          ( V.update_interface schema n (fun i ->
                {
                  i with
                  i_ops =
                    List.filter (fun o' -> not (String.equal o'.op_name o)) i.i_ops;
                }),
            [ direct (Removed (C_operation (n, o))) ] )
    | Modify_operation (n, o, n') -> move_operation ~original schema n o n'
    | Modify_operation_return_type (n, o, old_t, new_t) ->
        let* i = require_interface schema n in
        let* op_def = require_op i o in
        let* () =
          require_stale_eq equal_domain_type old_t op_def.op_return
            (Printf.sprintf "return type of %s.%s" n o)
            pp_domain
        in
        Ok
          ( update_op schema n o (fun op_def -> { op_def with op_return = new_t }),
            [
              direct
                (Altered
                   ( C_operation (n, o),
                     Printf.sprintf "return type %s -> %s" (pp_domain old_t)
                       (pp_domain new_t) ));
            ] )
    | Modify_operation_arg_list (n, o, old_a, new_a) ->
        let* i = require_interface schema n in
        let* op_def = require_op i o in
        let* () =
          require_fresh_names "an argument"
            (List.map (fun a -> a.arg_name) new_a)
        in
        let* () =
          require_stale_eq ( = ) old_a op_def.op_args
            (Printf.sprintf "argument list of %s.%s" n o)
            (fun args ->
              pp_names (List.map (fun a -> pp_domain a.arg_type ^ " " ^ a.arg_name) args))
        in
        Ok
          ( update_op schema n o (fun op_def -> { op_def with op_args = new_a }),
            [ direct (Altered (C_operation (n, o), "argument list changed")) ] )
    | Modify_operation_exceptions_raised (n, o, old_e, new_e) ->
        let* i = require_interface schema n in
        let* op_def = require_op i o in
        let* () = require_fresh_names "an exception" new_e in
        let* () =
          require_stale_eq ( = ) old_e op_def.op_raises
            (Printf.sprintf "exceptions of %s.%s" n o)
            pp_names
        in
        Ok
          ( update_op schema n o (fun op_def -> { op_def with op_raises = new_e }),
            [
              direct
                (Altered
                   ( C_operation (n, o),
                     Printf.sprintf "raises %s -> %s" (pp_names old_e)
                       (pp_names new_e) ));
            ] )
    | Add_part_of_relationship ar -> add_relationship_ends schema Part_of ar
    | Delete_part_of_relationship (n, p) ->
        delete_relationship_ends schema Part_of "a part-of relationship" n p
    | Modify_part_of_target_type (n, p, o, w) ->
        modify_target_type ~original schema Part_of "a part-of relationship" n p o w
    | Modify_part_of_cardinality (n, p, o, w) ->
        modify_collection_card schema Part_of "part-of" n p o w
    | Modify_part_of_order_by (n, p, o, w) ->
        modify_order_by schema Part_of "a part-of relationship" n p o w
    | Add_instance_of_relationship ar -> add_relationship_ends schema Instance_of ar
    | Delete_instance_of_relationship (n, p) ->
        delete_relationship_ends schema Instance_of "an instance-of relationship" n p
    | Modify_instance_of_target_type (n, p, o, w) ->
        modify_target_type ~original schema Instance_of
          "an instance-of relationship" n p o w
    | Modify_instance_of_cardinality (n, p, o, w) ->
        modify_collection_card schema Instance_of "instance-of" n p o w
    | Modify_instance_of_order_by (n, p, o, w) ->
        modify_order_by schema Instance_of "an instance-of relationship" n p o w

  (** [apply ~original ~kind schema op] applies [op] to the workspace [schema]
      in a concept schema of type [kind].  [original] is the shrink wrap schema
      (the reference for semantic stability).  On success, returns the new
      workspace and the impact events (direct first). *)
  let apply ~original ~kind schema op =
    match Permission.allowed kind op with
    | Error m -> Error (Not_allowed m)
    | Ok () -> (
        let* schema', events = primary ~original schema op in
        let schema', prop_events =
          P.repair_from schema' ~touched:(Change.touched_names events)
        in
        match V.errors schema' with
        | [] -> Ok (schema', events @ prop_events)
        | d :: _ ->
            fail_violation "operation would leave the schema invalid: %s"
              (Fmt.str "%a" Validate.pp_diagnostic_line d))

  (** Dry run of {!apply}: the impact report for [op] without committing. *)
  let preview ~original ~kind schema op =
    Result.map snd (apply ~original ~kind schema op)

  (** [apply_log ~original schema ops] replays a log of [(kind, op)] pairs,
      stopping at the first failure. *)
  let apply_log ~original schema ops =
    List.fold_left
      (fun acc (kind, op) ->
        let* schema, events = acc in
        let* schema, more = apply ~original ~kind schema op in
        Ok (schema, events @ more))
      (Ok (schema, []))
      ops
end

(* --- the two engine instantiations --------------------------------------- *)

module Naive = Make (Schema_view.Naive)
module Indexed = Make (Schema_index)

let apply = Naive.apply
let preview = Naive.preview
let apply_log = Naive.apply_log
let primary = Naive.primary
