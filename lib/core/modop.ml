(** Schema modification operations — the complete operation set of the
    paper's Appendix A BNF.

    Conventions carried over from the paper:

    - modify operations take the {e old} value as well as the new one; the
      application engine checks the old value against the workspace and
      rejects the operation on mismatch (stale-view feedback);
    - names are never modified (name equivalence / uniqueness assumptions);
    - the three "move" operations ({!Modify_attribute},
      {!Modify_operation}, {!Modify_relationship_target_type} and their
      part-of / instance-of analogues) relocate information strictly within
      the generalization hierarchy established by the shrink wrap schema
      (semantic stability). *)

open Odl.Types

(** Payload of an [add_relationship] (and of the part-of / instance-of
    variants, whose role is determined by [ar_card]: a collection end of a
    part-of relationship is the whole side; of an instance-of relationship,
    the generic side). *)
type add_rel = {
  ar_owner : type_name;
  ar_target : type_name;
  ar_card : collection_kind option;  (** [Some _] = to-many end *)
  ar_name : string;  (** traversal path declared on [ar_owner] *)
  ar_inverse : string;  (** traversal path declared on [ar_target] *)
  ar_order_by : string list;
}
[@@deriving show, eq, ord]

type t =
  (* interface definitions *)
  | Add_type_definition of type_name
  | Delete_type_definition of type_name
  (* type properties *)
  | Add_supertype of type_name * type_name
  | Delete_supertype of type_name * type_name
  | Modify_supertype of type_name * type_name list * type_name list
      (** re-wire ISA: (interface, old supertype list, new supertype list) *)
  | Add_extent_name of type_name * string
  | Delete_extent_name of type_name * string
  | Modify_extent_name of type_name * string * string
  | Add_key_list of type_name * string list
  | Delete_key_list of type_name * string list
  | Modify_key_list of type_name * string list * string list
  (* attributes *)
  | Add_attribute of type_name * domain_type * int option * string
  | Delete_attribute of type_name * string
  | Modify_attribute of type_name * string * type_name
      (** move the attribute up/down the generalization hierarchy:
          (owner, attribute, new owner) *)
  | Modify_attribute_type of type_name * string * domain_type * domain_type
  | Modify_attribute_size of type_name * string * int option * int option
  (* association relationships *)
  | Add_relationship of add_rel
  | Delete_relationship of type_name * string
  | Modify_relationship_target_type of type_name * string * type_name * type_name
      (** move the far end up/down the generalization hierarchy:
          (owner, traversal path, old target, new target) *)
  | Modify_relationship_cardinality of
      type_name * string * collection_kind option * collection_kind option
  | Modify_relationship_order_by of type_name * string * string list * string list
  (* operations *)
  | Add_operation of type_name * domain_type * string * argument list * string list
  | Delete_operation of type_name * string
  | Modify_operation of type_name * string * type_name
      (** move the operation up/down the generalization hierarchy *)
  | Modify_operation_return_type of type_name * string * domain_type * domain_type
  | Modify_operation_arg_list of type_name * string * argument list * argument list
  | Modify_operation_exceptions_raised of
      type_name * string * string list * string list
  (* part-of relationships *)
  | Add_part_of_relationship of add_rel
  | Delete_part_of_relationship of type_name * string
  | Modify_part_of_target_type of type_name * string * type_name * type_name
  | Modify_part_of_cardinality of type_name * string * collection_kind * collection_kind
      (** only allowed on the to-part-of (collection) end *)
  | Modify_part_of_order_by of type_name * string * string list * string list
  (* instance-of relationships *)
  | Add_instance_of_relationship of add_rel
  | Delete_instance_of_relationship of type_name * string
  | Modify_instance_of_target_type of type_name * string * type_name * type_name
  | Modify_instance_of_cardinality of
      type_name * string * collection_kind * collection_kind
      (** only allowed on the to-instance-entities (collection) end *)
  | Modify_instance_of_order_by of type_name * string * string list * string list
[@@deriving show, eq, ord]

(** The operation's keyword in the modification language. *)
let name = function
  | Add_type_definition _ -> "add_type_definition"
  | Delete_type_definition _ -> "delete_type_definition"
  | Add_supertype _ -> "add_supertype"
  | Delete_supertype _ -> "delete_supertype"
  | Modify_supertype _ -> "modify_supertype"
  | Add_extent_name _ -> "add_extent_name"
  | Delete_extent_name _ -> "delete_extent_name"
  | Modify_extent_name _ -> "modify_extent_name"
  | Add_key_list _ -> "add_key_list"
  | Delete_key_list _ -> "delete_key_list"
  | Modify_key_list _ -> "modify_key_list"
  | Add_attribute _ -> "add_attribute"
  | Delete_attribute _ -> "delete_attribute"
  | Modify_attribute _ -> "modify_attribute"
  | Modify_attribute_type _ -> "modify_attribute_type"
  | Modify_attribute_size _ -> "modify_attribute_size"
  | Add_relationship _ -> "add_relationship"
  | Delete_relationship _ -> "delete_relationship"
  | Modify_relationship_target_type _ -> "modify_relationship_target_type"
  | Modify_relationship_cardinality _ -> "modify_relationship_cardinality"
  | Modify_relationship_order_by _ -> "modify_relationship_order_by"
  | Add_operation _ -> "add_operation"
  | Delete_operation _ -> "delete_operation"
  | Modify_operation _ -> "modify_operation"
  | Modify_operation_return_type _ -> "modify_operation_return_type"
  | Modify_operation_arg_list _ -> "modify_operation_arg_list"
  | Modify_operation_exceptions_raised _ -> "modify_operation_exceptions_raised"
  | Add_part_of_relationship _ -> "add_part_of_relationship"
  | Delete_part_of_relationship _ -> "delete_part_of_relationship"
  | Modify_part_of_target_type _ -> "modify_part_of_target_type"
  | Modify_part_of_cardinality _ -> "modify_part_of_cardinality"
  | Modify_part_of_order_by _ -> "modify_part_of_order_by"
  | Add_instance_of_relationship _ -> "add_instance_of_relationship"
  | Delete_instance_of_relationship _ -> "delete_instance_of_relationship"
  | Modify_instance_of_target_type _ -> "modify_instance_of_target_type"
  | Modify_instance_of_cardinality _ -> "modify_instance_of_cardinality"
  | Modify_instance_of_order_by _ -> "modify_instance_of_order_by"

(** The interface an operation is primarily issued against. *)
let subject = function
  | Add_type_definition n | Delete_type_definition n -> n
  | Add_supertype (n, _)
  | Delete_supertype (n, _)
  | Modify_supertype (n, _, _)
  | Add_extent_name (n, _)
  | Delete_extent_name (n, _)
  | Modify_extent_name (n, _, _)
  | Add_key_list (n, _)
  | Delete_key_list (n, _)
  | Modify_key_list (n, _, _)
  | Add_attribute (n, _, _, _)
  | Delete_attribute (n, _)
  | Modify_attribute (n, _, _)
  | Modify_attribute_type (n, _, _, _)
  | Modify_attribute_size (n, _, _, _)
  | Delete_relationship (n, _)
  | Modify_relationship_target_type (n, _, _, _)
  | Modify_relationship_cardinality (n, _, _, _)
  | Modify_relationship_order_by (n, _, _, _)
  | Add_operation (n, _, _, _, _)
  | Delete_operation (n, _)
  | Modify_operation (n, _, _)
  | Modify_operation_return_type (n, _, _, _)
  | Modify_operation_arg_list (n, _, _, _)
  | Modify_operation_exceptions_raised (n, _, _, _)
  | Delete_part_of_relationship (n, _)
  | Modify_part_of_target_type (n, _, _, _)
  | Modify_part_of_cardinality (n, _, _, _)
  | Modify_part_of_order_by (n, _, _, _)
  | Delete_instance_of_relationship (n, _)
  | Modify_instance_of_target_type (n, _, _, _)
  | Modify_instance_of_cardinality (n, _, _, _)
  | Modify_instance_of_order_by (n, _, _, _) -> n
  | Add_relationship ar | Add_part_of_relationship ar
  | Add_instance_of_relationship ar -> ar.ar_owner

(** Classification used by the permission matrix (Table 1): the ODL
    candidate a given operation manipulates, and whether it adds, deletes or
    modifies it. *)
type candidate =
  | Cand_type_definition
  | Cand_supertype
  | Cand_extent
  | Cand_key
  | Cand_attribute
  | Cand_relationship
  | Cand_operation
  | Cand_part_of
  | Cand_instance_of
[@@deriving show, eq, ord]

type action = Add | Delete | Modify [@@deriving show, eq, ord]

let candidate_name = function
  | Cand_type_definition -> "type definition"
  | Cand_supertype -> "supertype (ISA)"
  | Cand_extent -> "extent name"
  | Cand_key -> "key list"
  | Cand_attribute -> "attribute"
  | Cand_relationship -> "relationship"
  | Cand_operation -> "operation"
  | Cand_part_of -> "part-of relationship"
  | Cand_instance_of -> "instance-of relationship"

let action_name = function Add -> "A" | Delete -> "D" | Modify -> "M"

let classify = function
  | Add_type_definition _ -> (Cand_type_definition, Add)
  | Delete_type_definition _ -> (Cand_type_definition, Delete)
  | Add_supertype _ -> (Cand_supertype, Add)
  | Delete_supertype _ -> (Cand_supertype, Delete)
  | Modify_supertype _ -> (Cand_supertype, Modify)
  | Add_extent_name _ -> (Cand_extent, Add)
  | Delete_extent_name _ -> (Cand_extent, Delete)
  | Modify_extent_name _ -> (Cand_extent, Modify)
  | Add_key_list _ -> (Cand_key, Add)
  | Delete_key_list _ -> (Cand_key, Delete)
  | Modify_key_list _ -> (Cand_key, Modify)
  | Add_attribute _ -> (Cand_attribute, Add)
  | Delete_attribute _ -> (Cand_attribute, Delete)
  | Modify_attribute _ | Modify_attribute_type _ | Modify_attribute_size _ ->
      (Cand_attribute, Modify)
  | Add_relationship _ -> (Cand_relationship, Add)
  | Delete_relationship _ -> (Cand_relationship, Delete)
  | Modify_relationship_target_type _ | Modify_relationship_cardinality _
  | Modify_relationship_order_by _ -> (Cand_relationship, Modify)
  | Add_operation _ -> (Cand_operation, Add)
  | Delete_operation _ -> (Cand_operation, Delete)
  | Modify_operation _ | Modify_operation_return_type _
  | Modify_operation_arg_list _ | Modify_operation_exceptions_raised _ ->
      (Cand_operation, Modify)
  | Add_part_of_relationship _ -> (Cand_part_of, Add)
  | Delete_part_of_relationship _ -> (Cand_part_of, Delete)
  | Modify_part_of_target_type _ | Modify_part_of_cardinality _
  | Modify_part_of_order_by _ -> (Cand_part_of, Modify)
  | Add_instance_of_relationship _ -> (Cand_instance_of, Add)
  | Delete_instance_of_relationship _ -> (Cand_instance_of, Delete)
  | Modify_instance_of_target_type _ | Modify_instance_of_cardinality _
  | Modify_instance_of_order_by _ -> (Cand_instance_of, Modify)
