(** Algorithmic decomposition of a shrink wrap schema into concept schemas.

    The paper requires that a schema defined in extended ODL can be
    decomposed algorithmically: at least one wagon wheel exists for every
    object type, and the union of all initial concept schemas gives back the
    original shrink wrap schema.

    Functorized over {!Schema_view.S}: the naive backend scans the schema
    for every neighbourhood query, the indexed backend answers them from
    its adjacency maps.  Both produce identical concept lists (tested by
    property). *)

open Odl.Types

module Make (V : Schema_view.S) = struct
  (** The wagon wheel centred on [focus]: the focal interface, every
      interface one relationship link away (any kind, either direction),
      and the focal point's direct supertypes and subtypes. *)
  let wagon_wheel v focus =
    let i = V.get_interface v focus in
    let own_edges = List.map (fun r -> (focus, r.rel_name)) i.i_rels in
    let incoming =
      V.relationships_targeting v focus
      |> List.filter (fun (owner, _) -> not (String.equal owner.i_name focus))
      |> List.map (fun (owner, r) -> (owner.i_name, r.rel_name))
    in
    let neighbours =
      List.map (fun r -> r.rel_target) i.i_rels
      @ List.map fst incoming
      @ List.filter (V.mem_interface v) i.i_supertypes
      @ V.direct_subtypes v focus
    in
    let members =
      focus
      :: (neighbours
         |> List.filter (fun n -> not (String.equal n focus))
         |> List.sort_uniq compare)
    in
    Concept.make Wagon_wheel focus members (own_edges @ incoming)

  let wagon_wheels v =
    List.map (fun i -> wagon_wheel v i.i_name) (V.schema v).s_interfaces

  (* Reachable closure with an explicit edge accumulator. *)
  let reach children_edges start =
    let rec go members edges = function
      | [] -> (List.rev members, List.rev edges)
      | n :: rest ->
          if List.mem n members then go members edges rest
          else
            let es = children_edges n in
            let nexts = List.map (fun (_, _, target) -> target) es in
            go (n :: members)
              (List.rev_append
                 (List.map (fun (owner, path, _) -> (owner, path)) es)
                 edges)
              (nexts @ rest)
    in
    let members, edges = go [] [] [ start ] in
    (members, List.rev edges)

  (** The generalization hierarchy rooted at [root]: the root and all its
      descendants; edges are not relationship paths (ISA is structural), so
      [c_edges] is empty and the projection keeps ISA links among members. *)
  let generalization_hierarchy v root =
    let members = root :: V.descendants v root in
    Concept.make Generalization root members []

  (** One generalization-hierarchy concept schema per ISA root that actually
      has subtypes (a lone interface is not a hierarchy). *)
  let generalization_hierarchies v =
    V.isa_roots v
    |> List.filter (fun r -> V.direct_subtypes v r <> [])
    |> List.map (generalization_hierarchy v)

  let whole_part_edges v name =
    match V.find_interface v name with
    | None -> []
    | Some i ->
        i.i_rels
        |> List.filter (fun r -> role_of_relationship r = Whole_end)
        |> List.map (fun r -> (name, r.rel_name, r.rel_target))

  (** The aggregation hierarchy (parts explosion) rooted at [root]. *)
  let aggregation_hierarchy v root =
    let members, edges = reach (whole_part_edges v) root in
    Concept.make Aggregation root members edges

  (** Roots of aggregation hierarchies: interfaces that aggregate parts but
      are not themselves a part of anything. *)
  let aggregation_roots v =
    let is_whole n = whole_part_edges v n <> [] in
    let is_part n =
      V.relationships_targeting v n
      |> List.exists (fun (_, r) -> role_of_relationship r = Whole_end)
    in
    V.interface_names v |> List.filter (fun n -> is_whole n && not (is_part n))

  let aggregation_hierarchies v =
    List.map (aggregation_hierarchy v) (aggregation_roots v)

  let generic_instance_edges v name =
    match V.find_interface v name with
    | None -> []
    | Some i ->
        i.i_rels
        |> List.filter (fun r -> role_of_relationship r = Generic_end)
        |> List.map (fun r -> (name, r.rel_name, r.rel_target))

  (** The instance-of hierarchy headed at [head]: the chain (in our
      experience linear, but branching is representable) of instance-of
      links. *)
  let instance_chain v head =
    let members, edges = reach (generic_instance_edges v) head in
    Concept.make Instance_chain head members edges

  (** Heads of instance-of chains: generic entities that are not themselves
      an instance of anything. *)
  let instance_heads v =
    let is_generic n = generic_instance_edges v n <> [] in
    let is_instance n =
      V.relationships_targeting v n
      |> List.exists (fun (_, r) -> role_of_relationship r = Generic_end)
    in
    V.interface_names v
    |> List.filter (fun n -> is_generic n && not (is_instance n))

  let instance_chains v = List.map (instance_chain v) (instance_heads v)

  (** Full decomposition: wagon wheels (one per object type) followed by the
      generalization, aggregation, and instance-of hierarchies. *)
  let decompose v =
    wagon_wheels v
    @ generalization_hierarchies v
    @ aggregation_hierarchies v
    @ instance_chains v
end

module Naive = Make (Schema_view.Naive)
module Indexed = Make (Schema_index)

let wagon_wheel = Naive.wagon_wheel
let wagon_wheels = Naive.wagon_wheels
let generalization_hierarchy = Naive.generalization_hierarchy
let generalization_hierarchies = Naive.generalization_hierarchies
let aggregation_hierarchy = Naive.aggregation_hierarchy
let aggregation_roots = Naive.aggregation_roots
let aggregation_hierarchies = Naive.aggregation_hierarchies
let instance_chain = Naive.instance_chain
let instance_heads = Naive.instance_heads
let instance_chains = Naive.instance_chains
let decompose = Naive.decompose

let find concepts id = List.find_opt (fun c -> String.equal c.Concept.c_id id) concepts
