(** Algorithmic decomposition of a shrink wrap schema into concept schemas.

    The paper requires that a schema defined in extended ODL can be
    decomposed algorithmically: at least one wagon wheel exists for every
    object type, and the union of all initial concept schemas gives back the
    original shrink wrap schema. *)

open Odl.Types
module Schema = Odl.Schema

(** The wagon wheel centred on [focus]: the focal interface, every interface
    one relationship link away (any kind, either direction), and the focal
    point's direct supertypes and subtypes. *)
let wagon_wheel schema focus =
  let i = Schema.get_interface schema focus in
  let own_edges = List.map (fun r -> (focus, r.rel_name)) i.i_rels in
  let incoming =
    Schema.relationships_targeting schema focus
    |> List.filter (fun (owner, _) -> not (String.equal owner.i_name focus))
    |> List.map (fun (owner, r) -> (owner.i_name, r.rel_name))
  in
  let neighbours =
    List.map (fun r -> r.rel_target) i.i_rels
    @ List.map fst incoming
    @ List.filter (Schema.mem_interface schema) i.i_supertypes
    @ Schema.direct_subtypes schema focus
  in
  let members =
    focus
    :: (neighbours
       |> List.filter (fun n -> not (String.equal n focus))
       |> List.sort_uniq compare)
  in
  Concept.make Wagon_wheel focus members (own_edges @ incoming)

let wagon_wheels schema =
  List.map (fun i -> wagon_wheel schema i.i_name) schema.s_interfaces

(* Reachable closure with an explicit edge accumulator. *)
let reach children_edges start =
  let rec go members edges = function
    | [] -> (List.rev members, List.rev edges)
    | n :: rest ->
        if List.mem n members then go members edges rest
        else
          let es = children_edges n in
          let nexts = List.map (fun (_, _, target) -> target) es in
          go (n :: members)
            (List.rev_append
               (List.map (fun (owner, path, _) -> (owner, path)) es)
               edges)
            (nexts @ rest)
  in
  let members, edges = go [] [] [ start ] in
  (members, List.rev edges)

(** The generalization hierarchy rooted at [root]: the root and all its
    descendants; edges are not relationship paths (ISA is structural), so
    [c_edges] is empty and the projection keeps ISA links among members. *)
let generalization_hierarchy schema root =
  let members = root :: Schema.descendants schema root in
  Concept.make Generalization root members []

(** One generalization-hierarchy concept schema per ISA root that actually
    has subtypes (a lone interface is not a hierarchy). *)
let generalization_hierarchies schema =
  Schema.isa_roots schema
  |> List.filter (fun r -> Schema.direct_subtypes schema r <> [])
  |> List.map (generalization_hierarchy schema)

let whole_part_edges schema name =
  match Schema.find_interface schema name with
  | None -> []
  | Some i ->
      i.i_rels
      |> List.filter (fun r -> role_of_relationship r = Whole_end)
      |> List.map (fun r -> (name, r.rel_name, r.rel_target))

(** The aggregation hierarchy (parts explosion) rooted at [root]. *)
let aggregation_hierarchy schema root =
  let members, edges = reach (whole_part_edges schema) root in
  Concept.make Aggregation root members edges

(** Roots of aggregation hierarchies: interfaces that aggregate parts but are
    not themselves a part of anything. *)
let aggregation_roots schema =
  let is_whole n = whole_part_edges schema n <> [] in
  let is_part n =
    Schema.all_relationships schema
    |> List.exists (fun (_, r) ->
           role_of_relationship r = Whole_end && String.equal r.rel_target n)
  in
  Schema.interface_names schema
  |> List.filter (fun n -> is_whole n && not (is_part n))

let aggregation_hierarchies schema =
  List.map (aggregation_hierarchy schema) (aggregation_roots schema)

let generic_instance_edges schema name =
  match Schema.find_interface schema name with
  | None -> []
  | Some i ->
      i.i_rels
      |> List.filter (fun r -> role_of_relationship r = Generic_end)
      |> List.map (fun r -> (name, r.rel_name, r.rel_target))

(** The instance-of hierarchy headed at [head]: the chain (in our experience
    linear, but branching is representable) of instance-of links. *)
let instance_chain schema head =
  let members, edges = reach (generic_instance_edges schema) head in
  Concept.make Instance_chain head members edges

(** Heads of instance-of chains: generic entities that are not themselves an
    instance of anything. *)
let instance_heads schema =
  let is_generic n = generic_instance_edges schema n <> [] in
  let is_instance n =
    Schema.all_relationships schema
    |> List.exists (fun (_, r) ->
           role_of_relationship r = Generic_end && String.equal r.rel_target n)
  in
  Schema.interface_names schema
  |> List.filter (fun n -> is_generic n && not (is_instance n))

let instance_chains schema =
  List.map (instance_chain schema) (instance_heads schema)

(** Full decomposition: wagon wheels (one per object type) followed by the
    generalization, aggregation, and instance-of hierarchies. *)
let decompose schema =
  wagon_wheels schema
  @ generalization_hierarchies schema
  @ aggregation_hierarchies schema
  @ instance_chains schema

let find concepts id = List.find_opt (fun c -> String.equal c.Concept.c_id id) concepts
