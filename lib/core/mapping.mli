(** The semantic correspondence between the shrink wrap schema and the
    customized schema.

    Under name equivalence, uniqueness and the stability assumptions, the
    mapping is computed structurally: every shrink-wrap construct is
    classified exactly once (tested by property), and custom-side constructs
    with no counterpart are designer additions. *)

open Odl.Types

type status =
  | Preserved
  | Modified of string list  (** which aspects changed *)
  | Moved of type_name  (** now resides on the named interface *)
  | Moved_and_modified of type_name * string list
  | Deleted

type entry = {
  m_construct : Change.construct;  (** located in the shrink wrap schema *)
  m_status : status;
}

type t = {
  entries : entry list;  (** one per shrink-wrap construct *)
  added : Change.construct list;  (** designer additions, custom side *)
}

val equal_status : status -> status -> bool
val equal_entry : entry -> entry -> bool
val equal : t -> t -> bool
val pp_status : Format.formatter -> status -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
val show : t -> string

val compute : original:schema -> custom:schema -> t

val status_to_string : status -> string

val summary : t -> int * int * int * int * int
(** (preserved, modified, moved, deleted, added). *)
