(** Recomposition: merging concept-schema projections back into one schema,
    and content-level schema equality. *)

open Odl.Types

val merge_interface : interface -> interface -> interface
(** Union of two same-named interface definitions; same-named members are
    identified (name equivalence). *)

val union : name:string -> schema list -> schema
(** Merge interfaces by name across all the given schemas. *)

val normalize : schema -> schema
(** Canonical form: interfaces and members sorted by name. *)

val equal_content : schema -> schema -> bool
(** Equality of design content — declaration order and schema name are
    ignored. *)

val reconstruct : schema -> schema
(** Rebuild a schema as the union of its wagon wheel projections;
    [equal_content (reconstruct s) s] holds for every well-formed [s]. *)
