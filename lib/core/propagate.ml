(** Propagation rules of the knowledge component.

    After the primary effect of an operation, the workspace may contain
    constructs that refer to things that no longer exist (relationships whose
    target was deleted, keys naming an attribute that moved away, ...).
    [repair] applies the propagation rules to a fixpoint, returning the
    repaired schema together with the propagated change events — the material
    of the impact report.

    The rules are written once, in {!Make}, against an abstract
    {!Schema_view.S} backend.  Each pass computes every repair against the
    frozen pre-pass state and only then applies the updates, so the emitted
    event sequence is independent of the backend: the naive backend scans
    every interface per pass, the indexed backend only the
    [affected_by]-candidates — a sound superset of the interfaces whose
    rules can fire, because on a rule-closed workspace a rule only fires as
    a consequence of the change that seeded the pass. *)

open Odl.Types

module Make (V : Schema_view.S) = struct
  let known_domain v d =
    match base_name d with
    | None -> true
    | Some n -> V.mem_interface v n

  (* One interface's repairs against the frozen pre-pass state [v]; events
     are noted in rule order (the order the naive implementation emitted
     them in). *)
  let repair_interface v note i =
    (* rule 1: drop supertype references to missing interfaces *)
    let supertypes =
      List.filter
        (fun s ->
          let ok = V.mem_interface v s in
          if not ok then note (Change.Removed (Change.C_supertype (i.i_name, s)));
          ok)
        i.i_supertypes
    in
    (* rules 2-3: drop relationships whose target or inverse end is gone *)
    let rels =
      List.filter
        (fun r ->
          let ok =
            match V.find_interface v r.rel_target with
            | None -> false
            | Some target -> Odl.Schema.has_rel target r.rel_inverse
          in
          if not ok then
            note (Change.Removed (Change.C_relationship (i.i_name, r.rel_name)));
          ok)
        i.i_rels
    in
    (* rule 4: drop attributes whose domain names a missing type *)
    let attrs =
      List.filter
        (fun a ->
          let ok = known_domain v a.attr_type in
          if not ok then
            note (Change.Removed (Change.C_attribute (i.i_name, a.attr_name)));
          ok)
        i.i_attrs
    in
    (* rule 5: drop operations whose signature names a missing type *)
    let ops =
      List.filter
        (fun o ->
          let ok =
            known_domain v o.op_return
            && List.for_all (fun a -> known_domain v a.arg_type) o.op_args
          in
          if not ok then
            note (Change.Removed (Change.C_operation (i.i_name, o.op_name)));
          ok)
        i.i_ops
    in
    (* rule 6: drop keys naming attributes no longer visible here.  Uses the
       attribute sets of the pre-pass state; convergence comes from
       iterating to fixpoint. *)
    let visible = V.visible_attrs v i.i_name in
    let visible_attr n = List.exists (fun a -> String.equal a.attr_name n) visible in
    let keys =
      List.filter
        (fun k ->
          let ok = List.for_all visible_attr k in
          if not ok then note (Change.Removed (Change.C_key (i.i_name, k)));
          ok)
        i.i_keys
    in
    (* rule 7: prune order-by entries naming attributes not visible on the
       relationship target *)
    let rels =
      List.map
        (fun r ->
          if r.rel_order_by = [] then r
          else
            match V.find_interface v r.rel_target with
            | None -> r  (* already removed above on the next pass *)
            | Some _ ->
                let target_attrs = V.visible_attrs v r.rel_target in
                let ok a =
                  List.exists (fun ta -> String.equal ta.attr_name a) target_attrs
                in
                let kept, dropped = List.partition ok r.rel_order_by in
                if dropped = [] then r
                else begin
                  note
                    (Change.Altered
                       ( Change.C_relationship (i.i_name, r.rel_name),
                         "order_by pruned: "
                         ^ String.concat ", " dropped ));
                  { r with rel_order_by = kept }
                end)
        rels
    in
    { i with i_supertypes = supertypes; i_rels = rels; i_attrs = attrs;
      i_ops = ops; i_keys = keys }

  (* One pass over [candidates] (declaration order): compute all repairs
     against the frozen [v], then apply those that changed anything.
     Returns the new state, this pass's events, and the changed names. *)
  let pass v candidates =
    let updates =
      List.filter_map
        (fun name ->
          match V.find_interface v name with
          | None -> None
          | Some i ->
              let evs = ref [] in
              let note ch = evs := Change.propagated ch :: !evs in
              let i' = repair_interface v note i in
              if !evs = [] then None else Some (name, i', List.rev !evs))
        candidates
    in
    let v' =
      List.fold_left
        (fun v (name, i', _) -> V.update_interface v name (fun _ -> i'))
        v updates
    in
    ( v',
      List.concat_map (fun (_, _, evs) -> evs) updates,
      List.map (fun (name, _, _) -> name) updates )

  (** Apply the propagation rules to a fixpoint, starting from the
      interfaces that may react to a change of the [touched] ones. *)
  let repair_from v ~touched =
    let rec go v acc touched guard =
      if guard = 0 then (v, acc)  (* defensive bound; rules only remove *)
      else
        let v', events, changed = pass v (V.affected_by v touched) in
        if events = [] then (v, acc) else go v' (acc @ events) changed (guard - 1)
    in
    go v [] touched 1000
end

module Naive = Make (Schema_view.Naive)

(** Apply the propagation rules to a fixpoint (over a plain schema; every
    interface is a candidate on every pass). *)
let repair schema =
  Naive.repair_from schema ~touched:(Odl.Schema.interface_names schema)
