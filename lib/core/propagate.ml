(** Propagation rules of the knowledge component.

    After the primary effect of an operation, the workspace may contain
    constructs that refer to things that no longer exist (relationships whose
    target was deleted, keys naming an attribute that moved away, ...).
    [repair] applies the propagation rules to a fixpoint, returning the
    repaired schema together with the propagated change events — the material
    of the impact report. *)

open Odl.Types
module Schema = Odl.Schema

let known_domain schema d =
  match base_name d with
  | None -> true
  | Some n -> Schema.mem_interface schema n

(* One pass of every rule; returns the new schema and this pass's events. *)
let pass schema =
  let events = ref [] in
  let note ch = events := Change.propagated ch :: !events in
  let repair_interface i =
    (* rule 1: drop supertype references to missing interfaces *)
    let supertypes =
      List.filter
        (fun s ->
          let ok = Schema.mem_interface schema s in
          if not ok then note (Change.Removed (Change.C_supertype (i.i_name, s)));
          ok)
        i.i_supertypes
    in
    (* rules 2-3: drop relationships whose target or inverse end is gone *)
    let rels =
      List.filter
        (fun r ->
          let ok =
            match Schema.find_interface schema r.rel_target with
            | None -> false
            | Some target -> Schema.has_rel target r.rel_inverse
          in
          if not ok then
            note (Change.Removed (Change.C_relationship (i.i_name, r.rel_name)));
          ok)
        i.i_rels
    in
    (* rule 4: drop attributes whose domain names a missing type *)
    let attrs =
      List.filter
        (fun a ->
          let ok = known_domain schema a.attr_type in
          if not ok then
            note (Change.Removed (Change.C_attribute (i.i_name, a.attr_name)));
          ok)
        i.i_attrs
    in
    (* rule 5: drop operations whose signature names a missing type *)
    let ops =
      List.filter
        (fun o ->
          let ok =
            known_domain schema o.op_return
            && List.for_all (fun a -> known_domain schema a.arg_type) o.op_args
          in
          if not ok then
            note (Change.Removed (Change.C_operation (i.i_name, o.op_name)));
          ok)
        i.i_ops
    in
    (* rule 6: drop keys naming attributes no longer visible here.  Uses the
       attribute sets of the pre-pass schema; convergence comes from
       iterating to fixpoint. *)
    let visible = Schema.visible_attrs schema i.i_name in
    let visible_attr n = List.exists (fun a -> String.equal a.attr_name n) visible in
    let keys =
      List.filter
        (fun k ->
          let ok = List.for_all visible_attr k in
          if not ok then note (Change.Removed (Change.C_key (i.i_name, k)));
          ok)
        i.i_keys
    in
    (* rule 7: prune order-by entries naming attributes not visible on the
       relationship target *)
    let rels =
      List.map
        (fun r ->
          if r.rel_order_by = [] then r
          else
            match Schema.find_interface schema r.rel_target with
            | None -> r  (* already removed above on the next pass *)
            | Some _ ->
                let target_attrs = Schema.visible_attrs schema r.rel_target in
                let ok a =
                  List.exists (fun ta -> String.equal ta.attr_name a) target_attrs
                in
                let kept, dropped = List.partition ok r.rel_order_by in
                if dropped = [] then r
                else begin
                  note
                    (Change.Altered
                       ( Change.C_relationship (i.i_name, r.rel_name),
                         "order_by pruned: "
                         ^ String.concat ", " dropped ));
                  { r with rel_order_by = kept }
                end)
        rels
    in
    { i with i_supertypes = supertypes; i_rels = rels; i_attrs = attrs;
      i_ops = ops; i_keys = keys }
  in
  let s' = { schema with s_interfaces = List.map repair_interface schema.s_interfaces } in
  (s', List.rev !events)

(** Apply the propagation rules to a fixpoint. *)
let repair schema =
  let rec go schema acc guard =
    if guard = 0 then (schema, acc)  (* defensive bound; rules only remove *)
    else
      let s', events = pass schema in
      if events = [] then (schema, acc) else go s' (acc @ events) (guard - 1)
  in
  go schema [] 1000
