(** Local names (paper section 5, proposed extension to name equivalence).

    Aliases are presentation-level: the workspace keeps canonical names (so
    name equivalence and all machinery stand), and the system maintains the
    mapping from shrink wrap schema names to local names. *)

(** What can carry a local name. *)
type target =
  | For_interface of Odl.Types.type_name
  | For_member of Odl.Types.type_name * string
      (** attribute, relationship, or operation of an interface *)

type binding = { target : target; local : string }
type t

val equal_target : target -> target -> bool
val compare_target : target -> target -> int
val pp_target : Format.formatter -> target -> unit

val empty : t
val bindings : t -> binding list

val target_to_string : target -> string
val target_of_string : string -> target
(** ["Person"] or ["Person.name"]. *)

val find : t -> target -> binding option
val local_of : t -> target -> string option
val targets_of_local : t -> string -> target list

val add : Odl.Types.schema -> t -> target -> string -> (t, string) result
(** Bind a local name.  The target must exist in the schema; the local name
    must be a valid, non-keyword identifier, unique among interface aliases
    (and real interface names) for interfaces, and unique within the owning
    interface for members.  Rebinding a target replaces its previous local
    name. *)

val remove : t -> target -> t

val prune : Odl.Types.schema -> t -> t * binding list
(** Drop bindings whose target no longer exists; returns survivors and
    dropped bindings. *)

val display_interface : t -> Odl.Types.type_name -> string
val report : t -> string

(** {1 Persistence} — one line per binding: ["canonical = local"]. *)

val to_string : t -> string

exception Bad_aliases of string

val of_string : string -> t
(** @raise Bad_aliases on malformed lines. *)
