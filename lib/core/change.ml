(** The vocabulary of schema changes, used for impact reports and the
    shrink-wrap → custom mapping.

    Applying one operation produces one {e direct} change plus any number of
    {e propagated} changes (the knowledge component's propagation rules);
    showing the full event list before committing is the paper's impact
    report. *)

open Odl.Types

type construct =
  | C_interface of type_name
  | C_supertype of type_name * type_name  (** (subtype, supertype) link *)
  | C_extent of type_name
  | C_key of type_name * string list
  | C_attribute of type_name * string
  | C_relationship of type_name * string
  | C_operation of type_name * string
[@@deriving show, eq, ord]

type change =
  | Added of construct
  | Removed of construct
  | Altered of construct * string  (** in-place modification, described *)
  | Moved of construct * type_name  (** relocated to the named interface *)
[@@deriving show, eq, ord]

type event = {
  ev_change : change;
  ev_direct : bool;  (** [false] for propagated consequences *)
}
[@@deriving show, eq, ord]

let direct change = { ev_change = change; ev_direct = true }
let propagated change = { ev_change = change; ev_direct = false }

(* The interfaces whose records a construct lives in. *)
let construct_owners = function
  | C_interface n | C_extent n | C_key (n, _) | C_attribute (n, _)
  | C_relationship (n, _) | C_operation (n, _) ->
      [ n ]
  | C_supertype (sub, _) -> [ sub ]  (* the link is stored on the subtype *)

(** The interfaces whose records an event list touches — the seed of the
    dirty set for incremental re-checking and propagation.  Sorted,
    duplicate-free; may include names of just-removed interfaces. *)
let touched_names events =
  events
  |> List.concat_map (fun e ->
         match e.ev_change with
         | Added c | Removed c | Altered (c, _) -> construct_owners c
         | Moved (c, dest) -> dest :: construct_owners c)
  |> List.sort_uniq compare

let construct_to_string = function
  | C_interface n -> Printf.sprintf "interface %s" n
  | C_supertype (sub, super) -> Printf.sprintf "supertype link %s : %s" sub super
  | C_extent n -> Printf.sprintf "extent of %s" n
  | C_key (n, k) -> Printf.sprintf "key (%s) of %s" (String.concat ", " k) n
  | C_attribute (n, a) -> Printf.sprintf "attribute %s.%s" n a
  | C_relationship (n, r) -> Printf.sprintf "relationship %s.%s" n r
  | C_operation (n, o) -> Printf.sprintf "operation %s.%s" n o

let change_to_string = function
  | Added c -> "added " ^ construct_to_string c
  | Removed c -> "removed " ^ construct_to_string c
  | Altered (c, how) -> Printf.sprintf "altered %s (%s)" (construct_to_string c) how
  | Moved (c, dest) ->
      Printf.sprintf "moved %s to %s" (construct_to_string c) dest

let event_to_string e =
  (if e.ev_direct then "" else "  [propagated] ") ^ change_to_string e.ev_change

let pp_event ppf e = Fmt.string ppf (event_to_string e)
