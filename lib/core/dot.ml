(** Graphviz (DOT) rendering of schemas and concept schemas.

    The paper's interactive designer shows schemas graphically (OMT
    notation); this is the batch equivalent: deterministic DOT output with
    the OMT conventions mapped onto Graphviz idioms —

    - generalization: solid edge with an empty (triangle) arrowhead;
    - aggregation (part-of): edge with a diamond tail on the whole;
    - instance-of: dashed edge from generic to instance;
    - association: plain edge, labelled with the traversal path names.

    Node labels are records listing attributes and operations.  Output is
    deterministic (declaration order) so tests can assert on it. *)

open Odl.Types
module Schema = Odl.Schema

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '<' -> "\\<"
         | '>' -> "\\>"
         | '{' -> "\\{"
         | '}' -> "\\}"
         | '|' -> "\\|"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let attr_line (a : attribute) =
  escape
    (Printf.sprintf "%s : %s%s" a.attr_name
       (Fmt.str "%a" Odl.Printer.pp_domain a.attr_type)
       (match a.attr_size with Some n -> Printf.sprintf "<%d>" n | None -> ""))

let op_line (o : operation) =
  escape (Printf.sprintf "%s()" o.op_name)

let node_label (i : interface) =
  let attrs = String.concat "\\l" (List.map attr_line i.i_attrs) in
  let ops = String.concat "\\l" (List.map op_line i.i_ops) in
  match (attrs, ops) with
  | "", "" -> Printf.sprintf "{%s}" (escape i.i_name)
  | attrs, "" -> Printf.sprintf "{%s|%s\\l}" (escape i.i_name) attrs
  | "", ops -> Printf.sprintf "{%s|%s\\l}" (escape i.i_name) ops
  | attrs, ops -> Printf.sprintf "{%s|%s\\l|%s\\l}" (escape i.i_name) attrs ops

let node_line ?(highlight = false) i =
  Printf.sprintf "  \"%s\" [shape=record, label=\"%s\"%s];" i.i_name
    (node_label i)
    (if highlight then ", style=filled, fillcolor=lightgoldenrod" else "")

(* Emit each relationship pair once: from the end whose (owner, name) is the
   canonical (smaller) one, preferring the collection end for part-of /
   instance-of so the diamond sits on the whole / the dashed arrow leaves
   the generic. *)
let canonical_end (i : interface) (r : relationship) =
  match role_of_relationship r with
  | Whole_end | Generic_end -> true
  | Part_end | Instance_end -> false
  | Assoc_end ->
      (i.i_name, r.rel_name) <= (r.rel_target, r.rel_inverse)

let edge_line (i : interface) (r : relationship) =
  let label = Printf.sprintf "%s / %s" r.rel_name r.rel_inverse in
  match r.rel_kind with
  | Association ->
      Printf.sprintf
        "  \"%s\" -> \"%s\" [dir=none, label=\"%s\", fontsize=9];" i.i_name
        r.rel_target (escape label)
  | Part_of ->
      Printf.sprintf
        "  \"%s\" -> \"%s\" [arrowtail=diamond, dir=back, label=\"%s\", \
         fontsize=9];"
        i.i_name r.rel_target (escape r.rel_name)
  | Instance_of ->
      Printf.sprintf
        "  \"%s\" -> \"%s\" [style=dashed, label=\"%s\", fontsize=9];" i.i_name
        r.rel_target (escape r.rel_name)

let isa_lines (i : interface) =
  List.map
    (fun s ->
      Printf.sprintf "  \"%s\" -> \"%s\" [arrowhead=empty];" i.i_name s)
    i.i_supertypes

let graph_body ?focus interfaces =
  let nodes =
    List.map
      (fun i ->
        node_line ~highlight:(focus = Some i.i_name) i)
      interfaces
  in
  let member_names = List.map (fun i -> i.i_name) interfaces in
  let edges =
    interfaces
    |> List.concat_map (fun i ->
           isa_lines
             { i with i_supertypes = List.filter (fun s -> List.mem s member_names) i.i_supertypes }
           @ (i.i_rels
             |> List.filter (fun r ->
                    canonical_end i r && List.mem r.rel_target member_names)
             |> List.map (edge_line i)))
  in
  nodes @ edges

(** The whole schema as a DOT digraph. *)
let schema_graph schema =
  String.concat "\n"
    ([ Printf.sprintf "digraph \"%s\" {" schema.s_name;
       "  rankdir=BT;";
       "  node [fontsize=10];" ]
    @ graph_body schema.s_interfaces
    @ [ "}" ])
  ^ "\n"

(** One concept schema as a DOT digraph; the focal point is highlighted and
    only the concept schema's members and edges appear. *)
let concept_graph schema (c : Concept.t) =
  let projection = Concept.project schema c in
  String.concat "\n"
    ([ Printf.sprintf "digraph \"%s\" {" c.c_id;
       "  rankdir=BT;";
       "  node [fontsize=10];";
       Printf.sprintf "  label=\"%s (%s)\";" (escape c.c_id)
         (Concept.kind_name c.c_kind) ]
    @ graph_body ~focus:c.c_focus projection.s_interfaces
    @ [ "}" ])
  ^ "\n"
