(** Translation of extended-ODL schemas to the entity-relationship model
    (the other half of the paper's section-5 generality claim; see
    {!Relational} for the relational half).  See the implementation header
    for the mapping rules. *)

type cardinality = { c_min : int; c_max : int option  (** [None] = N *) }

val card_to_string : cardinality -> string
(** ["(0,N)"], ["(1,1)"], ... *)

type er_attribute = {
  ea_name : string;
  ea_multivalued : bool;  (** from collection-valued ODL attributes *)
  ea_key : bool;
}

type entity = {
  e_name : string;
  e_supertypes : string list;
  e_attributes : er_attribute list;
}

type rel_kind = Er_association | Er_aggregation | Er_instantiation

type er_relationship = {
  er_name : string;
  er_kind : rel_kind;
  er_left : string * cardinality;
  er_right : string * cardinality;
  er_left_role : string;
  er_right_role : string;
}

type model = {
  m_name : string;
  m_entities : entity list;
  m_relationships : er_relationship list;
  m_dropped_operations : int;  (** operations have no ER counterpart *)
}

val of_schema : Odl.Types.schema -> model

val to_string : model -> string
(** Deterministic plain-text rendering; key attributes appear as
    [_name_]. *)

val summary : model -> int * int * int
(** (entities, relationship types, attributes). *)
