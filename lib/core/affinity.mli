(** Schema affinity: quantifying how similar two schemas are, following the
    name-based notion of semantic affinity from the schema-reuse literature
    the paper builds on.  Used to measure the ACEDB family overlap (paper
    section 4) and to pick the best shrink wrap schema from a library. *)

open Odl.Types

val interface_similarity : interface -> interface -> float
(** Dice coefficient over member names (attributes, relationships,
    operations, supertypes — each in its own namespace), in [0, 1]. *)

val shared_types : schema -> schema -> type_name list
val type_overlap : schema -> schema -> float
(** Jaccard overlap of the object-type name sets. *)

val semantic_affinity : schema -> schema -> float
(** Type-name overlap scaled by mean structural similarity of the shared
    types; symmetric, in [0, 1], and 1.0 on content-identical schemas. *)

val shared_type_detail : schema -> schema -> (type_name * float) list
(** Per-shared-type similarity, most similar first. *)

(** Structural descriptor of a schema (schema-library catalog entry). *)
type descriptor = {
  d_name : string;
  d_types : int;
  d_attrs : int;
  d_assocs : int;
  d_part_ofs : int;
  d_instance_ofs : int;
  d_ops : int;
  d_isa_links : int;
  d_isa_depth : int;
}

val descriptor : schema -> descriptor
val descriptor_to_string : descriptor -> string

val rank : sketch:schema -> schema list -> (schema * float) list
(** Library schemas by affinity to an application sketch, best first. *)

val best : sketch:schema -> schema list -> (schema * float) option

val matrix : schema list -> string
(** Pairwise affinity matrix rendering. *)
