(** Translation of extended-ODL schemas to the entity-relationship model.

    The paper's section 5 grounds its generality claim in translations "to
    other models such as entity relationship diagrams and relational
    models"; {!Relational} covers the latter, this module the former.  The
    result is a classic (Chen-style) ER model with min/max cardinalities:

    - interfaces become entity types (ISA links become subtype links of an
      ER generalization);
    - single-valued attributes become entity attributes; collection-valued
      attributes become multivalued attributes;
    - a relationship pair becomes one ER relationship type with a
      cardinality at each end: [(0,1)] for a to-one end, [(0,N)] for a
      collection end — part-of and instance-of ends carry [(1,1)] on the
      part / instance side (a part cannot exist without its whole);
    - declared keys become ER key attributes;
    - operations have no ER counterpart and are dropped (the ER model is
      structural), counted in the translation report. *)

open Odl.Types
module Schema = Odl.Schema

type cardinality = { c_min : int; c_max : int option  (** [None] = N *) }

let card_to_string c =
  Printf.sprintf "(%d,%s)" c.c_min
    (match c.c_max with Some n -> string_of_int n | None -> "N")

type er_attribute = {
  ea_name : string;
  ea_multivalued : bool;
  ea_key : bool;
}

type entity = {
  e_name : string;
  e_supertypes : string list;
  e_attributes : er_attribute list;
}

type rel_kind = Er_association | Er_aggregation | Er_instantiation

type er_relationship = {
  er_name : string;  (** derived from the traversal path pair *)
  er_kind : rel_kind;
  er_left : string * cardinality;  (** entity, participation *)
  er_right : string * cardinality;
  er_left_role : string;  (** traversal path from left to right *)
  er_right_role : string;
}

type model = {
  m_name : string;
  m_entities : entity list;
  m_relationships : er_relationship list;
  m_dropped_operations : int;
}

let entity_of schema (i : interface) =
  let key_attrs = List.concat i.i_keys in
  ignore schema;
  {
    e_name = i.i_name;
    e_supertypes = i.i_supertypes;
    e_attributes =
      List.map
        (fun a ->
          {
            ea_name = a.attr_name;
            ea_multivalued =
              (match a.attr_type with D_collection _ -> true | _ -> false);
            ea_key = List.mem a.attr_name key_attrs;
          })
        i.i_attrs;
  }

(* participation of one end, seen from the opposite side's declaration *)
let end_cardinality (r : relationship) =
  match (r.rel_kind, r.rel_card) with
  | _, Some _ -> { c_min = 0; c_max = None }
  | Association, None -> { c_min = 0; c_max = Some 1 }
  | (Part_of | Instance_of), None -> { c_min = 1; c_max = Some 1 }

let er_kind_of = function
  | Association -> Er_association
  | Part_of -> Er_aggregation
  | Instance_of -> Er_instantiation

(* one ER relationship per pair: emitted from the canonical end *)
let canonical schema (i : interface) (r : relationship) =
  match Schema.inverse_of schema r with
  | None -> true
  | Some _ -> (i.i_name, r.rel_name) <= (r.rel_target, r.rel_inverse)

let relationship_of schema (i : interface) (r : relationship) =
  let inv_card =
    match Schema.inverse_of schema r with
    | Some (_, inv) -> end_cardinality inv
    | None -> { c_min = 0; c_max = Some 1 }
  in
  {
    er_name = r.rel_name ^ "_" ^ r.rel_inverse;
    er_kind = er_kind_of r.rel_kind;
    (* the left end's participation is constrained by how the right side
       refers to it, and vice versa *)
    er_left = (i.i_name, end_cardinality r);
    er_right = (r.rel_target, inv_card);
    er_left_role = r.rel_name;
    er_right_role = r.rel_inverse;
  }

(** Translate a schema to an ER model. *)
let of_schema schema =
  let entities = List.map (entity_of schema) schema.s_interfaces in
  let relationships =
    schema.s_interfaces
    |> List.concat_map (fun i ->
           i.i_rels
           |> List.filter (canonical schema i)
           |> List.map (relationship_of schema i))
  in
  let dropped =
    List.fold_left (fun acc i -> acc + List.length i.i_ops) 0 schema.s_interfaces
  in
  {
    m_name = schema.s_name;
    m_entities = entities;
    m_relationships = relationships;
    m_dropped_operations = dropped;
  }

(* --- rendering ----------------------------------------------------------- *)

let attribute_to_string a =
  Printf.sprintf "%s%s%s"
    (if a.ea_key then "_" ^ a.ea_name ^ "_" else a.ea_name)
    (if a.ea_multivalued then " {multivalued}" else "")
    ""

let kind_label = function
  | Er_association -> ""
  | Er_aggregation -> " <<part-of>>"
  | Er_instantiation -> " <<instance-of>>"

(** Deterministic text rendering of the ER model (key attributes are
    underlined as [_name_], as is conventional in plain-text ER). *)
let to_string m =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "ER model %s" m.m_name;
  add "";
  add "entities:";
  List.iter
    (fun e ->
      add "  %s%s" e.e_name
        (if e.e_supertypes = [] then ""
         else " ISA " ^ String.concat ", " e.e_supertypes);
      List.iter (fun a -> add "    %s" (attribute_to_string a)) e.e_attributes)
    m.m_entities;
  add "";
  add "relationship types:";
  List.iter
    (fun r ->
      let l_name, l_card = r.er_left and r_name, r_card = r.er_right in
      add "  %s%s: %s %s --[%s/%s]-- %s %s" r.er_name (kind_label r.er_kind)
        l_name (card_to_string l_card) r.er_left_role r.er_right_role
        (card_to_string r_card) r_name)
    m.m_relationships;
  if m.m_dropped_operations > 0 then begin
    add "";
    add "note: %d operation(s) have no ER counterpart and were dropped"
      m.m_dropped_operations
  end;
  Buffer.contents buf

(** ER counts: (entities, relationship types, attributes). *)
let summary m =
  ( List.length m.m_entities,
    List.length m.m_relationships,
    List.fold_left (fun acc e -> acc + List.length e.e_attributes) 0 m.m_entities
  )
