(** The paper's Table 1: which modification operations are admissible in
    which concept schema type.  See the implementation header for the policy
    summary. *)

val wagon_wheel_ops : string list
val generalization_ops : string list
val aggregation_ops : string list
val instance_chain_ops : string list

val ops_for : Concept.kind -> string list
(** Operation keywords admissible in the given concept schema type. *)

val all_op_names : string list
(** Every operation keyword of the modification language, in Appendix-A
    order. *)

val allowed_name : Concept.kind -> string -> bool

val homes : string -> Concept.kind list
(** The concept schema types that admit the given operation keyword. *)

val allowed : Concept.kind -> Modop.t -> (unit, string) result
(** [Ok ()] when admissible; [Error reason] names the concept schema type
    where the operation belongs. *)
