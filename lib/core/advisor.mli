(** Remedial suggestions after a rejected operation (paper section 5: using
    constraint analysis to suggest the operations that need to be altered).

    Suggestions include: the concept schema type the operation belongs in,
    near-miss name corrections ("did you mean"), prerequisite additions,
    current values for stale modifications, and legal move destinations. *)

val edit_distance : string -> string -> int
(** Levenshtein distance. *)

val near_misses : string -> string list -> string list
(** Candidates within edit distance 2, nearest first. *)

val suggest :
  original:Odl.Types.schema ->
  Odl.Types.schema ->
  Concept.kind ->
  Modop.t ->
  Apply.error ->
  string list
(** Best-effort suggestions; empty when the advisor has nothing to offer. *)

val correct_stale : Odl.Types.schema -> Modop.t -> Modop.t option
(** Rewrite a stale modify operation so its old-value argument matches the
    workspace; [None] when the operation carries no old value or the
    construct cannot be found. *)

val repair_plan :
  original:Odl.Types.schema ->
  Odl.Types.schema ->
  Concept.kind ->
  Modop.t ->
  (Concept.kind * Modop.t) list option
(** Turn a rejected operation into a short {e verified} plan — prerequisite
    operations followed by (a possibly corrected form of) the operation —
    such that the whole plan applies cleanly.  [None] when no plan is
    found. *)

val suggest_text :
  original:Odl.Types.schema ->
  Odl.Types.schema ->
  Concept.kind ->
  Modop.t ->
  Apply.error ->
  string list
(** {!suggest} with a ["suggestion: "] prefix per line. *)
