(** Small string utilities used across the core library. *)

(** [contains haystack needle] — substring search. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec go i =
      if i + nn > nh then false
      else if String.sub haystack i nn = needle then true
      else go (i + 1)
    in
    go 0

(** [starts_with prefix s] *)
let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix
