(** Printer for the modification language.  Output parses back through
    {!Op_parser.parse} to the same operation (tested by property). *)

val pp : Format.formatter -> Modop.t -> unit
val to_string : Modop.t -> string

val pp_log : Format.formatter -> Modop.t list -> unit
(** One operation per line. *)
