(** Small string utilities used across the core library. *)

val contains : string -> string -> bool
(** [contains haystack needle] — substring search. *)

val starts_with : prefix:string -> string -> bool
