(** Propagation rules of the knowledge component.

    After the primary effect of an operation, the workspace may contain
    constructs referring to things that no longer exist.  [repair] applies
    the propagation rules to a fixpoint:

    + supertype references to missing interfaces are dropped;
    + relationships whose target or inverse end is gone are removed;
    + attributes whose domain names a missing type are removed;
    + operations whose signature names a missing type are removed;
    + keys naming attributes no longer visible are dropped;
    + order-by entries naming attributes not visible on the relationship
      target are pruned. *)

module Make (V : Schema_view.S) : sig
  val repair_from :
    V.t -> touched:Odl.Types.type_name list -> V.t * Change.event list
  (** Apply the propagation rules to a fixpoint, examining only interfaces
      that may react to a change of the [touched] ones (per
      [V.affected_by]).  On a workspace that was rule-closed before the
      [touched] interfaces changed, this emits exactly the events a full
      scan would, in the same order. *)
end

val repair : Odl.Types.schema -> Odl.Types.schema * Change.event list
(** The repaired schema and the propagated change events (the material of
    the impact report).  The event list is empty iff the schema was already
    closed under the rules.  Equivalent to [Make(Schema_view.Naive)] with
    every interface touched. *)
