(** Propagation rules of the knowledge component.

    After the primary effect of an operation, the workspace may contain
    constructs referring to things that no longer exist.  [repair] applies
    the propagation rules to a fixpoint:

    + supertype references to missing interfaces are dropped;
    + relationships whose target or inverse end is gone are removed;
    + attributes whose domain names a missing type are removed;
    + operations whose signature names a missing type are removed;
    + keys naming attributes no longer visible are dropped;
    + order-by entries naming attributes not visible on the relationship
      target are pruned. *)

val repair : Odl.Types.schema -> Odl.Types.schema * Change.event list
(** The repaired schema and the propagated change events (the material of
    the impact report).  The event list is empty iff the schema was already
    closed under the rules. *)
