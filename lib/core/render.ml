(** Text rendering of concept schemas and schema graphs — the executable
    counterpart of the paper's figures.

    The renderings are deterministic so that tests can assert on them, and
    informative enough to stand in for the OMT diagrams: a wagon wheel lists
    its spokes, hierarchies render as indented trees, and the object-type
    graph rendering used for the ACEDB family lists every interface with its
    outgoing links. *)

open Odl.Types
module Schema = Odl.Schema

let card_suffix = function
  | None -> ""
  | Some k -> Printf.sprintf " [%s]" (collection_kind_name k)

let spoke_label (r : relationship) =
  let kind =
    match role_of_relationship r with
    | Assoc_end -> ""
    | Whole_end -> "(has-part) "
    | Part_end -> "(part-of) "
    | Generic_end -> "(has-instance) "
    | Instance_end -> "(instance-of) "
  in
  Printf.sprintf "%s%s --> %s%s" kind r.rel_name r.rel_target (card_suffix r.rel_card)

let render_attr (a : attribute) =
  let size = match a.attr_size with Some n -> Printf.sprintf "<%d>" n | None -> "" in
  Printf.sprintf "%s : %s%s" a.attr_name
    (Fmt.str "%a" Odl.Printer.pp_domain a.attr_type)
    size

let render_op (o : operation) =
  Printf.sprintf "%s(%s) : %s" o.op_name
    (String.concat ", "
       (List.map
          (fun a -> Fmt.str "%a %s" Odl.Printer.pp_domain a.arg_type a.arg_name)
          o.op_args))
    (Fmt.str "%a" Odl.Printer.pp_domain o.op_return)

(** Figure-3 style: the focal object type with its attribute, operation, and
    relationship spokes, incoming spokes last. *)
let wagon_wheel schema (c : Concept.t) =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let i = Schema.get_interface schema c.c_focus in
  add "wagon wheel: %s" c.c_focus;
  if i.i_supertypes <> [] then add "  isa: %s" (String.concat ", " i.i_supertypes);
  let subs = Schema.direct_subtypes schema c.c_focus in
  if subs <> [] then add "  subtypes: %s" (String.concat ", " subs);
  List.iter (fun a -> add "  attr  %s" (render_attr a)) i.i_attrs;
  List.iter (fun o -> add "  op    %s" (render_op o)) i.i_ops;
  List.iter (fun r -> add "  rel   %s" (spoke_label r)) i.i_rels;
  c.c_edges
  |> List.filter (fun (owner, _) -> not (String.equal owner c.c_focus))
  |> List.iter (fun (owner, path) ->
         match Schema.find_interface schema owner with
         | None -> ()
         | Some oi -> (
             match Schema.find_rel oi path with
             | None -> ()
             | Some r ->
                 add "  rel   %s <-- %s.%s%s"
                   (match role_of_relationship r with
                   | Assoc_end -> ""
                   | Whole_end -> "(part of) "
                   | Part_end -> "(whole of) "
                   | Generic_end -> "(instance of) "
                   | Instance_end -> "(generic of) ")
                   owner path (card_suffix r.rel_card)));
  Buffer.contents buf

(* Indented tree under [root] following [children]; cycle-safe. *)
let tree children root =
  let buf = Buffer.create 256 in
  let rec go depth visited n =
    Buffer.add_string buf (String.make (depth * 2) ' ' ^ n ^ "\n");
    if not (List.mem n visited) then
      List.iter (go (depth + 1) (n :: visited)) (children n)
  in
  go 0 [] root;
  Buffer.contents buf

(** Figure-4 style: an ISA tree. *)
let generalization schema (c : Concept.t) =
  "generalization hierarchy: " ^ c.c_focus ^ "\n"
  ^ tree
      (fun n ->
        Schema.direct_subtypes schema n
        |> List.filter (fun s -> Concept.mem_type c s))
      c.c_focus

(** Figure-5 style: a parts explosion. *)
let aggregation schema (c : Concept.t) =
  "aggregation hierarchy: " ^ c.c_focus ^ "\n"
  ^ tree
      (fun n ->
        match Schema.find_interface schema n with
        | None -> []
        | Some i ->
            i.i_rels
            |> List.filter (fun r ->
                   role_of_relationship r = Whole_end
                   && Concept.mem_edge c n r.rel_name)
            |> List.map (fun r -> r.rel_target))
      c.c_focus

(** Figure-6 style: an instance-of chain, arrows downward. *)
let instance_chain schema (c : Concept.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf ("instance-of hierarchy: " ^ c.c_focus ^ "\n");
  let rec go visited n =
    if not (List.mem n visited) then begin
      Buffer.add_string buf ("  " ^ n ^ "\n");
      match Schema.find_interface schema n with
      | None -> ()
      | Some i ->
          i.i_rels
          |> List.filter (fun r ->
                 role_of_relationship r = Generic_end
                 && Concept.mem_edge c n r.rel_name)
          |> List.iter (fun r ->
                 Buffer.add_string buf
                   (Printf.sprintf "    | instance-of (%s)\n    v\n" r.rel_name);
                 go (n :: visited) r.rel_target)
    end
  in
  go [] c.c_focus;
  Buffer.contents buf

(** Render any concept schema according to its kind. *)
let concept schema (c : Concept.t) =
  match c.c_kind with
  | Concept.Wagon_wheel -> wagon_wheel schema c
  | Concept.Generalization -> generalization schema c
  | Concept.Aggregation -> aggregation schema c
  | Concept.Instance_chain -> instance_chain schema c

(** Figure-9/10/11 style: every object type with its outgoing relationship
    links — the view used to compare the ACEDB schema family. *)
let object_type_graph schema =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "object types of %s:" schema.s_name;
  List.iter
    (fun i ->
      add "  %s%s" i.i_name
        (if i.i_supertypes = [] then ""
         else " : " ^ String.concat ", " i.i_supertypes);
      List.iter (fun r -> add "    %s" (spoke_label r)) i.i_rels)
    schema.s_interfaces;
  Buffer.contents buf

(** A one-line inventory of a schema, used in reports. *)
let summary schema =
  let a, r, o = Schema.count_constructs schema in
  Printf.sprintf "%s: %d object types, %d attributes, %d relationship ends, %d operations"
    schema.s_name
    (List.length schema.s_interfaces)
    a r o
