(** The semantic correspondence between the shrink wrap schema and the
    customized schema.

    Under the paper's assumptions — name equivalence, uniqueness, and
    entity / relationship / attribute / method stability — the mapping can be
    computed structurally: a construct of the shrink wrap schema either
    appears in the custom schema under the same name (possibly modified in
    place, possibly relocated along its ISA line), or it was deleted.
    Constructs of the custom schema with no shrink-wrap counterpart were
    added by the designer. *)

open Odl.Types
module Schema = Odl.Schema

type status =
  | Preserved
  | Modified of string list  (** which aspects changed *)
  | Moved of type_name  (** now resides on the named interface *)
  | Moved_and_modified of type_name * string list
  | Deleted
[@@deriving show, eq]

type entry = {
  m_construct : Change.construct;  (** located in the shrink wrap schema *)
  m_status : status;
}
[@@deriving show, eq]

type t = {
  entries : entry list;  (** one per shrink-wrap construct *)
  added : Change.construct list;  (** designer additions, custom side *)
}
[@@deriving show, eq]

let diff_interface_props (o : interface) (c : interface) =
  List.concat
    [
      (if List.sort compare o.i_supertypes <> List.sort compare c.i_supertypes
       then [ "supertypes" ]
       else []);
      (if o.i_extent <> c.i_extent then [ "extent" ] else []);
      (if List.sort compare o.i_keys <> List.sort compare c.i_keys then [ "keys" ]
       else []);
    ]

let diff_attr (o : attribute) (c : attribute) =
  List.concat
    [
      (if not (equal_domain_type o.attr_type c.attr_type) then [ "type" ] else []);
      (if o.attr_size <> c.attr_size then [ "size" ] else []);
    ]

let diff_rel (o : relationship) (c : relationship) =
  List.concat
    [
      (if not (String.equal o.rel_target c.rel_target) then [ "target type" ]
       else []);
      (if o.rel_card <> c.rel_card then [ "cardinality" ] else []);
      (if o.rel_order_by <> c.rel_order_by then [ "order_by" ] else []);
      (if not (String.equal o.rel_inverse c.rel_inverse) then [ "inverse" ]
       else []);
    ]

let diff_op (o : operation) (c : operation) =
  List.concat
    [
      (if not (equal_domain_type o.op_return c.op_return) then [ "return type" ]
       else []);
      (if o.op_args <> c.op_args then [ "arguments" ] else []);
      (if o.op_raises <> c.op_raises then [ "exceptions" ] else []);
    ]

let status_of ~moved_to diffs =
  match (moved_to, diffs) with
  | None, [] -> Preserved
  | None, ds -> Modified ds
  | Some t, [] -> Moved t
  | Some t, ds -> Moved_and_modified (t, ds)

(* Find where a named member construct of [owner] ended up in [custom]: on
   [owner] itself, or relocated along [owner]'s ISA line (the only moves the
   operations permit). *)
let locate custom owner find_member =
  match Schema.find_interface custom owner with
  | Some i when Option.is_some (find_member i) ->
      Option.map (fun m -> (None, m)) (find_member i)
  | _ ->
      let line =
        Schema.ancestors custom owner @ Schema.descendants custom owner
      in
      List.find_map
        (fun n ->
          match Schema.find_interface custom n with
          | None -> None
          | Some i ->
              Option.map (fun m -> (Some n, m)) (find_member i))
        line

(** [compute ~original ~custom] derives the full mapping. *)
let compute ~original ~custom =
  let entry c s = { m_construct = c; m_status = s } in
  let interface_entries o =
    match Schema.find_interface custom o.i_name with
    | None -> [ entry (Change.C_interface o.i_name) Deleted ]
    | Some c -> (
        match diff_interface_props o c with
        | [] -> [ entry (Change.C_interface o.i_name) Preserved ]
        | ds -> [ entry (Change.C_interface o.i_name) (Modified ds) ])
  in
  let attr_entries o =
    o.i_attrs
    |> List.map (fun a ->
           let construct = Change.C_attribute (o.i_name, a.attr_name) in
           match locate custom o.i_name (fun i -> Schema.find_attr i a.attr_name) with
           | None -> entry construct Deleted
           | Some (moved_to, found) ->
               entry construct (status_of ~moved_to (diff_attr a found)))
  in
  let rel_entries o =
    o.i_rels
    |> List.map (fun r ->
           let construct = Change.C_relationship (o.i_name, r.rel_name) in
           match locate custom o.i_name (fun i -> Schema.find_rel i r.rel_name) with
           | None -> entry construct Deleted
           | Some (moved_to, found) ->
               entry construct (status_of ~moved_to (diff_rel r found)))
  in
  let op_entries o =
    o.i_ops
    |> List.map (fun op ->
           let construct = Change.C_operation (o.i_name, op.op_name) in
           match locate custom o.i_name (fun i -> Schema.find_op i op.op_name) with
           | None -> entry construct Deleted
           | Some (moved_to, found) ->
               entry construct (status_of ~moved_to (diff_op op found)))
  in
  let entries =
    original.s_interfaces
    |> List.concat_map (fun o ->
           interface_entries o @ attr_entries o @ rel_entries o @ op_entries o)
  in
  (* additions: custom constructs with no shrink-wrap counterpart anywhere on
     their ISA line *)
  let original_has owner find_member =
    Option.is_some (locate original owner find_member)
    ||
    match Schema.find_interface original owner with
    | Some i -> Option.is_some (find_member i)
    | None -> false
  in
  let added =
    custom.s_interfaces
    |> List.concat_map (fun c ->
           let iface =
             if Schema.mem_interface original c.i_name then []
             else [ Change.C_interface c.i_name ]
           in
           let attrs =
             c.i_attrs
             |> List.filter_map (fun a ->
                    if
                      original_has c.i_name (fun i ->
                          Schema.find_attr i a.attr_name)
                    then None
                    else Some (Change.C_attribute (c.i_name, a.attr_name)))
           in
           let rels =
             c.i_rels
             |> List.filter_map (fun r ->
                    if
                      original_has c.i_name (fun i -> Schema.find_rel i r.rel_name)
                    then None
                    else Some (Change.C_relationship (c.i_name, r.rel_name)))
           in
           let ops =
             c.i_ops
             |> List.filter_map (fun op ->
                    if original_has c.i_name (fun i -> Schema.find_op i op.op_name)
                    then None
                    else Some (Change.C_operation (c.i_name, op.op_name)))
           in
           iface @ attrs @ rels @ ops)
  in
  { entries; added }

let status_to_string = function
  | Preserved -> "preserved"
  | Modified ds -> "modified (" ^ String.concat ", " ds ^ ")"
  | Moved t -> "moved to " ^ t
  | Moved_and_modified (t, ds) ->
      Printf.sprintf "moved to %s and modified (%s)" t (String.concat ", " ds)
  | Deleted -> "deleted"

let pp_entry ppf e =
  Fmt.pf ppf "%s: %s"
    (Change.construct_to_string e.m_construct)
    (status_to_string e.m_status)

let pp ppf m =
  Fmt.pf ppf "@[<v>";
  List.iter (fun e -> Fmt.pf ppf "%a@," pp_entry e) m.entries;
  List.iter
    (fun c -> Fmt.pf ppf "%s: added by designer@," (Change.construct_to_string c))
    m.added;
  Fmt.pf ppf "@]"

(** Counts by status: (preserved, modified, moved, deleted, added). *)
let summary m =
  let p, md, mv, d =
    List.fold_left
      (fun (p, md, mv, d) e ->
        match e.m_status with
        | Preserved -> (p + 1, md, mv, d)
        | Modified _ -> (p, md + 1, mv, d)
        | Moved _ | Moved_and_modified _ -> (p, md, mv + 1, d)
        | Deleted -> (p, md, mv, d + 1))
      (0, 0, 0, 0) m.entries
  in
  (p, md, mv, d, List.length m.added)
