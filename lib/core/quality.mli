(** Schema quality assessment: advisory heuristics supporting the paper's
    premise of a well-crafted shrink wrap schema ("schema quality ... can be
    improved by revising the representation over time as it is employed and
    reviewed").  Orthogonal to validity: a valid schema can score poorly. *)

type finding = {
  q_heuristic : string;  (** short identifier, e.g. ["isolated-type"] *)
  q_subject : string;
  q_advice : string;
}

val to_string : finding -> string

val heuristics : (string * string) list
(** The heuristic catalog: identifier and one-line rationale. *)

val assess : Odl.Types.schema -> finding list

val score : Odl.Types.schema -> int
(** Craft score in [0, 100]; 100 = no findings. *)

val report : Odl.Types.schema -> string
