(** Schema differencing: infer a modification-operation log that transforms
    one schema into another.

    This inverts the customization process: where {!Apply} turns a log into
    a custom schema, [infer] turns a hand-crafted custom schema back into a
    log over the shrink wrap schema — useful to retrofit the paper's
    machinery onto customizations performed manually (like the historical
    ACEDB family), and to audit what a custom schema changed.

    Inference works under the paper's assumptions: name equivalence (a
    same-named construct is the same construct) and semantic stability (a
    same-named member found elsewhere on the ISA line was moved).  Every
    emitted operation is applied to a working copy as it is generated, so
    the result is replayable by construction; [infer] returns the log
    together with the final workspace (equal in content to the target
    whenever the target is expressible, which the tests assert). *)

open Odl.Types
module Schema = Odl.Schema

type step = Concept.kind * Modop.t

(* Choose the concept schema type an operation is issued from: its first
   permission home. *)
let home op =
  match Permission.homes (Modop.name op) with
  | k :: _ -> k
  | [] -> Concept.Wagon_wheel

(* The generation state: ops are applied as emitted so later decisions see
   the cascades of earlier ones. *)
type state = {
  original : schema;
  mutable work : schema;
  mutable steps : step list;  (* reversed *)
}

let emit st op =
  let kind = home op in
  match Apply.apply ~original:st.original ~kind st.work op with
  | Ok (work, _) ->
      st.work <- work;
      st.steps <- (kind, op) :: st.steps;
      true
  | Error _ -> false

(* --- phase 1: type definitions ------------------------------------------ *)

let diff_types st target =
  (* deletions first: their cascades clean up dangling references *)
  Schema.interface_names st.work
  |> List.iter (fun n ->
         if not (Schema.mem_interface target n) then
           ignore (emit st (Modop.Delete_type_definition n)));
  Schema.interface_names target
  |> List.iter (fun n ->
         if not (Schema.mem_interface st.work n) then
           ignore (emit st (Modop.Add_type_definition n)))

(* --- phase 2: supertypes -------------------------------------------------- *)

let diff_supertypes st target =
  target.s_interfaces
  |> List.iter (fun ti ->
         match Schema.find_interface st.work ti.i_name with
         | None -> ()
         | Some wi ->
             let ws = List.sort compare wi.i_supertypes in
             let ts = List.sort compare ti.i_supertypes in
             if ws <> ts then
               ignore
                 (emit st
                    (Modop.Modify_supertype (ti.i_name, wi.i_supertypes, ti.i_supertypes))))

(* --- phase 3: attributes -------------------------------------------------- *)

let find_attr_on_line schema owner name =
  let line = owner :: (Schema.ancestors schema owner @ Schema.descendants schema owner) in
  List.find_map
    (fun n ->
      match Schema.find_interface schema n with
      | None -> None
      | Some i -> Option.map (fun a -> (n, a)) (Schema.find_attr i name))
    line

let diff_attr_in_place st owner (wa : attribute) (ta : attribute) =
  if not (equal_domain_type wa.attr_type ta.attr_type) then
    ignore
      (emit st (Modop.Modify_attribute_type (owner, wa.attr_name, wa.attr_type, ta.attr_type)));
  if wa.attr_size <> ta.attr_size then
    ignore
      (emit st (Modop.Modify_attribute_size (owner, wa.attr_name, wa.attr_size, ta.attr_size)))

let diff_attributes st target =
  (* for every attribute in the workspace: keep, move, retype, or delete *)
  st.work.s_interfaces
  |> List.iter (fun wi ->
         wi.i_attrs
         |> List.iter (fun wa ->
                match Schema.find_interface target wi.i_name with
                | Some ti when Schema.has_attr ti wa.attr_name ->
                    diff_attr_in_place st wi.i_name wa
                      (Option.get (Schema.find_attr ti wa.attr_name))
                | _ -> (
                    (* not on the same interface in the target: moved? *)
                    match find_attr_on_line target wi.i_name wa.attr_name with
                    | Some (dest, ta) ->
                        if emit st (Modop.Modify_attribute (wi.i_name, wa.attr_name, dest))
                        then diff_attr_in_place st dest wa ta
                        else
                          ignore
                            (emit st (Modop.Delete_attribute (wi.i_name, wa.attr_name)))
                    | None ->
                        ignore
                          (emit st (Modop.Delete_attribute (wi.i_name, wa.attr_name))))));
  (* target attributes with no workspace counterpart: additions *)
  target.s_interfaces
  |> List.iter (fun ti ->
         ti.i_attrs
         |> List.iter (fun ta ->
                let present =
                  match Schema.find_interface st.work ti.i_name with
                  | Some wi -> Schema.has_attr wi ta.attr_name
                  | None -> false
                in
                if not present then
                  ignore
                    (emit st
                       (Modop.Add_attribute
                          (ti.i_name, ta.attr_type, ta.attr_size, ta.attr_name)))))

(* --- phase 4: operations -------------------------------------------------- *)

let find_op_on_line schema owner name =
  let line = owner :: (Schema.ancestors schema owner @ Schema.descendants schema owner) in
  List.find_map
    (fun n ->
      match Schema.find_interface schema n with
      | None -> None
      | Some i -> Option.map (fun o -> (n, o)) (Schema.find_op i name))
    line

let diff_op_in_place st owner (wo : operation) (to_ : operation) =
  if not (equal_domain_type wo.op_return to_.op_return) then
    ignore
      (emit st
         (Modop.Modify_operation_return_type (owner, wo.op_name, wo.op_return, to_.op_return)));
  if wo.op_args <> to_.op_args then
    ignore
      (emit st (Modop.Modify_operation_arg_list (owner, wo.op_name, wo.op_args, to_.op_args)));
  if wo.op_raises <> to_.op_raises then
    ignore
      (emit st
         (Modop.Modify_operation_exceptions_raised
            (owner, wo.op_name, wo.op_raises, to_.op_raises)))

let diff_operations st target =
  st.work.s_interfaces
  |> List.iter (fun wi ->
         wi.i_ops
         |> List.iter (fun wo ->
                match Schema.find_interface target wi.i_name with
                | Some ti when Schema.has_op ti wo.op_name ->
                    diff_op_in_place st wi.i_name wo
                      (Option.get (Schema.find_op ti wo.op_name))
                | _ -> (
                    match find_op_on_line target wi.i_name wo.op_name with
                    | Some (dest, to_) ->
                        if emit st (Modop.Modify_operation (wi.i_name, wo.op_name, dest))
                        then diff_op_in_place st dest wo to_
                        else
                          ignore (emit st (Modop.Delete_operation (wi.i_name, wo.op_name)))
                    | None ->
                        ignore (emit st (Modop.Delete_operation (wi.i_name, wo.op_name))))));
  target.s_interfaces
  |> List.iter (fun ti ->
         ti.i_ops
         |> List.iter (fun to_ ->
                let present =
                  match Schema.find_interface st.work ti.i_name with
                  | Some wi -> Schema.has_op wi to_.op_name
                  | None -> false
                in
                if not present then
                  ignore
                    (emit st
                       (Modop.Add_operation
                          (ti.i_name, to_.op_return, to_.op_name, to_.op_args, to_.op_raises)))))

(* --- phase 5: relationships ----------------------------------------------- *)

(* A relationship pair, canonically ordered by (owner, path). *)
let pair_key (owner, path) (target, inverse) =
  if (owner, path) <= (target, inverse) then ((owner, path), (target, inverse))
  else ((target, inverse), (owner, path))

let pairs_of schema =
  schema.s_interfaces
  |> List.concat_map (fun i ->
         List.map (fun r -> (pair_key (i.i_name, r.rel_name) (r.rel_target, r.rel_inverse), (i.i_name, r))) i.i_rels)
  |> List.sort_uniq (fun (k1, _) (k2, _) -> compare k1 k2)

let delete_op kind owner path =
  match kind with
  | Association -> Modop.Delete_relationship (owner, path)
  | Part_of -> Modop.Delete_part_of_relationship (owner, path)
  | Instance_of -> Modop.Delete_instance_of_relationship (owner, path)

let add_op kind (owner, (r : relationship)) =
  let ar =
    {
      Modop.ar_owner = owner;
      ar_target = r.rel_target;
      ar_card = r.rel_card;
      ar_name = r.rel_name;
      ar_inverse = r.rel_inverse;
      ar_order_by = r.rel_order_by;
    }
  in
  match kind with
  | Association -> Modop.Add_relationship ar
  | Part_of -> Modop.Add_part_of_relationship ar
  | Instance_of -> Modop.Add_instance_of_relationship ar

let target_type_op kind owner path old_t new_t =
  match kind with
  | Association -> Modop.Modify_relationship_target_type (owner, path, old_t, new_t)
  | Part_of -> Modop.Modify_part_of_target_type (owner, path, old_t, new_t)
  | Instance_of -> Modop.Modify_instance_of_target_type (owner, path, old_t, new_t)

let order_by_op kind owner path old_l new_l =
  match kind with
  | Association -> Modop.Modify_relationship_order_by (owner, path, old_l, new_l)
  | Part_of -> Modop.Modify_part_of_order_by (owner, path, old_l, new_l)
  | Instance_of -> Modop.Modify_instance_of_order_by (owner, path, old_l, new_l)

(* align the card / order_by of one end with the target's declaration *)
let align_end st (owner, (wr : relationship)) (tr : relationship) =
  (if wr.rel_card <> tr.rel_card then
     match wr.rel_kind with
     | Association ->
         ignore
           (emit st
              (Modop.Modify_relationship_cardinality
                 (owner, wr.rel_name, wr.rel_card, tr.rel_card)))
     | Part_of | Instance_of -> (
         (* 1:N shape is fixed; only the collection kind can change *)
         match (wr.rel_card, tr.rel_card) with
         | Some ok, Some nk when ok <> nk ->
             let op =
               match wr.rel_kind with
               | Part_of -> Modop.Modify_part_of_cardinality (owner, wr.rel_name, ok, nk)
               | _ -> Modop.Modify_instance_of_cardinality (owner, wr.rel_name, ok, nk)
             in
             ignore (emit st op)
         | _ -> ()));
  if wr.rel_order_by <> tr.rel_order_by then
    ignore
      (emit st (order_by_op wr.rel_kind owner wr.rel_name wr.rel_order_by tr.rel_order_by))

(* the end of a pair to issue add/delete from: prefer the collection end so
   part-of and instance-of additions take their canonical form *)
let preferred_end schema ((o1, p1), (o2, p2)) =
  let lookup (o, p) =
    match Schema.find_interface schema o with
    | None -> None
    | Some i -> Option.map (fun r -> (o, r)) (Schema.find_rel i p)
  in
  match (lookup (o1, p1), lookup (o2, p2)) with
  | Some ((_, r1) as e1), Some e2 ->
      if r1.rel_card <> None then Some (e1, Some e2) else Some (e2, Some e1)
  | Some e1, None -> Some (e1, None)
  | None, Some e2 -> Some (e2, None)
  | None, None -> None

let find_rel_in schema owner path =
  match Schema.find_interface schema owner with
  | None -> None
  | Some i -> Schema.find_rel i path

let diff_relationships_phase1 st target =
  let work_pairs = pairs_of st.work in
  let target_pairs = pairs_of target in
  let target_has key = List.mem_assoc key target_pairs in
  (* deletions and moved targets *)
  work_pairs
  |> List.iter (fun (key, (owner, r)) ->
         if target_has key then ()
         else
           (* same owner and both path names, but the far owner moved along
              the ISA line? *)
           let moved =
             match find_rel_in target owner r.rel_name with
             | Some tr
               when String.equal tr.rel_inverse r.rel_inverse
                    && not (String.equal tr.rel_target r.rel_target) ->
                 emit st
                   (target_type_op r.rel_kind owner r.rel_name r.rel_target tr.rel_target)
             | _ -> false
           in
           if not moved then
             (* check the other end for a move issued from there *)
             let moved_other =
               match Schema.find_interface st.work r.rel_target with
               | None -> false
               | Some ti -> (
                   match Schema.find_rel ti r.rel_inverse with
                   | None -> false
                   | Some inv -> (
                       match find_rel_in target r.rel_target inv.rel_name with
                       | Some t_inv
                         when String.equal t_inv.rel_inverse inv.rel_inverse
                              && not (String.equal t_inv.rel_target inv.rel_target)
                         ->
                           emit st
                             (target_type_op inv.rel_kind r.rel_target inv.rel_name
                                inv.rel_target t_inv.rel_target)
                       | _ -> false))
             in
             if not moved_other then
               ignore (emit st (delete_op r.rel_kind owner r.rel_name)))

let diff_relationships st target =
  diff_relationships_phase1 st target;
  (* additions *)
  pairs_of target
  |> List.iter (fun (key, _) ->
         if not (List.mem_assoc key (pairs_of st.work)) then
           match preferred_end target key with
           | Some ((owner, r), _) -> ignore (emit st (add_op r.rel_kind (owner, r)))
           | None -> ());
  (* alignment of cardinalities and order-by, end by end (both ends of an
     association can differ from the add-time defaults) *)
  let ends =
    List.concat_map
      (fun i -> List.map (fun r -> (i.i_name, r)) i.i_rels)
      st.work.s_interfaces
  in
  ends
  |> List.iter (fun (owner, wr) ->
         match find_rel_in target owner wr.rel_name with
         | Some tr when String.equal tr.rel_target wr.rel_target ->
             align_end st (owner, wr) tr
         | _ -> ())

(* --- phase 6: extents and keys -------------------------------------------- *)

let diff_extents st target =
  target.s_interfaces
  |> List.iter (fun ti ->
         match Schema.find_interface st.work ti.i_name with
         | None -> ()
         | Some wi -> (
             match (wi.i_extent, ti.i_extent) with
             | None, Some e -> ignore (emit st (Modop.Add_extent_name (ti.i_name, e)))
             | Some e, None -> ignore (emit st (Modop.Delete_extent_name (ti.i_name, e)))
             | Some o, Some n when not (String.equal o n) ->
                 ignore (emit st (Modop.Modify_extent_name (ti.i_name, o, n)))
             | _ -> ()))

let diff_keys st target =
  target.s_interfaces
  |> List.iter (fun ti ->
         match Schema.find_interface st.work ti.i_name with
         | None -> ()
         | Some wi ->
             wi.i_keys
             |> List.iter (fun k ->
                    if not (List.mem k ti.i_keys) then
                      ignore (emit st (Modop.Delete_key_list (ti.i_name, k))));
             ti.i_keys
             |> List.iter (fun k ->
                    if not (List.mem k wi.i_keys) then
                      ignore (emit st (Modop.Add_key_list (ti.i_name, k)))))

(** [infer ~original ~target] computes a replayable operation log
    transforming [original] into (content-)equality with [target], together
    with the schema the log actually reaches and whether it fully converged. *)
let infer ~original ~target =
  let st = { original; work = original; steps = [] } in
  diff_types st target;
  diff_supertypes st target;
  diff_attributes st target;
  diff_operations st target;
  diff_relationships st target;
  diff_extents st target;
  diff_keys st target;
  let converged = Recompose.equal_content st.work target in
  (List.rev st.steps, st.work, converged)
