(** Schema affinity: quantifying how similar two schemas are.

    The paper's section 4 argues shrink wrap schema feasibility from the
    ACEDB family — three databases whose schemas share most object types by
    name.  This module turns that argument into numbers, following the
    name-based notion of {e semantic affinity} from the schema-reuse
    literature the paper builds on (Castano / De Antonellis): same-named
    constructs are assumed to mean the same thing, so similarity is measured
    over shared names, weighted by how similar the shared types' structures
    are.

    It also provides the structural {e descriptor} used to organize a schema
    library and to pick the best shrink wrap schema to start a design from. *)

open Odl.Types
module Schema = Odl.Schema

(* Dice coefficient over two string sets. *)
let dice xs ys =
  let xs = List.sort_uniq compare xs and ys = List.sort_uniq compare ys in
  match (xs, ys) with
  | [], [] -> 1.0
  | _ ->
      let shared = List.length (List.filter (fun x -> List.mem x ys) xs) in
      2.0 *. float_of_int shared
      /. float_of_int (List.length xs + List.length ys)

let member_names i =
  List.map (fun a -> "a:" ^ a.attr_name) i.i_attrs
  @ List.map (fun r -> "r:" ^ r.rel_name) i.i_rels
  @ List.map (fun o -> "o:" ^ o.op_name) i.i_ops
  @ List.map (fun s -> "s:" ^ s) i.i_supertypes

(** Structural similarity of two same-named interfaces: Dice coefficient over
    their member names (attributes, relationships, operations, supertypes,
    each in its own namespace). *)
let interface_similarity (a : interface) (b : interface) =
  dice (member_names a) (member_names b)

(** Object types shared by name. *)
let shared_types a b =
  List.filter (Schema.mem_interface b) (Schema.interface_names a)

(** Jaccard overlap of the object-type name sets. *)
let type_overlap a b =
  let na = Schema.interface_names a and nb = Schema.interface_names b in
  let union = List.sort_uniq compare (na @ nb) in
  if union = [] then 1.0
  else
    float_of_int (List.length (shared_types a b)) /. float_of_int (List.length union)

(** Semantic affinity of two schemas in [0, 1]: the type-name overlap scaled
    by the mean structural similarity of the shared types.  1.0 means
    name-identical schemas; 0.0 means no shared object type. *)
let semantic_affinity a b =
  match shared_types a b with
  | [] -> 0.0
  | shared ->
      let mean_sim =
        List.fold_left
          (fun acc n ->
            acc
            +. interface_similarity
                 (Schema.get_interface a n)
                 (Schema.get_interface b n))
          0.0 shared
        /. float_of_int (List.length shared)
      in
      type_overlap a b *. mean_sim

(** Per-shared-type similarity detail, most similar first. *)
let shared_type_detail a b =
  shared_types a b
  |> List.map (fun n ->
         (n, interface_similarity (Schema.get_interface a n) (Schema.get_interface b n)))
  |> List.sort (fun (_, x) (_, y) -> compare y x)

(* --- structural descriptors ---------------------------------------------- *)

(** The structural descriptor of a schema, used to characterize entries of a
    schema library. *)
type descriptor = {
  d_name : string;
  d_types : int;
  d_attrs : int;
  d_assocs : int;  (** association ends *)
  d_part_ofs : int;  (** part-of ends *)
  d_instance_ofs : int;  (** instance-of ends *)
  d_ops : int;
  d_isa_links : int;
  d_isa_depth : int;  (** longest ancestor chain *)
}

let descriptor schema =
  let count_kind k =
    Schema.all_relationships schema
    |> List.filter (fun (_, r) -> r.rel_kind = k)
    |> List.length
  in
  let a, _, o = Schema.count_constructs schema in
  let isa_links =
    List.fold_left
      (fun acc i -> acc + List.length i.i_supertypes)
      0 schema.s_interfaces
  in
  let depth =
    schema.s_interfaces
    |> List.map (fun i -> List.length (Schema.ancestors schema i.i_name))
    |> List.fold_left max 0
  in
  {
    d_name = schema.s_name;
    d_types = List.length schema.s_interfaces;
    d_attrs = a;
    d_assocs = count_kind Association;
    d_part_ofs = count_kind Part_of;
    d_instance_ofs = count_kind Instance_of;
    d_ops = o;
    d_isa_links = isa_links;
    d_isa_depth = depth;
  }

let descriptor_to_string d =
  Printf.sprintf
    "%s: %d types, %d attrs, %d assoc ends, %d part-of ends, %d instance-of \
     ends, %d ops, %d isa links (depth %d)"
    d.d_name d.d_types d.d_attrs d.d_assocs d.d_part_ofs d.d_instance_ofs d.d_ops
    d.d_isa_links d.d_isa_depth

(* --- library selection ---------------------------------------------------- *)

(** Rank [library] schemas by affinity to [sketch], best first — the designer
    asks "which shrink wrap schema should I start from?" with a rough sketch
    of the application. *)
let rank ~sketch library =
  library
  |> List.map (fun s -> (s, semantic_affinity sketch s))
  |> List.sort (fun (_, x) (_, y) -> compare y x)

(** The best starting point, if the library is nonempty. *)
let best ~sketch library =
  match rank ~sketch library with [] -> None | (s, a) :: _ -> Some (s, a)

(** Pairwise affinity matrix rendering for a family of schemas. *)
let matrix schemas =
  let width =
    List.fold_left (fun w s -> max w (String.length s.s_name + 2)) 10 schemas
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%-*s" width "");
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "%*s" width s.s_name))
    schemas;
  Buffer.add_char buf '\n';
  List.iter
    (fun a ->
      Buffer.add_string buf (Printf.sprintf "%-*s" width a.s_name);
      List.iter
        (fun b ->
          Buffer.add_string buf
            (Printf.sprintf "%*.3f" width (semantic_affinity a b)))
        schemas;
      Buffer.add_char buf '\n')
    schemas;
  Buffer.contents buf
