(** Printer for the modification language.  Output parses back through
    {!Op_parser.parse} to the same operation (tested by property). *)

open Odl.Types
open Modop

let pp_domain = Odl.Printer.pp_domain

(* every name position goes through [Names.to_source]: plain identifiers
   print as themselves, anything else (embedded newlines, spaces, a leading
   "//", ...) prints quoted and parses back to the same string *)
let name = Odl.Names.to_source
let pp_name ppf s = Fmt.string ppf (name s)

let pp_target_of_path ppf (target, card) =
  match card with
  | None -> pp_name ppf target
  | Some k -> Fmt.pf ppf "%s<%s>" (collection_kind_name k) (name target)

let pp_name_list ppf xs =
  Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp_name) xs

let pp_size ppf = function
  | None -> Fmt.string ppf "none"
  | Some n -> Fmt.int ppf n

let pp_arg ppf (a : argument) =
  Fmt.pf ppf "%a %a" pp_domain a.arg_type pp_name a.arg_name

let pp_arg_list ppf xs =
  Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp_arg) xs

let pp_card ppf = function
  | None -> Fmt.string ppf "one"
  | Some k -> Fmt.string ppf (collection_kind_name k)

let pp_add_rel keyword ppf ar =
  Fmt.pf ppf "%s(%s, %a, %s, %s" keyword (name ar.ar_owner) pp_target_of_path
    (ar.ar_target, ar.ar_card) (name ar.ar_name) (name ar.ar_inverse);
  if ar.ar_order_by <> [] then Fmt.pf ppf ", %a" pp_name_list ar.ar_order_by;
  Fmt.string ppf ")"

let pp ppf op =
  let kw = Modop.name op in
  let plain ppf args = Fmt.pf ppf "%s(%a)" kw Fmt.(list ~sep:(any ", ") pp_name) args in
  match op with
  | Add_type_definition n | Delete_type_definition n -> plain ppf [ n ]
  | Add_supertype (n, s) | Delete_supertype (n, s) -> plain ppf [ n; s ]
  | Modify_supertype (n, olds, news) ->
      Fmt.pf ppf "%s(%s, %a, %a)" kw (name n) pp_name_list olds pp_name_list news
  | Add_extent_name (n, e) | Delete_extent_name (n, e) -> plain ppf [ n; e ]
  | Modify_extent_name (n, o, w) -> plain ppf [ n; o; w ]
  | Add_key_list (n, k) | Delete_key_list (n, k) ->
      Fmt.pf ppf "%s(%s, %a)" kw (name n) pp_name_list k
  | Modify_key_list (n, o, w) ->
      Fmt.pf ppf "%s(%s, %a, %a)" kw (name n) pp_name_list o pp_name_list w
  | Add_attribute (n, d, size, a) ->
      Fmt.pf ppf "%s(%s, %a, %a, %s)" kw (name n) pp_domain d pp_size size (name a)
  | Delete_attribute (n, a) -> plain ppf [ n; a ]
  | Modify_attribute (n, a, n') -> plain ppf [ n; a; n' ]
  | Modify_attribute_type (n, a, o, w) ->
      Fmt.pf ppf "%s(%s, %s, %a, %a)" kw (name n) (name a) pp_domain o pp_domain w
  | Modify_attribute_size (n, a, o, w) ->
      Fmt.pf ppf "%s(%s, %s, %a, %a)" kw (name n) (name a) pp_size o pp_size w
  | Add_relationship ar -> pp_add_rel kw ppf ar
  | Delete_relationship (n, p) -> plain ppf [ n; p ]
  | Modify_relationship_target_type (n, p, o, w) -> plain ppf [ n; p; o; w ]
  | Modify_relationship_cardinality (n, p, o, w) ->
      (* carry the target implicitly: cardinalities print as target-of-paths
         with a placeholder target resolved at parse time *)
      Fmt.pf ppf "%s(%s, %s, %a, %a)" kw (name n) (name p) pp_card o pp_card w
  | Modify_relationship_order_by (n, p, o, w) ->
      Fmt.pf ppf "%s(%s, %s, %a, %a)" kw (name n) (name p) pp_name_list o pp_name_list w
  | Add_operation (n, ret, o, args, raises) ->
      Fmt.pf ppf "%s(%s, %a, %s, %a, %a)" kw (name n) pp_domain ret (name o)
        pp_arg_list args pp_name_list raises
  | Delete_operation (n, o) -> plain ppf [ n; o ]
  | Modify_operation (n, o, n') -> plain ppf [ n; o; n' ]
  | Modify_operation_return_type (n, o, ot, nt) ->
      Fmt.pf ppf "%s(%s, %s, %a, %a)" kw (name n) (name o) pp_domain ot pp_domain nt
  | Modify_operation_arg_list (n, o, oa, na) ->
      Fmt.pf ppf "%s(%s, %s, %a, %a)" kw (name n) (name o) pp_arg_list oa pp_arg_list na
  | Modify_operation_exceptions_raised (n, o, oe, ne) ->
      Fmt.pf ppf "%s(%s, %s, %a, %a)" kw (name n) (name o) pp_name_list oe pp_name_list ne
  | Add_part_of_relationship ar | Add_instance_of_relationship ar ->
      pp_add_rel kw ppf ar
  | Delete_part_of_relationship (n, p) | Delete_instance_of_relationship (n, p)
    -> plain ppf [ n; p ]
  | Modify_part_of_target_type (n, p, o, w)
  | Modify_instance_of_target_type (n, p, o, w) -> plain ppf [ n; p; o; w ]
  | Modify_part_of_cardinality (n, p, o, w)
  | Modify_instance_of_cardinality (n, p, o, w) ->
      Fmt.pf ppf "%s(%s, %s, %s, %s)" kw (name n) (name p)
        (collection_kind_name o) (collection_kind_name w)
  | Modify_part_of_order_by (n, p, o, w) | Modify_instance_of_order_by (n, p, o, w)
    -> Fmt.pf ppf "%s(%s, %s, %a, %a)" kw (name n) (name p) pp_name_list o pp_name_list w

let to_string op = Fmt.str "%a" pp op

let pp_log ppf ops = Fmt.(list ~sep:(any "@.") pp) ppf ops
