(** Graphviz (DOT) rendering of schemas and concept schemas, with the OMT
    conventions mapped onto Graphviz idioms: empty arrowheads for ISA,
    diamond tails for part-of, dashed edges for instance-of.  Output is
    deterministic. *)

val schema_graph : Odl.Types.schema -> string
(** The whole schema as a DOT digraph. *)

val concept_graph : Odl.Types.schema -> Concept.t -> string
(** One concept schema; the focal point is highlighted, and only the concept
    schema's members and edges appear. *)
