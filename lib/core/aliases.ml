(** Local names (paper section 5, proposed extension).

    Name equivalence forbids renaming constructs, but "database designers are
    very likely to want to introduce local names"; the paper sketches the
    extension: the user indicates a change of name and the system maintains
    the mapping from shrink wrap schema names to local names.  This module is
    that mapping.  Aliases are presentation-level: the workspace keeps the
    canonical names (so name equivalence and all machinery stand), and
    reports show the local names alongside. *)

open Odl.Types
module Schema = Odl.Schema

(** What can carry a local name. *)
type target =
  | For_interface of type_name
  | For_member of type_name * string
      (** attribute, relationship, or operation of an interface *)
[@@deriving show, eq, ord]

type binding = { target : target; local : string } [@@deriving show, eq]

type t = binding list

let empty : t = []

let bindings (t : t) = t

let target_to_string = function
  | For_interface n -> n
  | For_member (n, m) -> n ^ "." ^ m

(** Parse ["Person"] or ["Person.name"] into a target. *)
let target_of_string s =
  match String.index_opt s '.' with
  | None -> For_interface s
  | Some i ->
      For_member
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let find (t : t) target =
  List.find_opt (fun b -> equal_target b.target target) t

let local_of t target = Option.map (fun b -> b.local) (find t target)

(** The canonical targets currently known under [local]. *)
let targets_of_local (t : t) local =
  List.filter_map
    (fun b -> if String.equal b.local local then Some b.target else None)
    t

let target_exists schema = function
  | For_interface n -> Schema.mem_interface schema n
  | For_member (n, m) -> (
      match Schema.find_interface schema n with
      | None -> false
      | Some i -> Schema.has_attr i m || Schema.has_rel i m || Schema.has_op i m)

(** [add schema t target local] binds [local] to [target].

    Constraints: [target] must exist in [schema]; [local] must be a valid,
    non-keyword identifier; interfaces must not take a local name already
    used by another interface (alias-level uniqueness mirrors the canonical
    uniqueness assumption), and members must not collide within their
    interface. *)
let add schema (t : t) target local =
  if not (target_exists schema target) then
    Error (Printf.sprintf "%s does not exist" (target_to_string target))
  else if not (Odl.Names.is_valid local) then
    Error (Printf.sprintf "%s is not a valid identifier" local)
  else if Odl.Names.is_keyword local then
    Error (Printf.sprintf "%s is an ODL keyword" local)
  else
    let clash =
      match target with
      | For_interface _ ->
          (* unique among interface aliases and against real interface names *)
          List.exists
            (fun b ->
              match b.target with
              | For_interface _ ->
                  String.equal b.local local
                  && not (equal_target b.target target)
              | For_member _ -> false)
            t
          || Schema.mem_interface schema local
      | For_member (owner, _) ->
          List.exists
            (fun b ->
              match b.target with
              | For_member (owner', _) ->
                  String.equal owner owner' && String.equal b.local local
                  && not (equal_target b.target target)
              | For_interface _ -> false)
            t
    in
    if clash then
      Error (Printf.sprintf "the local name %s is already in use" local)
    else
      Ok
        ({ target; local }
        :: List.filter (fun b -> not (equal_target b.target target)) t)

(** Remove the local name of [target]; unchanged if none. *)
let remove (t : t) target =
  List.filter (fun b -> not (equal_target b.target target)) t

(** Drop bindings whose target no longer exists (e.g. after deletions),
    returning the survivors and the dropped bindings. *)
let prune schema (t : t) =
  List.partition (fun b -> target_exists schema b.target) t

(** Presentation: the name to display for an interface. *)
let display_interface t n =
  match local_of t (For_interface n) with
  | Some local -> Printf.sprintf "%s (locally: %s)" n local
  | None -> n

let report (t : t) =
  if t = [] then "no local names defined"
  else
    t
    |> List.rev
    |> List.map (fun b ->
           Printf.sprintf "%s -> %s" (target_to_string b.target) b.local)
    |> String.concat "\n"

(* --- persistence (one line per binding: "canonical = local") ------------- *)

let to_string (t : t) =
  t |> List.rev
  |> List.map (fun b ->
         Printf.sprintf "%s = %s" (target_to_string b.target) b.local)
  |> String.concat "\n"

exception Bad_aliases of string

let of_string text : t =
  text |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None
         else
           match String.index_opt line '=' with
           | None -> raise (Bad_aliases ("missing '=': " ^ line))
           | Some i ->
               let canonical = String.trim (String.sub line 0 i) in
               let local =
                 String.trim
                   (String.sub line (i + 1) (String.length line - i - 1))
               in
               if canonical = "" || local = "" then
                 raise (Bad_aliases ("malformed binding: " ^ line));
               Some { target = target_of_string canonical; local })
  |> List.rev
