(** A business-objects shrink wrap schema.

    The paper's section 5 points at the OMG Business Object Model effort —
    common business objects "to promote the conduct of business over the
    network" — as a natural application of shrink wrap schemas: every
    trading partner starts from the same order/party/product schema and
    customizes locally, interoperating through the common objects.  This
    schema is that starting point: parties with a generalization hierarchy,
    an order parts explosion, and a product/catalog-item instance-of link. *)

let source =
  {|
schema Business_Objects {
  interface Party {
    extent parties;
    key party_code;
    attribute string<12> party_code;
    attribute string<80> legal_name;
    attribute string tax_registration;
    relationship set<Address> addresses inverse Address::address_of;
    string display_name();
  };
  interface Organization : Party {
    attribute string industry_code;
    relationship set<Contact_Person> contacts inverse Contact_Person::represents;
  };
  interface Individual : Party {
    attribute string given_name;
    attribute string family_name;
  };
  interface Customer : Organization {
    attribute float credit_limit;
    attribute string payment_terms;
    relationship set<Sales_Order> orders inverse Sales_Order::placed_by;
    boolean credit_ok(float amount);
  };
  interface Supplier : Organization {
    attribute int lead_time_days;
    relationship set<Product> supplies inverse Product::supplied_by;
  };
  interface Contact_Person : Individual {
    attribute string<60> role_title;
    attribute string email;
    relationship Organization represents inverse Organization::contacts;
  };
  interface Address {
    attribute string street;
    attribute string<40> city;
    attribute string<2> country_code;
    attribute string<12> postal_code;
    relationship Party address_of inverse Party::addresses;
  };
  interface Sales_Order {
    extent sales_orders;
    key order_number;
    attribute string<14> order_number;
    attribute string order_date;
    attribute string status;
    relationship Customer placed_by inverse Customer::orders;
    part_of relationship set<Order_Line> lines inverse Order_Line::line_of
      order_by (line_number);
    part_of relationship set<Shipment> shipments inverse Shipment::shipment_of;
    float total_value() raises (Unpriced_Line);
    void cancel() raises (Already_Shipped);
  };
  interface Order_Line {
    attribute int line_number;
    attribute int quantity;
    attribute float unit_price;
    part_of relationship Sales_Order line_of inverse Sales_Order::lines;
    relationship Catalog_Item for_item inverse Catalog_Item::ordered_on;
  };
  interface Shipment {
    attribute string<16> tracking_number;
    attribute string shipped_on;
    part_of relationship Sales_Order shipment_of inverse Sales_Order::shipments;
    relationship Carrier carried_by inverse Carrier::shipments_carried;
  };
  interface Carrier {
    key scac_code;
    attribute string<4> scac_code;
    attribute string carrier_name;
    relationship set<Shipment> shipments_carried inverse Shipment::carried_by;
  };
  interface Product {
    extent products;
    key product_code;
    attribute string<16> product_code;
    attribute string description;
    attribute string unit_of_measure;
    relationship Supplier supplied_by inverse Supplier::supplies;
    instance_of relationship set<Catalog_Item> catalog_items
      inverse Catalog_Item::item_of;
  };
  interface Catalog_Item {
    attribute string<10> catalog_season;
    attribute float list_price;
    attribute boolean discontinued;
    instance_of relationship Product item_of inverse Product::catalog_items;
    relationship set<Order_Line> ordered_on inverse Order_Line::for_item;
    relationship Price_List listed_in inverse Price_List::items;
  };
  interface Price_List {
    key price_list_name;
    attribute string<24> price_list_name;
    attribute string currency;
    attribute string valid_from;
    relationship set<Catalog_Item> items inverse Catalog_Item::listed_in
      order_by (list_price);
  };
};
|}

let schema = lazy (Odl.Parser.parse_schema source)
let v () = Lazy.force schema
