(** A bundled shrink wrap schema (see the implementation header for what it
    models and which paper figures it carries). *)

val source : string
(** The schema in extended ODL concrete syntax. *)

val v : unit -> Odl.Types.schema
(** The parsed schema (parsed once, lazily). *)
