(** The EMSL software version schema — the instance-of chain of the paper's
    Figure 6, from the Environmental and Molecular Sciences Laboratory: an
    application (e.g. a C compiler) has versions, each version is compiled on
    many machines, each compiled version is installed on many machines. *)

let source =
  {|
schema EMSL_Software {
  interface Application {
    extent applications;
    key application_name;
    attribute string<40> application_name;
    attribute string vendor;
    attribute string discipline;
    instance_of relationship set<Application_Version> versions
      inverse Application_Version::version_of;
    int version_count();
  };
  interface Application_Version {
    attribute string<16> version_number;
    attribute string release_date;
    instance_of relationship Application version_of
      inverse Application::versions;
    instance_of relationship set<Compiled_Version> compilations
      inverse Compiled_Version::compiled_from;
  };
  interface Compiled_Version {
    attribute string compile_date;
    attribute string compiler_flags;
    instance_of relationship Application_Version compiled_from
      inverse Application_Version::compilations;
    instance_of relationship set<Installed_Version> installations
      inverse Installed_Version::installed_from;
    relationship Machine compiled_on inverse Machine::compilations_here;
  };
  interface Installed_Version {
    attribute string install_date;
    attribute string<128> install_path;
    instance_of relationship Compiled_Version installed_from
      inverse Compiled_Version::installations;
    relationship Machine installed_on inverse Machine::installations_here;
    boolean is_current();
  };
  interface Machine {
    extent machines;
    key hostname;
    attribute string<64> hostname;
    attribute string architecture;
    attribute string operating_system;
    relationship set<Compiled_Version> compilations_here
      inverse Compiled_Version::compiled_on;
    relationship set<Installed_Version> installations_here
      inverse Installed_Version::installed_on order_by (install_date);
  };
};
|}

let schema = lazy (Odl.Parser.parse_schema source)
let v () = Lazy.force schema
