(** The lumber yard shrink wrap schema — the house parts explosion of the
    paper's Figure 5, fleshed out with attributes so that modification
    operations have material to act on.  The aggregation hierarchy rooted at
    [House] covers construction supplies: structure (roof, foundation,
    framing) and finish elements (doors, windows, plumbing fixtures). *)

let source =
  {|
schema Lumber_Yard {
  interface House {
    extent houses;
    key plan_number;
    attribute string<12> plan_number;
    attribute int square_feet;
    attribute float estimated_cost;
    part_of relationship set<Structure> structures inverse Structure::structure_of;
    part_of relationship set<Finish_Element> finish_elements
      inverse Finish_Element::finish_of;
    float total_material_cost();
  };
  interface Structure {
    attribute string<30> structure_name;
    part_of relationship House structure_of inverse House::structures;
    part_of relationship set<Roof> roofs inverse Roof::roof_of;
    part_of relationship set<Foundation> foundations inverse Foundation::foundation_of;
    part_of relationship set<Framing> framings inverse Framing::framing_of;
  };
  interface Roof {
    attribute float pitch;
    attribute int area_sqft;
    part_of relationship Structure roof_of inverse Structure::roofs;
    part_of relationship set<Plywood_Decking> decking inverse Plywood_Decking::decking_of;
    part_of relationship set<Tar_Paper> tar_paper inverse Tar_Paper::tar_paper_of;
    part_of relationship set<Shingle_Bundle> shingles inverse Shingle_Bundle::shingles_of;
  };
  interface Foundation {
    attribute string foundation_type;
    part_of relationship Structure foundation_of inverse Structure::foundations;
    part_of relationship set<Concrete_Form> forms inverse Concrete_Form::form_of;
    part_of relationship set<Re_Bar> re_bars inverse Re_Bar::re_bar_of;
  };
  interface Framing {
    attribute string lumber_grade;
    part_of relationship Structure framing_of inverse Structure::framings;
    part_of relationship set<Stud> studs inverse Stud::stud_of;
  };
  interface Finish_Element {
    attribute string<30> element_name;
    part_of relationship House finish_of inverse House::finish_elements;
    part_of relationship set<Door> doors inverse Door::door_of;
    part_of relationship set<Window> windows inverse Window::window_of;
    part_of relationship set<Plumbing_Fixture> plumbing inverse Plumbing_Fixture::plumbing_of;
  };
  interface Supply_Item {
    key sku;
    attribute string<16> sku;
    attribute float unit_cost;
    attribute int quantity_on_hand;
    relationship Supplier supplied_by inverse Supplier::supplies;
    boolean in_stock(int quantity);
  };
  interface Plywood_Decking : Supply_Item {
    attribute float thickness_inches;
    part_of relationship Roof decking_of inverse Roof::decking;
  };
  interface Tar_Paper : Supply_Item {
    attribute int roll_length_feet;
    part_of relationship Roof tar_paper_of inverse Roof::tar_paper;
  };
  interface Shingle_Bundle : Supply_Item {
    attribute string shingle_style;
    part_of relationship Roof shingles_of inverse Roof::shingles;
  };
  interface Concrete_Form : Supply_Item {
    attribute string form_size;
    part_of relationship Foundation form_of inverse Foundation::forms;
  };
  interface Re_Bar : Supply_Item {
    attribute float diameter_inches;
    part_of relationship Foundation re_bar_of inverse Foundation::re_bars;
  };
  interface Stud : Supply_Item {
    attribute string dimensions;
    part_of relationship Framing stud_of inverse Framing::studs;
  };
  interface Door : Supply_Item {
    attribute string door_style;
    part_of relationship Finish_Element door_of inverse Finish_Element::doors;
  };
  interface Window : Supply_Item {
    attribute string glazing;
    part_of relationship Finish_Element window_of inverse Finish_Element::windows;
  };
  interface Plumbing_Fixture : Supply_Item {
    attribute string fixture_type;
    part_of relationship Finish_Element plumbing_of inverse Finish_Element::plumbing;
  };
  interface Supplier {
    extent suppliers;
    key supplier_name;
    attribute string<40> supplier_name;
    attribute string city;
    relationship set<Supply_Item> supplies inverse Supply_Item::supplied_by
      order_by (sku);
  };
};
|}

let schema = lazy (Odl.Parser.parse_schema source)
let v () = Lazy.force schema
