(** A VLSI cell-library shrink wrap schema.

    The paper motivates part-of hierarchies with "VLSI and CAD applications";
    this schema is the CAD counterpart of the lumber yard: a chip design
    parts explosion (chip → functional block → standard cell placement →
    devices), a generalization hierarchy of components, and an instance-of
    chain from a cell's generic specification through its versions to
    placed instances — all four concept schema types in one schema. *)

let source =
  {|
schema VLSI_Library {
  interface Design_Object {
    key object_id;
    attribute string<16> object_id;
    attribute string created_on;
    attribute string author;
    string describe();
  };
  interface Chip : Design_Object {
    extent chips;
    attribute string<24> part_number;
    attribute float die_area_mm2;
    attribute int pin_count;
    part_of relationship set<Functional_Block> blocks
      inverse Functional_Block::block_of;
    part_of relationship set<Pad_Ring> pad_rings inverse Pad_Ring::ring_of;
    relationship Process_Node fabricated_in inverse Process_Node::chips_on;
    float estimated_power() raises (Missing_Characterization);
  };
  interface Functional_Block : Design_Object {
    attribute string<32> block_name;
    attribute float area_um2;
    part_of relationship Chip block_of inverse Chip::blocks;
    part_of relationship set<Cell_Placement> placements
      inverse Cell_Placement::placement_of;
    part_of relationship set<Routing_Channel> channels
      inverse Routing_Channel::channel_of;
  };
  interface Pad_Ring : Design_Object {
    attribute int pad_count;
    part_of relationship Chip ring_of inverse Chip::pad_rings;
  };
  interface Routing_Channel : Design_Object {
    attribute int track_count;
    part_of relationship Functional_Block channel_of
      inverse Functional_Block::channels;
    part_of relationship set<Wire_Segment> segments
      inverse Wire_Segment::segment_of;
  };
  interface Wire_Segment {
    attribute int layer;
    attribute float length_um;
    part_of relationship Routing_Channel segment_of
      inverse Routing_Channel::segments;
  };
  interface Cell_Placement : Design_Object {
    attribute float x_um;
    attribute float y_um;
    attribute string orientation;
    part_of relationship Functional_Block placement_of
      inverse Functional_Block::placements;
    instance_of relationship Cell_Version placed_version
      inverse Cell_Version::placements;
    part_of relationship set<Device> devices inverse Device::device_of;
  };
  interface Device : Design_Object {
    attribute string device_model;
    part_of relationship Cell_Placement device_of
      inverse Cell_Placement::devices;
  };
  interface Transistor : Device {
    attribute float width_um;
    attribute float length_um;
    attribute string flavour;
  };
  interface Capacitor : Device {
    attribute float femto_farads;
  };
  interface Resistor : Device {
    attribute float ohms;
  };
  interface Cell : Design_Object {
    extent cells;
    key cell_name;
    attribute string<32> cell_name;
    attribute string cell_function;
    relationship Cell_Family member_of inverse Cell_Family::members;
    instance_of relationship set<Cell_Version> versions
      inverse Cell_Version::version_of;
    int version_count();
  };
  interface Cell_Version : Design_Object {
    attribute string<12> version_tag;
    attribute string release_date;
    attribute boolean deprecated;
    instance_of relationship Cell version_of inverse Cell::versions;
    instance_of relationship set<Cell_Placement> placements
      inverse Cell_Placement::placed_version;
    relationship set<Characterization> characterizations
      inverse Characterization::characterizes order_by (corner_name);
  };
  interface Characterization {
    attribute string<16> corner_name;
    attribute float delay_ps;
    attribute float leakage_nw;
    relationship Cell_Version characterizes
      inverse Cell_Version::characterizations;
    relationship Process_Node at_node inverse Process_Node::characterizations_at;
  };
  interface Cell_Family {
    extent cell_families;
    key family_name;
    attribute string<24> family_name;
    attribute string logic_style;
    relationship set<Cell> members inverse Cell::member_of order_by (cell_name);
  };
  interface Process_Node {
    extent process_nodes;
    key node_name;
    attribute string<16> node_name;
    attribute float feature_nm;
    relationship set<Chip> chips_on inverse Chip::fabricated_in;
    relationship set<Characterization> characterizations_at
      inverse Characterization::at_node;
  };
};
|}

let schema = lazy (Odl.Parser.parse_schema source)
let v () = Lazy.force schema
