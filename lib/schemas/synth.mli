(** Parametric synthetic schema generator for benches and property tests.

    Generation is deterministic for a given parameter value and always
    produces a schema with no error-level diagnostics: inverses are paired,
    hierarchies are acyclic by index ordering, keys name own attributes, and
    names are globally unambiguous. *)

type params = {
  n_types : int;
  attrs_per_type : int;
  ops_per_type : int;
  assocs_per_type : int;  (** association relationships declared per type *)
  isa_fraction : float;  (** fraction of types given a supertype *)
  part_edges : int;  (** part-of edges (whole index < part index) *)
  instance_chain_length : int;  (** 0 = no instance-of chain *)
  seed : int;
}

val default_params : n_types:int -> params
val generate : params -> Odl.Types.schema
