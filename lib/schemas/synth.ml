(** Parametric synthetic schema generator.

    Benches and property tests need valid shrink wrap schemas of controlled
    size and shape.  Generation is deterministic for a given [params] value
    (a seeded PRNG state), and always produces a schema that passes
    [Odl.Validate.errors] — inverses are paired, hierarchies are acyclic by
    index ordering, keys name own attributes, and names are globally
    unambiguous. *)

open Odl.Types

type params = {
  n_types : int;
  attrs_per_type : int;
  ops_per_type : int;
  assocs_per_type : int;  (** association relationships declared per type *)
  isa_fraction : float;  (** fraction of types given a supertype *)
  part_edges : int;  (** part-of edges (whole index < part index) *)
  instance_chain_length : int;  (** 0 = no instance-of chain *)
  seed : int;
}

let default_params ~n_types =
  {
    n_types;
    attrs_per_type = 3;
    ops_per_type = 1;
    assocs_per_type = 2;
    isa_fraction = 0.4;
    part_edges = max 0 (n_types / 4);
    instance_chain_length = min 4 (max 0 (n_types / 5));
    seed = 42;
  }

let type_name i = Printf.sprintf "T%d" i
let attr_name i k = Printf.sprintf "a%d_%d" i k
let op_name i k = Printf.sprintf "op%d_%d" i k

let domain_of_int rng i =
  match i mod 4 with
  | 0 -> (D_int, None)
  | 1 -> (D_float, None)
  | 2 -> (D_string, Some (8 + Random.State.int rng 56))
  | _ -> (D_boolean, None)

(** Generate a valid schema from [p]. *)
let generate p =
  let rng = Random.State.make [| p.seed |] in
  let n = max 1 p.n_types in
  (* extra relationship declarations per interface, filled in as pairs *)
  let extra_rels = Array.make n [] in
  let push i r = extra_rels.(i) <- extra_rels.(i) @ [ r ] in
  let pair kind ~whole:(i, iname) ~part:(j, jname) tag =
    let fwd = Printf.sprintf "%s_%d_%d" tag i j in
    let bwd = Printf.sprintf "%s_%d_%d_inv" tag i j in
    push i
      {
        rel_kind = kind;
        rel_name = fwd;
        rel_target = jname;
        rel_inverse = bwd;
        rel_card = Some Set;
        rel_order_by = [];
      };
    push j
      {
        rel_kind = kind;
        rel_name = bwd;
        rel_target = iname;
        rel_inverse = fwd;
        rel_card = None;
        rel_order_by = [];
      }
  in
  (* associations: forward end on i, inverse on a random target *)
  for i = 0 to n - 1 do
    for k = 0 to p.assocs_per_type - 1 do
      let j = Random.State.int rng n in
      let fwd = Printf.sprintf "r%d_%d" i k in
      let bwd = Printf.sprintf "r%d_%d_inv" i k in
      if not (i = j) || k mod 2 = 0 then begin
        let many = Random.State.bool rng in
        push i
          {
            rel_kind = Association;
            rel_name = fwd;
            rel_target = type_name j;
            rel_inverse = bwd;
            rel_card = (if many then Some Set else None);
            rel_order_by =
              (if many && p.attrs_per_type > 0 && Random.State.int rng 3 = 0
               then [ attr_name j 0 ]
               else []);
          };
        push j
          {
            rel_kind = Association;
            rel_name = bwd;
            rel_target = type_name i;
            rel_inverse = fwd;
            rel_card = (if many then None else Some Set);
            rel_order_by = [];
          }
      end
    done
  done;
  (* part-of edges: whole index strictly below part index keeps the graph
     acyclic *)
  if n > 1 then
    for k = 0 to p.part_edges - 1 do
      let i = Random.State.int rng (n - 1) in
      let j = i + 1 + Random.State.int rng (n - i - 1) in
      let already =
        List.exists
          (fun r -> String.equal r.rel_name (Printf.sprintf "part_%d_%d" i j))
          extra_rels.(i)
      in
      if not already then
        pair Part_of ~whole:(i, type_name i) ~part:(j, type_name j)
          (Printf.sprintf "part%d" k)
    done;
  (* one linear instance-of chain over the first [chain_length] types *)
  let chain = min p.instance_chain_length (n - 1) in
  for i = 0 to chain - 1 do
    pair Instance_of ~whole:(i, type_name i) ~part:(i + 1, type_name (i + 1))
      "inst"
  done;
  let interface i =
    let name = type_name i in
    let supertypes =
      if i > 0 && Random.State.float rng 1.0 < p.isa_fraction then
        [ type_name (Random.State.int rng i) ]
      else []
    in
    let attrs =
      List.init p.attrs_per_type (fun k ->
          let ty, size = domain_of_int rng (i + k) in
          { attr_name = attr_name i k; attr_type = ty; attr_size = size })
    in
    let ops =
      List.init p.ops_per_type (fun k ->
          {
            op_name = op_name i k;
            op_return = (if k mod 2 = 0 then D_boolean else D_int);
            op_args =
              (if k mod 3 = 0 then [ { arg_name = "x"; arg_type = D_int } ] else []);
            op_raises = (if k mod 5 = 0 then [ "Synthetic_Failure" ] else []);
          })
    in
    {
      i_name = name;
      i_supertypes = supertypes;
      i_extent = Some (Printf.sprintf "ext_%s" name);
      i_keys = (if p.attrs_per_type > 0 then [ [ attr_name i 0 ] ] else []);
      i_attrs = attrs;
      i_rels = extra_rels.(i);
      i_ops = ops;
    }
  in
  { s_name = Printf.sprintf "Synth%d" n; s_interfaces = List.init n interface }
