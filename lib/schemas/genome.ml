(** The ACEDB schema family (paper Figures 9-11).

    ACEDB was built for the nematode genome project and manually reused for
    the Arabidopsis database (AAtDB) and the Saccharomyces database
    (SacchDB).  The three schemas share most object types by name; the
    carrier of mutations is called [Strain] in the animal disciplines
    (ACEDB, SacchDB) and [Phenotype] in the plant discipline (AAtDB).  The
    common physical-mapping core is generated once — parameterized on the
    carrier type name and on per-type extension hooks — exactly the
    situation shrink wrap schema-based design addresses. *)

(* The shared physical-mapping and bibliography core.  [carrier] is the name
   of the mutation-carrier object type; [locus_extra] and [carrier_extra]
   are extra member declarations spliced into those interfaces so each
   database can hang its organism-specific links off the shared types. *)
let common_core ~carrier ~locus_extra ~carrier_extra =
  Printf.sprintf
    {|
  interface Map {
    extent maps;
    key map_name;
    attribute string<40> map_name;
    attribute string chromosome;
    relationship set<Locus> loci inverse Locus::on_map order_by (position);
    relationship set<Contig> contigs inverse Contig::mapped_to;
  };
  interface Locus {
    extent loci;
    key locus_name;
    attribute string<20> locus_name;
    attribute float position;
    relationship Map on_map inverse Map::loci;
    relationship set<Allele> alleles inverse Allele::allele_of;
    relationship set<Clone> positive_clones inverse Clone::hybridizes_to;
    %s
  };
  interface Contig {
    attribute string<20> contig_name;
    attribute int length_kb;
    relationship Map mapped_to inverse Map::contigs;
    relationship set<Clone> members inverse Clone::in_contig;
  };
  interface Clone {
    extent clones;
    key clone_name;
    attribute string<20> clone_name;
    attribute string clone_type;
    relationship Contig in_contig inverse Contig::members;
    relationship set<Locus> hybridizes_to inverse Locus::positive_clones;
    relationship set<Sequence> sequences inverse Sequence::from_clone;
    relationship Laboratory held_by inverse Laboratory::clone_stock;
  };
  interface Sequence {
    attribute string<30> accession;
    attribute int length_bp;
    relationship Clone from_clone inverse Clone::sequences;
    relationship set<Paper> cited_in inverse Paper::sequences_reported;
  };
  interface Allele {
    attribute string<20> allele_name;
    attribute string mutagen;
    relationship Locus allele_of inverse Locus::alleles;
    relationship %s found_in inverse %s::carries;
  };
  interface %s {
    extent carriers;
    key carrier_name;
    attribute string<30> carrier_name;
    attribute string description;
    relationship set<Allele> carries inverse Allele::found_in;
    relationship Laboratory maintained_by inverse Laboratory::stock;
    %s
  };
  interface Paper {
    extent papers;
    attribute string title;
    attribute int year;
    relationship Journal published_in inverse Journal::papers;
    relationship set<Author> authors inverse Author::wrote;
    relationship set<Sequence> sequences_reported inverse Sequence::cited_in;
  };
  interface Author {
    key author_name;
    attribute string<60> author_name;
    relationship set<Paper> wrote inverse Paper::authors order_by (year);
    relationship Laboratory member_of inverse Laboratory::members;
  };
  interface Journal {
    key journal_name;
    attribute string<80> journal_name;
    relationship set<Paper> papers inverse Paper::published_in;
  };
  interface Laboratory {
    extent laboratories;
    key lab_code;
    attribute string<8> lab_code;
    attribute string location;
    relationship set<Author> members inverse Author::member_of;
    relationship set<%s> stock inverse %s::maintained_by;
    relationship set<Clone> clone_stock inverse Clone::held_by;
  };
|}
    locus_extra carrier carrier carrier carrier_extra carrier carrier

let build ~name ~carrier ?(locus_extra = "") ?(carrier_extra = "") ~extra () =
  Printf.sprintf "schema %s {%s%s};" name
    (common_core ~carrier ~locus_extra ~carrier_extra)
    extra

(** ACEDB: the original nematode schema — [Strain], plus genetic crosses
    hanging off strains. *)
let acedb_source =
  build ~name:"ACEDB" ~carrier:"Strain"
    ~carrier_extra:
      "relationship set<Genetic_Cross> crosses inverse \
       Genetic_Cross::parent_strain;"
    ~extra:
      {|
  interface Genetic_Cross {
    attribute string cross_date;
    attribute string genotype;
    relationship Strain parent_strain inverse Strain::crosses;
  };
|}
    ()

(** AAtDB: the Arabidopsis (thale cress) schema — the mutation carrier is
    called [Phenotype], and the plant schema records ecotypes. *)
let aatdb_source =
  build ~name:"AAtDB" ~carrier:"Phenotype"
    ~carrier_extra:
      "relationship set<Ecotype> ecotypes inverse Ecotype::typical_phenotypes;"
    ~extra:
      {|
  interface Ecotype {
    extent ecotypes;
    key ecotype_name;
    attribute string<30> ecotype_name;
    attribute string collection_site;
    relationship set<Phenotype> typical_phenotypes inverse Phenotype::ecotypes;
  };
|}
    ()

(** SacchDB: the Saccharomyces (yeast) schema — [Strain], plus gene products
    (yeast genetics tracks proteins). *)
let sacchdb_source =
  build ~name:"SacchDB" ~carrier:"Strain"
    ~locus_extra:
      "relationship set<Gene_Product> products inverse Gene_Product::encoded_by;"
    ~extra:
      {|
  interface Gene_Product {
    extent gene_products;
    key product_name;
    attribute string<40> product_name;
    attribute string product_class;
    relationship Locus encoded_by inverse Locus::products;
  };
|}
    ()

let acedb = lazy (Odl.Parser.parse_schema acedb_source)
let aatdb = lazy (Odl.Parser.parse_schema aatdb_source)
let sacchdb = lazy (Odl.Parser.parse_schema sacchdb_source)

let acedb_v () = Lazy.force acedb
let aatdb_v () = Lazy.force aatdb
let sacchdb_v () = Lazy.force sacchdb

(** Object-type names shared by all three schemas — the common-objects
    argument of the paper's §4. *)
let common_object_types () =
  let names s = List.map (fun i -> i.Odl.Types.i_name) s.Odl.Types.s_interfaces in
  let b = names (aatdb_v ()) and c = names (sacchdb_v ()) in
  List.filter (fun n -> List.mem n b && List.mem n c) (names (acedb_v ()))
