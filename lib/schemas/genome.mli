(** The ACEDB schema family (paper Figures 9-11): the nematode original and
    its two historical manual reuses, AAtDB (Arabidopsis) and SacchDB
    (yeast).  The common physical-mapping core is generated once,
    parameterized on the mutation-carrier type name ([Strain] vs
    [Phenotype]) and per-type extension hooks. *)

val acedb_source : string
val aatdb_source : string
val sacchdb_source : string

val acedb_v : unit -> Odl.Types.schema
val aatdb_v : unit -> Odl.Types.schema
val sacchdb_v : unit -> Odl.Types.schema

val common_object_types : unit -> string list
(** Object-type names shared by all three schemas. *)
