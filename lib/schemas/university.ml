(** The university shrink wrap schema — the paper's running example.

    It contains the material of Figures 3, 4, 7 and 8: the course offering
    wagon wheel (Figure 3), the student generalization hierarchy (Figure 4),
    the department/employee/person constellation of the
    modify-relationship-target-type example (Figure 8), and an instance-of
    link between [Course] and [Course_Offering].  The [Schedule] aggregate of
    Figure 7 is {e not} part of the shrink wrap schema: the elaboration that
    introduces it is the paper's worked modification example (see
    [examples/quickstart.ml]). *)

let source =
  {|
schema University {
  interface Person {
    extent people;
    key ssn;
    attribute string<60> name;
    attribute string<11> ssn;
    attribute string birthdate;
    string display_name();
  };
  interface Employee : Person {
    attribute float salary;
    attribute string hire_date;
    relationship Department works_in_a inverse Department::has;
    void give_raise(float percent) raises (Budget_Exceeded);
  };
  interface Student : Person {
    extent students;
    attribute float gpa;
    attribute int credits_earned;
    relationship set<Course_Offering> takes inverse Course_Offering::taken_by;
    boolean in_good_standing();
  };
  interface Undergraduate : Student {
    attribute int class_year;
    attribute string residence_hall;
  };
  interface Graduate : Student {
    attribute string undergrad_institution;
    relationship Faculty advised_by inverse Faculty::advises;
  };
  interface Nonthesis_Masters : Graduate {
    attribute string comprehensive_exam_date;
  };
  interface Thesis_Masters : Graduate {
    attribute string thesis_title;
  };
  interface Doctoral : Graduate {
    attribute string dissertation_title;
    attribute string candidacy_date;
  };
  interface Faculty : Employee {
    attribute string rank;
    attribute string tenure_status;
    relationship set<Course_Offering> teaches inverse Course_Offering::taught_by;
    relationship set<Graduate> advises inverse Graduate::advised_by
      order_by (name);
    int advisee_count();
  };
  interface Department {
    extent departments;
    key dept_name;
    attribute string<40> dept_name;
    attribute float budget;
    relationship set<Employee> has inverse Employee::works_in_a;
    relationship set<Course> offers inverse Course::offered_by;
  };
  interface Course {
    extent courses;
    key (subject, number);
    attribute string<8> subject;
    attribute int number;
    attribute string title;
    attribute int credit_hours;
    relationship Department offered_by inverse Department::offers;
    relationship set<Course> prerequisites inverse Course::prerequisite_of;
    relationship set<Course> prerequisite_of inverse Course::prerequisites;
    instance_of relationship set<Course_Offering> offerings
      inverse Course_Offering::offering_of;
  };
  interface Course_Offering {
    extent course_offerings;
    attribute string<20> room;
    attribute string<10> term;
    attribute int capacity;
    instance_of relationship Course offering_of inverse Course::offerings;
    relationship Syllabus described_by inverse Syllabus::describes;
    relationship set<Book> books inverse Book::book_for;
    relationship Time_Slot offered_during inverse Time_Slot::slot_of;
    relationship set<Student> taken_by inverse Student::takes
      order_by (name);
    relationship Faculty taught_by inverse Faculty::teaches;
    float average_grade(string term) raises (No_Grades);
    void cancel() raises (Already_Started);
  };
  interface Syllabus {
    attribute int length_pages;
    attribute string last_revised;
    relationship Course_Offering describes inverse Course_Offering::described_by;
  };
  interface Book {
    key isbn;
    attribute string title;
    attribute string<13> isbn;
    attribute float price;
    relationship set<Course_Offering> book_for inverse Course_Offering::books;
  };
  interface Time_Slot {
    key (day, starts, ends);
    attribute string<9> day;
    attribute string<5> starts;
    attribute string<5> ends;
    relationship set<Course_Offering> slot_of
      inverse Course_Offering::offered_during;
  };
};
|}

let schema = lazy (Odl.Parser.parse_schema source)
let v () = Lazy.force schema
