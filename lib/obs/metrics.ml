(** Named counters and gauges.

    Counters are write-hot: the service increments several per request from
    many worker threads.  Each counter is therefore backed by a small array
    of per-thread sharded cells — a thread picks its cell by thread id, so
    two threads almost never touch the same atomic — and the total is
    aggregated only on read ({!value}, {!counters}).  There is no shared
    mutex anywhere on the increment path.

    Gauges are point-in-time values (sessions open, requests in flight) set
    rarely; a single atomic cell suffices.

    A registry created with [~on:false] hands out disabled instruments whose
    operations are a single branch — the [--no-obs] configuration. *)

let shard_count = 16  (* power of two: thread id folds in with a mask *)

let slot () = Thread.id (Thread.self ()) land (shard_count - 1)

type counter = {
  c_name : string;
  c_on : bool;
  c_cells : int Atomic.t array;
}

type gauge = { g_name : string; g_on : bool; g_cell : int Atomic.t }

type registry = {
  r_on : bool;
  r_mu : Mutex.t;  (** guards registration only, never the hot path *)
  mutable r_counters : counter list;
  mutable r_gauges : gauge list;
}

let create ?(on = true) () =
  { r_on = on; r_mu = Mutex.create (); r_counters = []; r_gauges = [] }

let locked r f =
  Mutex.lock r.r_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.r_mu) f

(** Find-or-create the counter named [name]; registration is idempotent, so
    instruments can be looked up again from anywhere. *)
let counter r name =
  locked r (fun () ->
      match List.find_opt (fun c -> c.c_name = name) r.r_counters with
      | Some c -> c
      | None ->
          let c =
            {
              c_name = name;
              c_on = r.r_on;
              c_cells = Array.init shard_count (fun _ -> Atomic.make 0);
            }
          in
          r.r_counters <- c :: r.r_counters;
          c)

let gauge r name =
  locked r (fun () ->
      match List.find_opt (fun g -> g.g_name = name) r.r_gauges with
      | Some g -> g
      | None ->
          let g = { g_name = name; g_on = r.r_on; g_cell = Atomic.make 0 } in
          r.r_gauges <- g :: r.r_gauges;
          g)

let incr c = if c.c_on then ignore (Atomic.fetch_and_add c.c_cells.(slot ()) 1)
let add c n = if c.c_on then ignore (Atomic.fetch_and_add c.c_cells.(slot ()) n)

(** Aggregate over the shards.  Reads race benignly with concurrent
    increments: the result is some total that was true at a recent instant. *)
let value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.c_cells

let set g v = if g.g_on then Atomic.set g.g_cell v
let gauge_value g = Atomic.get g.g_cell

(* Read-only lookups: assertions and exporters ask "what is
   swsd.repl.lag right now?" without registering a phantom zero-valued
   instrument on a registry that never emitted it. *)
let find_counter r name =
  locked r (fun () -> List.find_opt (fun c -> c.c_name = name) r.r_counters)
  |> Option.map value

let find_gauge r name =
  locked r (fun () -> List.find_opt (fun g -> g.g_name = name) r.r_gauges)
  |> Option.map gauge_value

let by_name name_of l =
  List.sort (fun a b -> compare (name_of a) (name_of b)) l

let counters r =
  locked r (fun () -> r.r_counters)
  |> by_name (fun c -> c.c_name)
  |> List.map (fun c -> (c.c_name, value c))

let gauges r =
  locked r (fun () -> r.r_gauges)
  |> by_name (fun g -> g.g_name)
  |> List.map (fun g -> (g.g_name, gauge_value g))
