(** Stable renderings of a {!Registry.snapshot}.

    [to_text] is for humans at a terminal (`swsd stats`): aligned columns,
    names sorted, histograms as count / mean / p50 / p90 / p99 / max.
    [to_json] is for scripts and scrapers: one self-contained JSON object
    with the same content, quantiles precomputed (bucket arrays are an
    implementation detail and are not exported).  Both renderings are
    deterministic for a given snapshot. *)

open Registry

(* Latency-style histograms are named *_seconds; render them in ms. *)
let is_seconds name =
  let suffix = "_seconds" in
  let nl = String.length name and sl = String.length suffix in
  nl >= sl && String.sub name (nl - sl) sl = suffix

let scaled name v = if is_seconds name then v *. 1000.0 else v
let histo_unit name = if is_seconds name then "ms" else "raw"

let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

(* --- text ----------------------------------------------------------------- *)

let quantiles (s : Histo.snapshot) =
  ( Histo.quantile s 0.50,
    Histo.quantile s 0.90,
    Histo.quantile s 0.99,
    if s.Histo.s_count = 0 then 0.0 else s.Histo.s_max )

let to_text sn =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "observability snapshot (uptime %.1fs)" sn.sn_uptime;
  if sn.sn_counters <> [] then begin
    line "counters:";
    List.iter (fun (n, v) -> line "  %-40s %12d" n v) sn.sn_counters
  end;
  if sn.sn_gauges <> [] then begin
    line "gauges:";
    List.iter (fun (n, v) -> line "  %-40s %12d" n v) sn.sn_gauges
  end;
  if sn.sn_histos <> [] then begin
    line "histograms:";
    line "  %-34s %5s %9s %9s %9s %9s %9s %4s" "" "count" "mean" "p50" "p90"
      "p99" "max" "unit";
    List.iter
      (fun (n, s) ->
        let p50, p90, p99, mx = quantiles s in
        let sc = scaled n in
        line "  %-34s %5d %9s %9s %9s %9s %9s %4s" n s.Histo.s_count
          (fmt_num (sc (Histo.mean s)))
          (fmt_num (sc p50)) (fmt_num (sc p90)) (fmt_num (sc p99))
          (fmt_num (sc mx)) (histo_unit n))
      sn.sn_histos
  end;
  if sn.sn_notes <> [] then begin
    line "notes:";
    List.iter (fun (n, v) -> line "  %-34s %s" n v) sn.sn_notes
  end;
  if sn.sn_traces <> [] then begin
    line "recent traces (newest first):";
    List.iter
      (fun (tr : Trace.trace) ->
        let phases =
          tr.Trace.tr_phases
          |> List.map (fun (p : Trace.phase) ->
                 Printf.sprintf "%s=%.3fms" p.Trace.ph_name
                   (p.Trace.ph_seconds *. 1000.0))
          |> String.concat " "
        in
        line "  %-8s %-4s %9.3fms  %s%s" tr.Trace.tr_label tr.Trace.tr_status
          (tr.Trace.tr_seconds *. 1000.0)
          phases
          (if tr.Trace.tr_detail = "" then ""
           else "  [" ^ tr.Trace.tr_detail ^ "]"))
      sn.sn_traces
  end;
  Buffer.contents b

(* --- json ----------------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ escape s ^ "\""

(* JSON numbers may not be nan/inf; empty-histogram min/max render as 0. *)
let jfloat v = if Float.is_finite v then Printf.sprintf "%.9g" v else "0"

let jobj fields = "{" ^ String.concat ", " fields ^ "}"
let jfield k v = jstr k ^ ": " ^ v

let int_table kvs =
  jobj (List.map (fun (k, v) -> jfield k (string_of_int v)) kvs)

let histo_json name (s : Histo.snapshot) =
  let p50, p90, p99, _ = quantiles s in
  jobj
    [
      jfield "count" (string_of_int s.Histo.s_count);
      jfield "sum" (jfloat s.Histo.s_sum);
      jfield "min" (jfloat (if s.Histo.s_count = 0 then 0.0 else s.Histo.s_min));
      jfield "max" (jfloat (if s.Histo.s_count = 0 then 0.0 else s.Histo.s_max));
      jfield "p50" (jfloat p50);
      jfield "p90" (jfloat p90);
      jfield "p99" (jfloat p99);
      jfield "unit" (jstr (if is_seconds name then "s" else "raw"));
    ]

let trace_json (tr : Trace.trace) =
  jobj
    [
      jfield "label" (jstr tr.Trace.tr_label);
      jfield "detail" (jstr tr.Trace.tr_detail);
      jfield "start" (jfloat tr.Trace.tr_start);
      jfield "seconds" (jfloat tr.Trace.tr_seconds);
      jfield "status" (jstr tr.Trace.tr_status);
      jfield "phases"
        (jobj
           (List.map
              (fun (p : Trace.phase) ->
                jfield p.Trace.ph_name (jfloat p.Trace.ph_seconds))
              tr.Trace.tr_phases));
    ]

let to_json sn =
  jobj
    [
      jfield "at" (jfloat sn.sn_at);
      jfield "uptime_s" (jfloat sn.sn_uptime);
      jfield "counters" (int_table sn.sn_counters);
      jfield "gauges" (int_table sn.sn_gauges);
      jfield "histograms"
        (jobj
           (List.map (fun (n, s) -> jfield n (histo_json n s)) sn.sn_histos));
      jfield "notes"
        (jobj (List.map (fun (n, v) -> jfield n (jstr v)) sn.sn_notes));
      jfield "traces"
        ("[" ^ String.concat ", " (List.map trace_json sn.sn_traces) ^ "]");
    ]

(* --- composition (multi-process stats) ------------------------------------- *)

let json_string = jstr

let merge_labeled_json parts =
  jobj (List.map (fun (label, doc) -> jfield label doc) parts)

let merge_labeled_text parts =
  parts
  |> List.map (fun (label, text) ->
         let text =
           if String.length text > 0 && text.[String.length text - 1] = '\n'
           then String.sub text 0 (String.length text - 1)
           else text
         in
         Printf.sprintf "== %s ==\n%s" label text)
  |> String.concat "\n\n"
