(** Named counters (per-thread sharded cells, aggregated on read — the
    increment path never touches a shared mutex) and gauges (single atomic
    cell).  A registry created with [~on:false] hands out no-op
    instruments. *)

type counter
type gauge
type registry

val create : ?on:bool -> unit -> registry
(** Fresh registry; [on] defaults to [true]. *)

val counter : registry -> string -> counter
(** Find-or-create by name (idempotent). *)

val gauge : registry -> string -> gauge

val incr : counter -> unit
val add : counter -> int -> unit

val value : counter -> int
(** Aggregated total; races benignly with concurrent increments. *)

val set : gauge -> int -> unit
val gauge_value : gauge -> int

val find_counter : registry -> string -> int option
(** Current value of the counter named, or [None] when nothing has
    registered it — a read-only lookup that, unlike {!counter}, never
    creates a phantom zero-valued instrument (tests and exporters probe
    [swsd.repl.*] on registries that may not replicate). *)

val find_gauge : registry -> string -> int option

val counters : registry -> (string * int) list
(** All counters with their aggregated values, sorted by name. *)

val gauges : registry -> (string * int) list

val shard_count : int
(** How many cells back each counter (fixed; thread id selects one). *)
