(** Dependency-free observability: sharded counters and gauges
    ({!Metrics}), log-bucketed latency histograms with mergeable snapshots
    ({!Histo}), request tracing over monotonic clocks ({!Trace}), and
    stable text/JSON exports ({!Export}) — tied together by the registry
    ({!Registry}, included here: [Obs.create], [Obs.noop], [Obs.counter],
    [Obs.snapshot], ...).

    The whole library depends only on the unix and threads libraries that
    ship with the compiler; instrumented code takes an [Obs.t] and pays a
    load-and-branch when it was created disabled ([Obs.noop]). *)

module Clock = Clock
module Metrics = Metrics
module Histo = Histo
module Trace = Trace
module Export = Export
include Registry
