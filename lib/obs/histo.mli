(** Log-bucketed latency histograms: thread-sharded recording, mergeable
    snapshots, quantile estimates with bounded relative error (the
    underflow/overflow buckets answer with the exact observed min/max). *)

type t

val create : ?on:bool -> ?lo:float -> ?hi:float -> ?per_decade:int -> string -> t
(** [create name] with defaults for seconds-valued latencies: [lo = 1e-6],
    [hi = 1e3], [per_decade = 10].  With [~on:false] recording is a no-op. *)

val name : t -> string

val observe : t -> float -> unit
(** Record one value; thread-safe, sharded by thread id. *)

val bucket_index : t -> float -> int
(** Which bucket a value lands in (0 = underflow, last = overflow). *)

type snapshot = {
  s_lo : float;
  s_hi : float;
  s_per_decade : int;
  s_count : int;
  s_sum : float;
  s_min : float;  (** [infinity] when empty *)
  s_max : float;  (** [neg_infinity] when empty *)
  s_buckets : int array;
}

val snapshot : t -> snapshot
(** Point-in-time merge of the shards. *)

val merge : snapshot -> snapshot -> snapshot
(** Combine snapshots of the same shape; associative and commutative.
    @raise Invalid_argument on mismatched bucket shapes. *)

val snapshot_bucket : snapshot -> float -> int
(** The bucket an exact value falls into, for comparing estimates against
    an oracle. *)

val quantile : snapshot -> float -> float
(** Estimate the [q]-quantile ([0..1]); [0.0] on an empty snapshot,
    exact max for [q >= 1.0]. *)

val mean : snapshot -> float
