(** Request tracing: spans with named phases over a monotonic clock, kept
    in a fixed-size ring buffer of recent traces.

    A worker thread opens a span per request ({!start}), marks it current
    for the thread, and accumulates phase durations — directly
    ({!add_phase}) or from code that has no reference to the span
    ({!add_phase_current}, used by the lock manager and the consistency
    checker deep inside the stack).  {!finish} stamps the total and pushes
    the completed trace into the ring under a mutex; recording durations on
    the span itself needs no lock because a span belongs to one thread.

    The ring holds the most recent [capacity] traces; older ones are
    overwritten.  Disabled tracers ([~on:false]) hand out a dead span and
    every operation short-circuits. *)

type phase = { ph_name : string; ph_seconds : float }

type trace = {
  tr_label : string;  (** request verb: [@open], [command], ... *)
  tr_detail : string;  (** variant or free-form context *)
  tr_start : float;  (** wall-clock timestamp *)
  tr_seconds : float;  (** total duration (monotonic clock) *)
  tr_status : string;  (** ok | err | busy *)
  tr_phases : phase list;  (** in recording order *)
}

type span = {
  sp_live : bool;
  sp_label : string;
  mutable sp_detail : string;
  sp_wall : float;
  sp_t0 : float;
  mutable sp_phases : phase list;  (** reversed *)
}

type t = {
  on : bool;
  clock : unit -> float;  (** monotonic; durations only *)
  capacity : int;
  mu : Mutex.t;  (** guards [ring], [next], [current] *)
  ring : trace option array;
  mutable next : int;
  current : (int, span) Hashtbl.t;  (** thread id → its open span *)
}

let dead_span =
  {
    sp_live = false;
    sp_label = "";
    sp_detail = "";
    sp_wall = 0.0;
    sp_t0 = 0.0;
    sp_phases = [];
  }

let create ?(on = true) ?(capacity = 64) ?(clock = Clock.now) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    on;
    clock;
    capacity;
    mu = Mutex.create ();
    ring = Array.make capacity None;
    next = 0;
    current = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(** Open a span and make it the calling thread's current one. *)
let start t ~label ?(detail = "") () =
  if not t.on then dead_span
  else begin
    let sp =
      {
        sp_live = true;
        sp_label = label;
        sp_detail = detail;
        sp_wall = Clock.wall ();
        sp_t0 = t.clock ();
        sp_phases = [];
      }
    in
    locked t (fun () ->
        Hashtbl.replace t.current (Thread.id (Thread.self ())) sp);
    sp
  end

let set_detail sp detail = if sp.sp_live then sp.sp_detail <- detail

let add_phase sp name seconds =
  if sp.sp_live then
    sp.sp_phases <- { ph_name = name; ph_seconds = seconds } :: sp.sp_phases

(** Time [f] as a phase of [sp] (still recorded if [f] raises). *)
let phase t sp name f =
  if not sp.sp_live then f ()
  else begin
    let t0 = t.clock () in
    Fun.protect
      ~finally:(fun () -> add_phase sp name (t.clock () -. t0))
      f
  end

(** Add a phase to the calling thread's current span, if any — lets code
    far from the request loop (locks, the consistency checker) contribute
    without threading the span through every signature. *)
let add_phase_current t name seconds =
  if t.on then
    let sp =
      locked t (fun () ->
          Hashtbl.find_opt t.current (Thread.id (Thread.self ())))
    in
    match sp with Some sp -> add_phase sp name seconds | None -> ()

(** Close the span: drop it as the thread's current span and push the
    completed trace into the ring. *)
let finish t sp ~status =
  if sp.sp_live then begin
    let tr =
      {
        tr_label = sp.sp_label;
        tr_detail = sp.sp_detail;
        tr_start = sp.sp_wall;
        tr_seconds = t.clock () -. sp.sp_t0;
        tr_status = status;
        tr_phases = List.rev sp.sp_phases;
      }
    in
    locked t (fun () ->
        (match Hashtbl.find_opt t.current (Thread.id (Thread.self ())) with
        | Some cur when cur == sp ->
            Hashtbl.remove t.current (Thread.id (Thread.self ()))
        | _ -> ());
        t.ring.(t.next mod t.capacity) <- Some tr;
        t.next <- t.next + 1)
  end

(** The retained traces, newest first. *)
let recent t =
  locked t (fun () ->
      let n = min t.next t.capacity in
      List.init n (fun i ->
          t.ring.((t.next - 1 - i + t.capacity) mod t.capacity))
      |> List.filter_map Fun.id)
