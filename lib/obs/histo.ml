(** Log-bucketed histograms for latency-style measurements.

    Values are bucketed on a logarithmic grid ([per_decade] buckets per
    power of ten between [lo] and [hi], plus an underflow and an overflow
    bucket), so quantile estimates carry a bounded {e relative} error — the
    right trade for latencies spanning microseconds to seconds.  Recording
    is sharded by thread id (one small mutex per shard, threads almost
    never share one), and {!snapshot} merges the shards into an immutable,
    mergeable value: snapshots of the same shape form a commutative monoid
    under {!merge}, so per-process histograms can be combined across
    scrapes or servers.

    Quantiles are read from a snapshot: the estimate for an interior bucket
    is its geometric midpoint; the underflow and overflow buckets answer
    with the exact observed minimum and maximum, so [quantile s 1.0] is the
    true max. *)

let shard_count = 8

type shard = {
  mu : Mutex.t;
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

type t = {
  h_name : string;
  h_on : bool;
  h_lo : float;  (** lower edge of the first interior bucket *)
  h_hi : float;  (** upper edge of the last interior bucket *)
  h_per_decade : int;
  h_n : int;  (** total buckets, including underflow (0) and overflow (n-1) *)
  h_shards : shard array;
}

let fresh_shard n =
  {
    mu = Mutex.create ();
    buckets = Array.make n 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

(** [create name] — value domain defaults to seconds: 1µs .. 1000s with 10
    buckets per decade (≈26% bucket width). *)
let create ?(on = true) ?(lo = 1e-6) ?(hi = 1e3) ?(per_decade = 10) name =
  if not (lo > 0.0 && hi > lo && per_decade > 0) then
    invalid_arg "Histo.create: need 0 < lo < hi and per_decade > 0";
  let interior =
    int_of_float (ceil (Float.log10 (hi /. lo) *. float_of_int per_decade))
  in
  let n = interior + 2 in
  {
    h_name = name;
    h_on = on;
    h_lo = lo;
    h_hi = hi;
    h_per_decade = per_decade;
    h_n = n;
    h_shards = Array.init shard_count (fun _ -> fresh_shard n);
  }

let name t = t.h_name

let bucket_index t v =
  if v < t.h_lo then 0
  else if v >= t.h_hi then t.h_n - 1
  else
    let i =
      1 + int_of_float (Float.log10 (v /. t.h_lo) *. float_of_int t.h_per_decade)
    in
    (* float rounding at bucket edges can land one off; clamp to interior *)
    max 1 (min (t.h_n - 2) i)

let observe t v =
  if t.h_on then begin
    let s = t.h_shards.(Thread.id (Thread.self ()) land (shard_count - 1)) in
    Mutex.lock s.mu;
    s.buckets.(bucket_index t v) <- s.buckets.(bucket_index t v) + 1;
    s.count <- s.count + 1;
    s.sum <- s.sum +. v;
    if v < s.min_v then s.min_v <- v;
    if v > s.max_v then s.max_v <- v;
    Mutex.unlock s.mu
  end

(* --- snapshots ------------------------------------------------------------ *)

type snapshot = {
  s_lo : float;
  s_hi : float;
  s_per_decade : int;
  s_count : int;
  s_sum : float;
  s_min : float;  (** [infinity] when empty *)
  s_max : float;  (** [neg_infinity] when empty *)
  s_buckets : int array;
}

let empty_like t =
  {
    s_lo = t.h_lo;
    s_hi = t.h_hi;
    s_per_decade = t.h_per_decade;
    s_count = 0;
    s_sum = 0.0;
    s_min = infinity;
    s_max = neg_infinity;
    s_buckets = Array.make t.h_n 0;
  }

let snapshot t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.mu;
      let r =
        {
          acc with
          s_count = acc.s_count + s.count;
          s_sum = acc.s_sum +. s.sum;
          s_min = Float.min acc.s_min s.min_v;
          s_max = Float.max acc.s_max s.max_v;
          s_buckets = Array.mapi (fun i n -> n + s.buckets.(i)) acc.s_buckets;
        }
      in
      Mutex.unlock s.mu;
      r)
    (empty_like t) t.h_shards

(** Combine two snapshots of the same shape (same [lo]/[hi]/[per_decade]).
    Associative and commutative, with the empty snapshot as identity. *)
let merge a b =
  if
    a.s_lo <> b.s_lo || a.s_hi <> b.s_hi || a.s_per_decade <> b.s_per_decade
    || Array.length a.s_buckets <> Array.length b.s_buckets
  then invalid_arg "Histo.merge: incompatible bucket shapes";
  {
    a with
    s_count = a.s_count + b.s_count;
    s_sum = a.s_sum +. b.s_sum;
    s_min = Float.min a.s_min b.s_min;
    s_max = Float.max a.s_max b.s_max;
    s_buckets = Array.mapi (fun i n -> n + b.s_buckets.(i)) a.s_buckets;
  }

(* The bucket an exact value of this snapshot's shape falls into; mirrors
   [bucket_index] so tests can compare estimate vs oracle bucket-wise. *)
let snapshot_bucket s v =
  let n = Array.length s.s_buckets in
  if v < s.s_lo then 0
  else if v >= s.s_hi then n - 1
  else
    let i =
      1 + int_of_float (Float.log10 (v /. s.s_lo) *. float_of_int s.s_per_decade)
    in
    max 1 (min (n - 2) i)

(** Quantile estimate for [q] in [0..1]: geometric midpoint of the bucket
    holding the rank-⌈q·count⌉ value; the underflow/overflow buckets answer
    with the observed min/max.  [0.0] on an empty snapshot. *)
let quantile s q =
  if s.s_count = 0 then 0.0
  else if q >= 1.0 then s.s_max
  else
    let rank = max 1 (int_of_float (ceil (q *. float_of_int s.s_count))) in
    let n = Array.length s.s_buckets in
    let rec walk i cum =
      if i >= n then s.s_max
      else
        let cum = cum + s.s_buckets.(i) in
        if cum >= rank then
          if i = 0 then s.s_min
          else if i = n - 1 then s.s_max
          else
            s.s_lo
            *. Float.pow 10.0
                 ((float_of_int i -. 0.5) /. float_of_int s.s_per_decade)
        else walk (i + 1) cum
    in
    walk 0 0

let mean s = if s.s_count = 0 then 0.0 else s.s_sum /. float_of_int s.s_count
