(** The observability registry: one value tying together the counters and
    gauges ({!Metrics}), the latency histograms ({!Histo}), and the request
    tracer ({!Trace}) of a process, plus point-in-time snapshots of all of
    them for {!Export}.

    A registry created with [~on:false] (or the shared {!noop}) hands out
    disabled instruments: every hook in the instrumented code compiles down
    to a load and a branch, which is what the server's [--no-obs] flag
    relies on. *)

type t = {
  on : bool;
  metrics : Metrics.registry;
  mu : Mutex.t;  (** guards histogram registration *)
  mutable histos : Histo.t list;
  tracer : Trace.t;
  started : float;
}

let create ?(on = true) ?(trace_capacity = 64) () =
  {
    on;
    metrics = Metrics.create ~on ();
    mu = Mutex.create ();
    histos = [];
    tracer = Trace.create ~on ~capacity:trace_capacity ();
    started = Clock.wall ();
  }

(** The disabled registry: share it wherever observability is off. *)
let noop = create ~on:false ()

let enabled t = t.on
let counter t name = Metrics.counter t.metrics name
let gauge t name = Metrics.gauge t.metrics name

(* read-only probes; [None] when nothing registered the instrument *)
let counter_value t name = Metrics.find_counter t.metrics name
let gauge_value t name = Metrics.find_gauge t.metrics name
let tracer t = t.tracer

(** Find-or-create a histogram; the optional bucket shape only applies on
    first creation. *)
let histo ?lo ?hi ?per_decade t name =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      match List.find_opt (fun h -> Histo.name h = name) t.histos with
      | Some h -> h
      | None ->
          let h = Histo.create ~on:t.on ?lo ?hi ?per_decade name in
          t.histos <- h :: t.histos;
          h)

type snapshot = {
  sn_at : float;  (** wall-clock time of the snapshot *)
  sn_uptime : float;
  sn_counters : (string * int) list;  (** sorted by name *)
  sn_gauges : (string * int) list;
  sn_histos : (string * Histo.snapshot) list;
  sn_notes : (string * string) list;  (** caller-supplied dynamic lines *)
  sn_traces : Trace.trace list;  (** newest first *)
}

let snapshot ?(notes = []) t =
  let at = Clock.wall () in
  let histos =
    Mutex.lock t.mu;
    let hs = t.histos in
    Mutex.unlock t.mu;
    hs
    |> List.map (fun h -> (Histo.name h, Histo.snapshot h))
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    sn_at = at;
    sn_uptime = at -. t.started;
    sn_counters = Metrics.counters t.metrics;
    sn_gauges = Metrics.gauges t.metrics;
    sn_histos = histos;
    sn_notes = notes;
    sn_traces = Trace.recent t.tracer;
  }
