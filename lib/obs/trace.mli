(** Request tracing: per-thread spans with named phases over a monotonic
    clock, retained in a fixed-size lock-protected ring buffer. *)

type phase = { ph_name : string; ph_seconds : float }

type trace = {
  tr_label : string;
  tr_detail : string;
  tr_start : float;  (** wall-clock timestamp *)
  tr_seconds : float;
  tr_status : string;
  tr_phases : phase list;  (** in recording order *)
}

type span
type t

val create : ?on:bool -> ?capacity:int -> ?clock:(unit -> float) -> unit -> t
(** [capacity] traces are retained (default 64); [clock] must be monotonic
    (default {!Clock.now}).  With [~on:false] every operation is a no-op. *)

val start : t -> label:string -> ?detail:string -> unit -> span
(** Open a span and make it the calling thread's current span. *)

val set_detail : span -> string -> unit
val add_phase : span -> string -> float -> unit

val phase : t -> span -> string -> (unit -> 'a) -> 'a
(** Time the thunk as a named phase (recorded even if it raises). *)

val add_phase_current : t -> string -> float -> unit
(** Add a phase to the calling thread's current span, if one is open. *)

val finish : t -> span -> status:string -> unit
(** Stamp the total duration and push the trace into the ring. *)

val recent : t -> trace list
(** Retained traces, newest first. *)
