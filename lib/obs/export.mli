(** Stable text and JSON renderings of a {!Registry.snapshot}. *)

val to_text : Registry.snapshot -> string
(** Human-oriented, aligned, deterministic; latencies in ms. *)

val to_json : Registry.snapshot -> string
(** One JSON object: counters, gauges, histogram quantiles, notes, recent
    traces.  Latencies in seconds; no NaN/infinity ever emitted. *)
