(** Stable text and JSON renderings of a {!Registry.snapshot}. *)

val to_text : Registry.snapshot -> string
(** Human-oriented, aligned, deterministic; latencies in ms. *)

val to_json : Registry.snapshot -> string
(** One JSON object: counters, gauges, histogram quantiles, notes, recent
    traces.  Latencies in seconds; no NaN/infinity ever emitted. *)

val json_string : string -> string
(** Quote + escape one string as a JSON string literal. *)

val merge_labeled_json : (string * string) list -> string
(** Combine already-rendered JSON documents into one object keyed by
    label — how a router merges per-shard {!to_json} snapshots (each
    value must itself be valid JSON). *)

val merge_labeled_text : (string * string) list -> string
(** Concatenate already-rendered text sections under [== label ==]
    headers — the text-format counterpart of {!merge_labeled_json}. *)
