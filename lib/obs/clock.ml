(** Clocks for observability.

    [wall] is the system clock (for timestamps shown to humans).  [now] is
    the monotonized wall clock used for every duration measurement: it never
    goes backwards, even across an NTP step, so a span can never report a
    negative latency.  Monotonization is a single global high-water mark
    maintained with a CAS loop — wait-free in practice and safe from any
    thread. *)

let wall = Unix.gettimeofday

let last = Atomic.make 0.0

(** Monotonized wall clock: max of the current wall time and every value
    previously returned. *)
let now () =
  let t = wall () in
  let rec publish () =
    let l = Atomic.get last in
    if t > l then if Atomic.compare_and_set last l t then t else publish ()
    else l
  in
  publish ()

(** [monotonize clock] is [clock] clamped to its own (private) high-water
    mark — for tests that inject synthetic clocks. *)
let monotonize clock =
  let hw = Atomic.make neg_infinity in
  fun () ->
    let t = clock () in
    let rec publish () =
      let l = Atomic.get hw in
      if t > l then if Atomic.compare_and_set hw l t then t else publish ()
      else l
    in
    publish ()
