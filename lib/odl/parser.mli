(** Recursive-descent parser for the extended ODL concrete syntax.

    The accepted grammar is documented in the implementation header; in
    short: an optional [schema Name { ... };] wrapper around interface
    definitions with extents, keys, attributes, association / part-of /
    instance-of relationships (with mandatory inverse declarations), and
    operation signatures. *)

exception Parse_error of string * int * int
(** [(message, line, column)]. *)

val parse_schema : string -> Types.schema
(** Parse a complete schema (named or anonymous).
    @raise Parse_error on syntax errors.
    @raise Lexer.Lex_error on invalid characters. *)

val parse_interface_string : string -> Types.interface
(** Parse exactly one interface definition. *)

(** {1 Building blocks}

    Exposed for the modification-language parser, which embeds ODL domain
    types and relationship targets in its operation arguments. *)

val parse_domain : Token_stream.t -> Types.domain_type
val collection_of_ident : string -> Types.collection_kind option
val base_of_ident : string -> Types.domain_type option
val parse_interface : Token_stream.t -> Types.interface
