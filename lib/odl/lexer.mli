(** Lexer for the extended ODL syntax and the modification language. *)

type token =
  | Ident of string
  | Quoted of string
      (** a double-quoted identifier (backslash escapes for quote, backslash,
          newline, CR, tab); names that are not plain identifiers round-trip
          through it *)
  | Int of int
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Langle
  | Rangle
  | Colon
  | Coloncolon
  | Semi
  | Comma
  | Eof

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int
(** [(message, line, column)]. *)

val token_to_string : token -> string

val tokenize : string -> located list
(** Tokenize a source string; the result always ends with {!Eof}.  Comments
    are [// ...] to end of line and non-nesting [/* ... */].
    @raise Lex_error on invalid characters or unterminated comments. *)
