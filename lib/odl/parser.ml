(** Recursive-descent parser for the extended ODL concrete syntax.

    Grammar, with [{ x }] meaning zero or more repetitions of [x] and
    [[ x ]] meaning an optional [x]:
    {v
    schema      ::= 'schema' IDENT '{' { interface } '}' [ ';' ]
                  | { interface }                      -- anonymous schema
    interface   ::= 'interface' IDENT [ ':' IDENT { ',' IDENT } ]
                    '{' { member } '}' ';'
    member      ::= 'extent' IDENT ';'
                  | ('key'|'keys') key ';'
                  | 'attribute' domain IDENT ';'
                  | [ rel-kind ] 'relationship' target IDENT
                    'inverse' IDENT '::' IDENT [ order-by ] ';'
                  | domain IDENT '(' [ arg { ',' arg } ] ')'
                    [ 'raises' '(' IDENT { ',' IDENT } ')' ] ';'
    rel-kind    ::= 'part_of' | 'instance_of'
    target      ::= IDENT | coll '<' IDENT '>'
    domain      ::= base [ '<' INT '>' ] | coll '<' domain '>'
    base        ::= 'int'|'float'|'string'|'char'|'boolean'|'void'|IDENT
    coll        ::= 'set'|'list'|'bag'|'array'
    key         ::= IDENT | '(' IDENT { ',' IDENT } ')'
    order-by    ::= 'order_by' '(' IDENT { ',' IDENT } ')'
    v} *)

open Types
open Lexer
module T = Token_stream

exception Parse_error = T.Parse_error

let collection_of_ident = function
  | "set" -> Some Set
  | "list" -> Some List
  | "bag" -> Some Bag
  | "array" -> Some Array
  | _ -> None

let base_of_ident = function
  | "int" | "long" | "short" -> Some D_int
  | "float" | "double" -> Some D_float
  | "string" -> Some D_string
  | "char" -> Some D_char
  | "boolean" -> Some D_boolean
  | "void" -> Some D_void
  | _ -> None

let rec parse_domain t =
  let id = T.ident t in
  match collection_of_ident id with
  | Some k ->
      T.expect t Langle;
      let inner = parse_domain t in
      T.expect t Rangle;
      D_collection (k, inner)
  | None -> (
      match base_of_ident id with
      | Some d -> d
      | None -> D_named id)

(* 'attribute' domain ('<' size '>')? name ';' — the optional size follows
   the base domain, e.g. [attribute string<30> room;]. *)
let parse_attribute t =
  let id = T.ident t in
  let dom, size =
    match collection_of_ident id with
    | Some k ->
        T.expect t Langle;
        let inner = parse_domain t in
        T.expect t Rangle;
        (D_collection (k, inner), None)
    | None -> (
        let base =
          match base_of_ident id with Some d -> d | None -> D_named id
        in
        match T.peek t with
        | Langle ->
            T.advance t;
            let n = T.int t in
            T.expect t Rangle;
            (base, Some n)
        | _ -> (base, None))
  in
  let name = T.ident t in
  T.expect t Semi;
  { attr_name = name; attr_type = dom; attr_size = size }

let parse_rel_target t =
  let id = T.ident t in
  match collection_of_ident id with
  | Some k ->
      T.expect t Langle;
      let target = T.ident t in
      T.expect t Rangle;
      (target, Some k)
  | None -> (id, None)

let parse_order_by t =
  if T.eat_ident t "order_by" then T.paren_list t T.ident else []

let parse_relationship kind t =
  let target, card = parse_rel_target t in
  let name = T.ident t in
  T.expect_ident t "inverse";
  let inv_type = T.ident t in
  T.expect t Coloncolon;
  let inv_path = T.ident t in
  if not (String.equal inv_type target) then
    T.error t
      (Printf.sprintf
         "inverse of relationship %s must be qualified by its target %s, not %s"
         name target inv_type);
  let order_by = parse_order_by t in
  T.expect t Semi;
  {
    rel_kind = kind;
    rel_name = name;
    rel_target = target;
    rel_inverse = inv_path;
    rel_card = card;
    rel_order_by = order_by;
  }

let parse_key t =
  let key =
    match T.peek t with
    | Lparen -> T.paren_list t T.ident
    | _ -> [ T.ident t ]
  in
  T.expect t Semi;
  key

let parse_argument t =
  let ty = parse_domain t in
  let name = T.ident t in
  { arg_name = name; arg_type = ty }

(* Operation members start with a domain type followed by a name and '('. *)
let parse_operation_tail t return name =
  let args = T.paren_list t parse_argument in
  let raises =
    if T.eat_ident t "raises" then T.paren_list t T.ident else []
  in
  T.expect t Semi;
  { op_name = name; op_return = return; op_args = args; op_raises = raises }

type member =
  | M_extent of string
  | M_key of string list
  | M_attr of attribute
  | M_rel of relationship
  | M_op of operation

let parse_member t =
  match T.peek t with
  | Ident "extent" ->
      T.advance t;
      let e = T.ident t in
      T.expect t Semi;
      M_extent e
  | Ident ("key" | "keys") ->
      T.advance t;
      M_key (parse_key t)
  | Ident "attribute" ->
      T.advance t;
      M_attr (parse_attribute t)
  | Ident "relationship" ->
      T.advance t;
      M_rel (parse_relationship Association t)
  | Ident "part_of" ->
      T.advance t;
      T.expect_ident t "relationship";
      M_rel (parse_relationship Part_of t)
  | Ident "instance_of" ->
      T.advance t;
      T.expect_ident t "relationship";
      M_rel (parse_relationship Instance_of t)
  | Ident _ ->
      let return = parse_domain t in
      let name = T.ident t in
      M_op (parse_operation_tail t return name)
  | tok ->
      T.error t
        (Printf.sprintf "expected interface member, found %s"
           (Lexer.token_to_string tok))

let parse_interface t =
  T.expect_ident t "interface";
  let name = T.ident t in
  let supers = if T.eat t Colon then T.comma_list t T.ident else [] in
  T.expect t Lbrace;
  let rec members acc =
    if T.eat t Rbrace then List.rev acc else members (parse_member t :: acc)
  in
  let ms = members [] in
  ignore (T.eat t Semi);
  let init = { (empty_interface name) with i_supertypes = supers } in
  List.fold_left
    (fun i m ->
      match m with
      | M_extent e -> { i with i_extent = Some e }
      | M_key k -> { i with i_keys = i.i_keys @ [ k ] }
      | M_attr a -> { i with i_attrs = i.i_attrs @ [ a ] }
      | M_rel r -> { i with i_rels = i.i_rels @ [ r ] }
      | M_op o -> { i with i_ops = i.i_ops @ [ o ] })
    init ms

let parse_schema_stream t =
  let named = T.eat_ident t "schema" in
  let name, delim =
    if named then begin
      let n = T.ident t in
      T.expect t Lbrace;
      (n, true)
    end
    else ("schema", false)
  in
  let rec interfaces acc =
    match T.peek t with
    | Ident "interface" -> interfaces (parse_interface t :: acc)
    | _ -> List.rev acc
  in
  let ifaces = interfaces [] in
  if delim then begin
    T.expect t Rbrace;
    ignore (T.eat t Semi)
  end;
  (match T.peek t with
  | Eof -> ()
  | tok ->
      T.error t
        (Printf.sprintf "unexpected %s after schema" (Lexer.token_to_string tok)));
  { s_name = name; s_interfaces = ifaces }

(** Parse a full schema from ODL source text.
    @raise Lexer.Lex_error on bad characters.
    @raise Parse_error on syntax errors. *)
let parse_schema src = parse_schema_stream (T.of_string src)

(** Parse a single interface definition (used by tests and the designer). *)
let parse_interface_string src =
  let t = T.of_string src in
  let i = parse_interface t in
  T.expect t Eof;
  i
