(** Identifier conventions shared by the ODL parser and the modification
    language. *)

val is_ident_start : char -> bool
val is_ident_char : char -> bool

val is_valid : string -> bool
(** Starts with a letter or underscore, continues with letters, digits,
    underscores. *)

val odl_keywords : string list
(** Keywords of the extended ODL concrete syntax. *)

val is_keyword : string -> bool

val needs_quoting : string -> bool
(** Whether the name must be quoted to survive a print/parse round trip. *)

val escape_quoted : string -> string
(** Escape the content of a quoted identifier (quote, backslash, newline,
    CR, tab). *)

val quoted : string -> string
(** The name as a double-quoted identifier, with escapes. *)

val to_source : string -> string
(** The name in concrete syntax: itself when a plain identifier, {!quoted}
    otherwise.  Parses back to the same string through the lexer. *)
