(** Identifier conventions shared by the ODL parser and the modification
    language. *)

val is_ident_start : char -> bool
val is_ident_char : char -> bool

val is_valid : string -> bool
(** Starts with a letter or underscore, continues with letters, digits,
    underscores. *)

val odl_keywords : string list
(** Keywords of the extended ODL concrete syntax. *)

val is_keyword : string -> bool
