(** Identifier conventions shared by the ODL parser and the modification
    language: identifiers start with a letter or underscore and continue with
    letters, digits, underscores. *)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_valid s =
  s <> ""
  && is_ident_start s.[0]
  && String.for_all is_ident_char s

(** Keywords of the extended ODL concrete syntax; they cannot be used as
    identifiers. *)
let odl_keywords =
  [
    "schema"; "interface"; "extent"; "key"; "keys"; "attribute";
    "relationship"; "part_of"; "instance_of"; "inverse"; "order_by";
    "raises"; "set"; "list"; "bag"; "array"; "int"; "float"; "string";
    "char"; "boolean"; "void";
  ]

let is_keyword s = List.mem s odl_keywords

(** Whether [s] must be printed as a quoted identifier to survive a
    print/parse round trip: not a plain identifier (empty, or containing
    spaces, newlines, punctuation, ...), or a keyword (a bare [set] would
    re-lex as the collection keyword, not a name). *)
let needs_quoting s = not (is_valid s) || is_keyword s

let escape_quoted s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quoted s = "\"" ^ escape_quoted s ^ "\""

(** [s] in concrete syntax: itself when a plain identifier, quoted (and
    escaped) otherwise. *)
let to_source s = if needs_quoting s then quoted s else s
