(** Identifier conventions shared by the ODL parser and the modification
    language: identifiers start with a letter or underscore and continue with
    letters, digits, underscores. *)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_valid s =
  s <> ""
  && is_ident_start s.[0]
  && String.for_all is_ident_char s

(** Keywords of the extended ODL concrete syntax; they cannot be used as
    identifiers. *)
let odl_keywords =
  [
    "schema"; "interface"; "extent"; "key"; "keys"; "attribute";
    "relationship"; "part_of"; "instance_of"; "inverse"; "order_by";
    "raises"; "set"; "list"; "bag"; "array"; "int"; "float"; "string";
    "char"; "boolean"; "void";
  ]

let is_keyword s = List.mem s odl_keywords
