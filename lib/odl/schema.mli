(** Queries and functional updates over schemas.

    All updates are pure: they return a new schema and preserve declaration
    order.  Hierarchy traversals are cycle-safe (they terminate even on
    invalid, cyclic ISA graphs), so they can be used from the validator
    itself. *)

open Types

(** {1 Interface lookup} *)

val find_interface : schema -> type_name -> interface option
val mem_interface : schema -> type_name -> bool

exception Unknown_interface of type_name

val get_interface : schema -> type_name -> interface
(** @raise Unknown_interface when absent. *)

val interface_names : schema -> type_name list
(** In declaration order. *)

(** {1 Functional updates} *)

val update_interface : schema -> type_name -> (interface -> interface) -> schema
(** Replace the named interface by a function of it.
    @raise Unknown_interface when absent. *)

val add_interface : schema -> interface -> schema
(** Appends; the caller must ensure the name is fresh. *)

val remove_interface : schema -> type_name -> schema
(** No-op when absent. *)

(** {1 Member lookup} *)

val find_attr : interface -> string -> attribute option
val find_rel : interface -> string -> relationship option
val find_op : interface -> string -> operation option
val has_attr : interface -> string -> bool
val has_rel : interface -> string -> bool
val has_op : interface -> string -> bool

(** {1 Generalization hierarchy} *)

val direct_supertypes : schema -> type_name -> type_name list
(** Declared supertypes that exist in the schema. *)

val direct_subtypes : schema -> type_name -> type_name list

val ancestors : schema -> type_name -> type_name list
(** Proper transitive supertypes, nearest first, duplicate-free. *)

val descendants : schema -> type_name -> type_name list
(** Proper transitive subtypes. *)

val same_isa_line : schema -> type_name -> type_name -> bool
(** Whether two interfaces lie on one ancestor/descendant line (including
    equality) — the paper's semantic-stability relation. *)

val isa_roots : schema -> type_name list
(** Interfaces without (existing) supertypes. *)

(** {1 Inheritance-aware visibility}

    A redefinition in a subtype shadows the same-named member above it. *)

val visible_attrs : schema -> type_name -> attribute list
val visible_rels : schema -> type_name -> relationship list
val visible_ops : schema -> type_name -> operation list

(** {1 Relationship queries} *)

val all_relationships : schema -> (interface * relationship) list
(** Every relationship end with its owning interface. *)

val relationships_targeting : schema -> type_name -> (interface * relationship) list

val inverse_of : schema -> relationship -> (interface * relationship) option
(** The declared inverse end, when present on the target. *)

(** {1 Size} *)

val count_constructs : schema -> int * int * int
(** (attributes, relationship ends, operations). *)

val size : schema -> int
(** Interfaces + attributes + relationship ends + operations. *)
