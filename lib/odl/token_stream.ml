(** Imperative cursor over a token list, shared by the ODL parser and the
    modification-language parser. *)

open Lexer

type t = { mutable toks : located list }

exception Parse_error of string * int * int
(** [Parse_error (message, line, col)] *)

let of_string src = { toks = tokenize src }

let peek t = match t.toks with [] -> Eof | { tok; _ } :: _ -> tok

let pos t =
  match t.toks with [] -> (0, 0) | { line; col; _ } :: _ -> (line, col)

let error t msg =
  let line, col = pos t in
  raise (Parse_error (msg, line, col))

let advance t = match t.toks with [] -> () | _ :: rest -> t.toks <- rest

let next t =
  let tok = peek t in
  advance t;
  tok

let expect t tok =
  let got = peek t in
  if got <> tok then
    error t
      (Printf.sprintf "expected %s but found %s" (token_to_string tok)
         (token_to_string got))
  else advance t

let ident t =
  match peek t with
  | Ident s | Quoted s ->
      advance t;
      s
  | got -> error t (Printf.sprintf "expected identifier, found %s" (token_to_string got))

let int t =
  match peek t with
  | Int n ->
      advance t;
      n
  | got -> error t (Printf.sprintf "expected integer, found %s" (token_to_string got))

(** Accept the identifier [kw] if it is next; return whether it was. *)
let eat_ident t kw =
  match peek t with
  | Ident s when String.equal s kw ->
      advance t;
      true
  | _ -> false

(** Require the identifier [kw]. *)
let expect_ident t kw =
  if not (eat_ident t kw) then
    error t
      (Printf.sprintf "expected '%s', found %s" kw (token_to_string (peek t)))

let eat t tok =
  if peek t = tok then begin
    advance t;
    true
  end
  else false

(** [comma_list t elt] parses [elt (',' elt)*]. *)
let comma_list t elt =
  let rec more acc = if eat t Comma then more (elt t :: acc) else List.rev acc in
  more [ elt t ]

(** [paren_list t elt] parses ['(' elt (',' elt)* ')'] or ['(' ')'] as []. *)
let paren_list t elt =
  expect t Lparen;
  if eat t Rparen then []
  else
    let xs = comma_list t elt in
    expect t Rparen;
    xs
