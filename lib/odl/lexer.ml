(** Hand-written lexer shared by the ODL parser and (via the token type) the
    modification-language parser.  Comments are [// ...] to end of line and
    [/* ... */] (non-nesting). *)

type token =
  | Ident of string
  | Quoted of string
      (** a double-quoted identifier: any string, with backslash escapes for
          quote, backslash, newline, CR and tab; lets names that are not
          plain identifiers (spaces, newlines, leading [//], ...) round-trip
          through the concrete syntax, notably in persisted operation logs *)
  | Int of int
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Langle
  | Rangle
  | Colon
  | Coloncolon
  | Semi
  | Comma
  | Eof

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int
(** [Lex_error (message, line, col)] *)

let token_to_string = function
  | Ident s -> s
  | Quoted s -> Names.quoted s
  | Int n -> string_of_int n
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lparen -> "("
  | Rparen -> ")"
  | Langle -> "<"
  | Rangle -> ">"
  | Colon -> ":"
  | Coloncolon -> "::"
  | Semi -> ";"
  | Comma -> ","
  | Eof -> "<eof>"

(** Tokenize [src] into a list of located tokens ending with [Eof]. *)
let tokenize src =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let col pos = pos - !bol + 1 in
  let newline pos =
    incr line;
    bol := pos + 1
  in
  let rec skip_line_comment pos =
    if pos >= n then pos
    else if src.[pos] = '\n' then pos
    else skip_line_comment (pos + 1)
  in
  let rec skip_block_comment pos =
    if pos + 1 >= n then
      raise (Lex_error ("unterminated comment", !line, col pos))
    else if src.[pos] = '*' && src.[pos + 1] = '/' then pos + 2
    else begin
      if src.[pos] = '\n' then newline pos;
      skip_block_comment (pos + 1)
    end
  in
  let rec ident_end pos =
    if pos < n && Names.is_ident_char src.[pos] then ident_end (pos + 1) else pos
  in
  let rec int_end pos =
    if pos < n && src.[pos] >= '0' && src.[pos] <= '9' then int_end (pos + 1)
    else pos
  in
  (* scan a quoted identifier starting after the opening double quote; raw
     newlines are rejected so a quoted name can never span lines *)
  let quoted_end start =
    let b = Buffer.create 8 in
    let rec go pos =
      if pos >= n then
        raise (Lex_error ("unterminated quoted identifier", !line, col start))
      else
        match src.[pos] with
        | '"' -> (Buffer.contents b, pos + 1)
        | '\n' ->
            raise
              (Lex_error ("newline in quoted identifier", !line, col pos))
        | '\\' ->
            if pos + 1 >= n then
              raise
                (Lex_error ("unterminated quoted identifier", !line, col start))
            else begin
              (match src.[pos + 1] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | c ->
                  raise
                    (Lex_error
                       ( Printf.sprintf "unknown escape '\\%c' in quoted identifier" c,
                         !line, col pos )));
              go (pos + 2)
            end
        | c ->
            Buffer.add_char b c;
            go (pos + 1)
    in
    go start
  in
  let rec go pos acc =
    if pos >= n then List.rev ({ tok = Eof; line = !line; col = col pos } :: acc)
    else
      let c = src.[pos] in
      let emit tok len =
        go (pos + len) ({ tok; line = !line; col = col pos } :: acc)
      in
      match c with
      | ' ' | '\t' | '\r' -> go (pos + 1) acc
      | '\n' ->
          newline pos;
          go (pos + 1) acc
      | '/' when pos + 1 < n && src.[pos + 1] = '/' ->
          go (skip_line_comment pos) acc
      | '/' when pos + 1 < n && src.[pos + 1] = '*' ->
          go (skip_block_comment (pos + 2)) acc
      | '"' ->
          let s, e = quoted_end (pos + 1) in
          go e ({ tok = Quoted s; line = !line; col = col pos } :: acc)
      | '{' -> emit Lbrace 1
      | '}' -> emit Rbrace 1
      | '(' -> emit Lparen 1
      | ')' -> emit Rparen 1
      | '<' -> emit Langle 1
      | '>' -> emit Rangle 1
      | ';' -> emit Semi 1
      | ',' -> emit Comma 1
      | ':' when pos + 1 < n && src.[pos + 1] = ':' -> emit Coloncolon 2
      | ':' -> emit Colon 1
      | c when Names.is_ident_start c ->
          let e = ident_end pos in
          emit (Ident (String.sub src pos (e - pos))) (e - pos)
      | c when c >= '0' && c <= '9' ->
          let e = int_end pos in
          emit (Int (int_of_string (String.sub src pos (e - pos)))) (e - pos)
      | c ->
          raise
            (Lex_error (Printf.sprintf "unexpected character %C" c, !line, col pos))
  in
  go 0 []
