(** Pretty printer for the extended ODL concrete syntax.  Output is accepted
    by {!Parser.parse_schema}; the round trip is the identity on well-formed
    schemas (tested by property). *)

open Types

let rec pp_domain ppf = function
  | D_int -> Fmt.string ppf "int"
  | D_float -> Fmt.string ppf "float"
  | D_string -> Fmt.string ppf "string"
  | D_char -> Fmt.string ppf "char"
  | D_boolean -> Fmt.string ppf "boolean"
  | D_void -> Fmt.string ppf "void"
  | D_named n -> Fmt.string ppf (Names.to_source n)
  | D_collection (k, t) ->
      Fmt.pf ppf "%s<%a>" (collection_kind_name k) pp_domain t

let pp_attribute ppf a =
  match a.attr_size with
  | Some n -> Fmt.pf ppf "attribute %a<%d> %s;" pp_domain a.attr_type n a.attr_name
  | None -> Fmt.pf ppf "attribute %a %s;" pp_domain a.attr_type a.attr_name

let rel_keyword = function
  | Association -> "relationship"
  | Part_of -> "part_of relationship"
  | Instance_of -> "instance_of relationship"

let pp_target ppf (r : relationship) =
  match r.rel_card with
  | None -> Fmt.string ppf r.rel_target
  | Some k -> Fmt.pf ppf "%s<%s>" (collection_kind_name k) r.rel_target

let pp_relationship ppf r =
  Fmt.pf ppf "%s %a %s inverse %s::%s" (rel_keyword r.rel_kind) pp_target r
    r.rel_name r.rel_target r.rel_inverse;
  if r.rel_order_by <> [] then
    Fmt.pf ppf " order_by (%a)" Fmt.(list ~sep:(any ", ") string) r.rel_order_by;
  Fmt.string ppf ";"

let pp_argument ppf a = Fmt.pf ppf "%a %s" pp_domain a.arg_type a.arg_name

let pp_operation ppf o =
  Fmt.pf ppf "%a %s(%a)" pp_domain o.op_return o.op_name
    Fmt.(list ~sep:(any ", ") pp_argument)
    o.op_args;
  if o.op_raises <> [] then
    Fmt.pf ppf " raises (%a)" Fmt.(list ~sep:(any ", ") string) o.op_raises;
  Fmt.string ppf ";"

let pp_key ppf = function
  | [ single ] -> Fmt.pf ppf "key %s;" single
  | parts -> Fmt.pf ppf "key (%a);" Fmt.(list ~sep:(any ", ") string) parts

let pp_interface ppf i =
  Fmt.pf ppf "@[<v 2>interface %s" i.i_name;
  if i.i_supertypes <> [] then
    Fmt.pf ppf " : %a" Fmt.(list ~sep:(any ", ") string) i.i_supertypes;
  Fmt.pf ppf " {";
  Option.iter (fun e -> Fmt.pf ppf "@,extent %s;" e) i.i_extent;
  List.iter (fun k -> Fmt.pf ppf "@,%a" pp_key k) i.i_keys;
  List.iter (fun a -> Fmt.pf ppf "@,%a" pp_attribute a) i.i_attrs;
  List.iter (fun r -> Fmt.pf ppf "@,%a" pp_relationship r) i.i_rels;
  List.iter (fun o -> Fmt.pf ppf "@,%a" pp_operation o) i.i_ops;
  Fmt.pf ppf "@]@,};"

let pp_schema ppf s =
  Fmt.pf ppf "@[<v 2>schema %s {" s.s_name;
  List.iter (fun i -> Fmt.pf ppf "@,%a" pp_interface i) s.s_interfaces;
  Fmt.pf ppf "@]@,};@."

let schema_to_string s = Fmt.str "%a" pp_schema s
let interface_to_string i = Fmt.str "@[<v>%a@]" pp_interface i
