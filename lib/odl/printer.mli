(** Pretty printer for the extended ODL concrete syntax.

    Output parses back through {!Parser.parse_schema}; the round trip is the
    identity on well-formed schemas and the printing is stable (printing the
    reparse reproduces the text). *)

open Types

val pp_domain : Format.formatter -> domain_type -> unit
val pp_attribute : Format.formatter -> attribute -> unit
val pp_relationship : Format.formatter -> relationship -> unit
val pp_operation : Format.formatter -> operation -> unit
val pp_interface : Format.formatter -> interface -> unit
val pp_schema : Format.formatter -> schema -> unit

val schema_to_string : schema -> string
val interface_to_string : interface -> string
