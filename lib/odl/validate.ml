(** Well-formedness checking for extended-ODL schemas.

    Diagnostics carry the paper's knowledge-component classification:
    structural, hierarchy, semantic and naming categories, at error or
    warning severity.  A schema is {e valid} when it has no error-level
    diagnostics; warnings are designer feedback.

    The checks themselves are written once, in the {!Checks} functor,
    against an abstract {!LOOKUP} backend.  The naive backend (this module's
    top-level [check]) resolves every lookup by scanning the interface list;
    [Core.Schema_index] instantiates the same functor over its adjacency
    maps, which is what makes the indexed checker's diagnostics equal to the
    naive checker's by construction (and differentially tested). *)

open Types

(* Note: no [@@deriving] on these types — a constructor named [Error] clashes
   with the [result] constructor re-exported by the deriving runtime. *)

type severity = Error | Warning

type category =
  | Structural  (** dangling references, inverse mismatches, end shapes *)
  | Hierarchy  (** cycles, multi-root components, branching chains *)
  | Semantic  (** keys, order-by, overriding, domains *)
  | Naming  (** uniqueness and identifier validity *)

type diagnostic = {
  severity : severity;
  category : category;
  subject : string;  (** the construct at fault, e.g. ["Employee.works_in"] *)
  message : string;
}

let equal_diagnostic (a : diagnostic) (b : diagnostic) = a = b
let compare_diagnostic (a : diagnostic) (b : diagnostic) = compare a b

let diag severity category subject message =
  { severity; category; subject; message }

let err = diag Error
let warn = diag Warning

let category_name = function
  | Structural -> "structural"
  | Hierarchy -> "hierarchy"
  | Semantic -> "semantic"
  | Naming -> "naming"

let pp_diagnostic_line ppf d =
  Fmt.pf ppf "%s [%s] %s: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    (category_name d.category)
    d.subject d.message

let duplicates key xs =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then Some k
      else begin
        Hashtbl.add seen k ();
        None
      end)
    xs

(* --- the abstract lookup backend ---------------------------------------- *)

module type LOOKUP = sig
  type t

  val schema : t -> schema
  val find_interface : t -> type_name -> interface option
  val mem_interface : t -> type_name -> bool

  val direct_supertypes : t -> type_name -> type_name list
  (** Declared supertypes that exist, in declaration order. *)

  val direct_subtypes : t -> type_name -> type_name list
  (** Interfaces listing the name as a supertype, in schema declaration
      order (check results depend on this order). *)

  val ancestors : t -> type_name -> type_name list
  val visible_attrs : t -> type_name -> attribute list
end

module Checks (L : LOOKUP) = struct
  (* --- naming ------------------------------------------------------------ *)

  (** Duplicate interface names; the only schema-global naming check. *)
  let naming_global t =
    duplicates (fun i -> i.i_name) (L.schema t).s_interfaces
    |> List.map (fun n -> err Naming n "duplicate interface name")

  (** Naming checks local to one interface (no schema context needed). *)
  let naming_interface i =
    let sub s = i.i_name ^ "." ^ s in
    let bad_ident =
      List.filter_map
        (fun name ->
          if not (Names.is_valid name) then
            Some (err Naming (sub name) "invalid identifier")
          else if Names.is_keyword name then
            Some (err Naming (sub name) "identifier is an ODL keyword")
          else None)
        (List.map (fun a -> a.attr_name) i.i_attrs
        @ List.map (fun r -> r.rel_name) i.i_rels
        @ List.map (fun o -> o.op_name) i.i_ops)
    in
    let dup msg names =
      duplicates Fun.id names |> List.map (fun n -> err Naming (sub n) msg)
    in
    (* attributes and relationships share the property namespace: both are
       traversed by dot paths, so a clash is ambiguous. *)
    let property_names =
      List.map (fun a -> a.attr_name) i.i_attrs
      @ List.map (fun r -> r.rel_name) i.i_rels
    in
    bad_ident
    @ dup "duplicate property name (attribute/relationship)" property_names
    @ dup "duplicate operation name" (List.map (fun o -> o.op_name) i.i_ops)

  (* --- structural --------------------------------------------------------- *)

  let structural_interface t i =
    let sub s = i.i_name ^ "." ^ s in
    let missing_supers =
      i.i_supertypes
      |> List.filter_map (fun s ->
             if L.mem_interface t s then None
             else Some (err Structural i.i_name ("unknown supertype " ^ s)))
    in
    let rel_checks r =
      let subject = sub r.rel_name in
      match L.find_interface t r.rel_target with
      | None -> [ err Structural subject ("unknown target type " ^ r.rel_target) ]
      | Some target -> (
          match Schema.find_rel target r.rel_inverse with
          | None ->
              [
                err Structural subject
                  (Printf.sprintf "inverse %s::%s does not exist" r.rel_target
                     r.rel_inverse);
              ]
          | Some inv ->
              let back =
                if not (String.equal inv.rel_target i.i_name) then
                  [
                    err Structural subject
                      (Printf.sprintf
                         "inverse %s::%s targets %s instead of %s" r.rel_target
                         r.rel_inverse inv.rel_target i.i_name);
                  ]
                else if not (String.equal inv.rel_inverse r.rel_name) then
                  [
                    err Structural subject
                      (Printf.sprintf "inverse %s::%s names %s as its inverse"
                         r.rel_target r.rel_inverse inv.rel_inverse);
                  ]
                else []
              in
              let kind =
                if inv.rel_kind <> r.rel_kind then
                  [
                    err Structural subject
                      "relationship and its inverse have different kinds";
                  ]
                else []
              in
              let shape =
                match r.rel_kind with
                | Association -> []
                | Part_of | Instance_of -> (
                    let what =
                      match r.rel_kind with
                      | Part_of -> "part-of"
                      | _ -> "instance-of"
                    in
                    match (r.rel_card, inv.rel_card) with
                    | Some _, None | None, Some _ -> []
                    | Some _, Some _ ->
                        [
                          err Structural subject
                            (what
                           ^ " relationship must be 1:N (both ends are \
                              collections)");
                        ]
                    | None, None ->
                        [
                          err Structural subject
                            (what
                           ^ " relationship must be 1:N (neither end is a \
                              collection)");
                        ])
              in
              back @ kind @ shape)
    in
    missing_supers @ List.concat_map rel_checks i.i_rels

  (* --- hierarchy ----------------------------------------------------------- *)

  (* Cycle detection over a type-level edge relation via DFS colouring. *)
  let find_cycles next nodes =
    let state = Hashtbl.create 16 in
    (* 0 = in progress, 1 = done *)
    let cycles = ref [] in
    let rec visit n =
      match Hashtbl.find_opt state n with
      | Some 0 -> cycles := n :: !cycles
      | Some _ -> ()
      | None ->
          Hashtbl.add state n 0;
          List.iter visit (next n);
          Hashtbl.replace state n 1
    in
    List.iter visit nodes;
    List.sort_uniq compare !cycles

  (* Whole -> part edges of the aggregation graph (declared on the whole). *)
  let part_of_children t name =
    match L.find_interface t name with
    | None -> []
    | Some i ->
        i.i_rels
        |> List.filter (fun r -> role_of_relationship r = Whole_end)
        |> List.map (fun r -> r.rel_target)

  let instance_of_children t name =
    match L.find_interface t name with
    | None -> []
    | Some i ->
        i.i_rels
        |> List.filter (fun r -> role_of_relationship r = Generic_end)
        |> List.map (fun r -> r.rel_target)

  (* Connected components of the undirected ISA graph, used to flag components
     with two or more roots (the paper's single-root assumption). *)
  let isa_components t =
    let nodes = Schema.interface_names (L.schema t) in
    let neighbours n = L.direct_supertypes t n @ L.direct_subtypes t n in
    let seen = Hashtbl.create 16 in
    let component start =
      let rec go acc = function
        | [] -> acc
        | n :: rest ->
            if Hashtbl.mem seen n then go acc rest
            else begin
              Hashtbl.add seen n ();
              go (n :: acc) (neighbours n @ rest)
            end
      in
      go [] [ start ]
    in
    List.filter_map
      (fun n -> if Hashtbl.mem seen n then None else Some (component n))
      nodes

  let hierarchy t =
    let nodes = Schema.interface_names (L.schema t) in
    let isa_cycles =
      find_cycles (L.direct_supertypes t) nodes
      |> List.map (fun n ->
             err Hierarchy n "interface participates in an ISA cycle")
    in
    let part_cycles =
      find_cycles (part_of_children t) nodes
      |> List.map (fun n ->
             err Hierarchy n "interface participates in a part-of cycle")
    in
    let inst_cycles =
      find_cycles (instance_of_children t) nodes
      |> List.map (fun n ->
             err Hierarchy n "interface participates in an instance-of cycle")
    in
    let multi_root =
      if isa_cycles <> [] then []
      else
        isa_components t
        |> List.filter_map (fun comp ->
               match
                 List.filter (fun n -> L.direct_supertypes t n = []) comp
               with
               | _ :: _ :: _ as roots when List.length comp > 1 ->
                   Some
                     (warn Hierarchy
                        (String.concat ", " (List.sort compare roots))
                        "generalization hierarchy has multiple roots; consider \
                         an abstract supertype")
               | _ -> None)
    in
    let branching_chain =
      nodes
      |> List.filter_map (fun n ->
             match instance_of_children t n with
             | _ :: _ :: _ ->
                 Some
                   (warn Hierarchy n
                      "instance-of hierarchy branches at this interface \
                       (chains are expected to be linear)")
             | _ -> None)
    in
    isa_cycles @ part_cycles @ inst_cycles @ multi_root @ branching_chain

  (* --- semantic ------------------------------------------------------------ *)

  (** Duplicate extent names; the only schema-global semantic check. *)
  let semantic_global t =
    (L.schema t).s_interfaces
    |> List.filter_map (fun i -> i.i_extent)
    |> duplicates Fun.id
    |> List.map (fun e -> err Semantic e "duplicate extent name")

  let semantic_interface t i =
    let known_domain d =
      match base_name d with
      | None -> true
      | Some n -> L.mem_interface t n
    in
    let sub s = i.i_name ^ "." ^ s in
    let visible = L.visible_attrs t i.i_name in
    let visible_attr n = List.exists (fun a -> String.equal a.attr_name n) visible in
    let key_checks =
      i.i_keys
      |> List.concat_map (fun key ->
             key
             |> List.filter_map (fun a ->
                    if visible_attr a then None
                    else
                      Some
                        (err Semantic (sub a)
                           "key names an attribute not visible on this \
                            interface")))
    in
    let attr_domains =
      i.i_attrs
      |> List.filter_map (fun a ->
             if known_domain a.attr_type then None
             else
               Some
                 (err Semantic (sub a.attr_name)
                    "attribute domain names an unknown type"))
    in
    let op_domains =
      i.i_ops
      |> List.concat_map (fun o ->
             let ret =
               if known_domain o.op_return then []
               else
                 [
                   err Semantic (sub o.op_name)
                     "operation return type names an unknown type";
                 ]
             in
             let args =
               o.op_args
               |> List.filter_map (fun a ->
                      if known_domain a.arg_type then None
                      else
                        Some
                          (err Semantic (sub o.op_name)
                             (Printf.sprintf
                                "argument %s names an unknown type" a.arg_name)))
             in
             ret @ args)
    in
    let order_by_checks =
      i.i_rels
      |> List.concat_map (fun r ->
             match L.find_interface t r.rel_target with
             | None -> []  (* already a structural error *)
             | Some _ ->
                 let target_attrs = L.visible_attrs t r.rel_target in
                 r.rel_order_by
                 |> List.filter_map (fun a ->
                        if
                          List.exists
                            (fun ta -> String.equal ta.attr_name a)
                            target_attrs
                        then None
                        else
                          Some
                            (err Semantic (sub r.rel_name)
                               (Printf.sprintf
                                  "order_by attribute %s is not visible on %s"
                                  a r.rel_target))))
    in
    let override_checks =
      (* a redefinition with a different signature is legal but suspicious *)
      let supers = L.ancestors t i.i_name in
      i.i_ops
      |> List.concat_map (fun o ->
             supers
             |> List.filter_map (fun s ->
                    match L.find_interface t s with
                    | None -> None
                    | Some si -> (
                        match Schema.find_op si o.op_name with
                        | Some so
                          when not (equal_domain_type so.op_return o.op_return)
                               || List.map (fun a -> a.arg_type) so.op_args
                                  <> List.map (fun a -> a.arg_type) o.op_args ->
                            Some
                              (warn Semantic (sub o.op_name)
                                 (Printf.sprintf
                                    "overrides %s::%s with a different \
                                     signature"
                                    s o.op_name))
                        | _ -> None)))
    in
    let shadow_checks =
      let supers = L.ancestors t i.i_name in
      i.i_attrs
      |> List.concat_map (fun a ->
             supers
             |> List.filter_map (fun s ->
                    match L.find_interface t s with
                    | None -> None
                    | Some si -> (
                        match Schema.find_attr si a.attr_name with
                        | Some sa when not (equal_domain_type sa.attr_type a.attr_type)
                          ->
                            Some
                              (warn Semantic (sub a.attr_name)
                                 (Printf.sprintf
                                    "shadows %s::%s with a different domain" s
                                    a.attr_name))
                        | _ -> None)))
    in
    key_checks @ attr_domains @ op_domains @ order_by_checks @ override_checks
    @ shadow_checks

  (** All diagnostics, in the canonical order: naming first (later categories
      assume the names are at least unique), then structural, hierarchy and
      semantic. *)
  let check t =
    let ifaces = (L.schema t).s_interfaces in
    naming_global t
    @ List.concat_map naming_interface ifaces
    @ List.concat_map (structural_interface t) ifaces
    @ hierarchy t @ semantic_global t
    @ List.concat_map (semantic_interface t) ifaces
end

(* --- the naive backend: direct list scans over the schema ---------------- *)

module Schema_lookup = struct
  type t = schema

  let schema s = s
  let find_interface = Schema.find_interface
  let mem_interface = Schema.mem_interface
  let direct_supertypes = Schema.direct_supertypes
  let direct_subtypes = Schema.direct_subtypes
  let ancestors = Schema.ancestors
  let visible_attrs = Schema.visible_attrs
end

module Naive = Checks (Schema_lookup)

(** All diagnostics for [schema], naming first (later categories assume the
    names are at least unique). *)
let check schema = Naive.check schema

let errors schema = List.filter (fun d -> d.severity = Error) (check schema)
let warnings schema = List.filter (fun d -> d.severity = Warning) (check schema)
let is_valid schema = errors schema = []

(* Exposed for the decomposition algorithms. *)
let part_of_children = Naive.part_of_children
let instance_of_children = Naive.instance_of_children
let isa_components = Naive.isa_components
