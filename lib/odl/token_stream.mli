(** Imperative cursor over a token list, shared by the ODL parser and the
    modification-language parser.  All [expect]/[ident]/[int] failures report
    the position of the offending token, not the one after it. *)

type t

exception Parse_error of string * int * int
(** [(message, line, column)]. *)

val of_string : string -> t
(** @raise Lexer.Lex_error on invalid characters. *)

val peek : t -> Lexer.token
val pos : t -> int * int
val error : t -> string -> 'a
(** @raise Parse_error at the current position. *)

val advance : t -> unit
val next : t -> Lexer.token
val expect : t -> Lexer.token -> unit
val ident : t -> string
val int : t -> int

val eat : t -> Lexer.token -> bool
(** Consume the token if it is next; report whether it was. *)

val eat_ident : t -> string -> bool
(** Same for a specific identifier (contextual keyword). *)

val expect_ident : t -> string -> unit

val comma_list : t -> (t -> 'a) -> 'a list
(** [elt (',' elt)*]. *)

val paren_list : t -> (t -> 'a) -> 'a list
(** ['(' [elt (',' elt)*] ')'] — the empty list parses as [()]. *)
