(** Abstract syntax for the extended ODMG ODL data model.

    The model follows ODMG-93 ODL interfaces extended, as in the paper, with
    two additional relationship kinds: [Part_of] (aggregation, the whole/part
    relationship) and [Instance_of] (generic specification / specific
    instance).  Both extensions carry an implicit 1:N cardinality: the whole
    (resp. the generic entity) holds a collection of parts (resp. instances)
    while each part (resp. instance) refers to exactly one whole (resp.
    generic entity). *)

type type_name = string [@@deriving show, eq, ord]
(** Name of an interface (object type).  Unique across a schema. *)

(** Collection type constructors available for to-many relationship ends and
    collection-valued attribute domains. *)
type collection_kind =
  | Set
  | List
  | Bag
  | Array
[@@deriving show, eq, ord]

(** Domain types for attributes, operation arguments and return types. *)
type domain_type =
  | D_int
  | D_float
  | D_string
  | D_char
  | D_boolean
  | D_void  (** only meaningful as an operation return type *)
  | D_named of type_name  (** reference to an interface or named type *)
  | D_collection of collection_kind * domain_type
[@@deriving show, eq, ord]

type attribute = {
  attr_name : string;
  attr_type : domain_type;
  attr_size : int option;  (** optional size, e.g. [string<30>] *)
}
[@@deriving show, eq, ord]

(** The three relationship kinds of the extended model. *)
type rel_kind =
  | Association  (** plain ODMG relationship *)
  | Part_of  (** aggregation; implicit 1:N whole-to-parts *)
  | Instance_of  (** generic/instance; implicit 1:N generic-to-instances *)
[@@deriving show, eq, ord]

type relationship = {
  rel_kind : rel_kind;
  rel_name : string;  (** traversal path name, unique within the interface *)
  rel_target : type_name;  (** interface at the other end *)
  rel_inverse : string;  (** inverse traversal path name, declared on target *)
  rel_card : collection_kind option;
      (** [None] for a to-one end; [Some k] for a to-many end realised by
          collection kind [k] *)
  rel_order_by : string list;
      (** attributes of the target ordering a to-many end *)
}
[@@deriving show, eq, ord]

type argument = {
  arg_name : string;
  arg_type : domain_type;
}
[@@deriving show, eq, ord]

type operation = {
  op_name : string;
  op_return : domain_type;
  op_args : argument list;
  op_raises : string list;  (** exception names *)
}
[@@deriving show, eq, ord]

type interface = {
  i_name : type_name;
  i_supertypes : type_name list;  (** ISA; empty for a hierarchy root *)
  i_extent : string option;
  i_keys : string list list;  (** each key is a (possibly composite) list *)
  i_attrs : attribute list;
  i_rels : relationship list;
  i_ops : operation list;
}
[@@deriving show, eq, ord]

type schema = {
  s_name : string;
  s_interfaces : interface list;
}
[@@deriving show, eq, ord]

(** The kind of a relationship end, derived from kind and cardinality.  For
    [Part_of], the collection end is the whole (it aggregates parts); for
    [Instance_of], the collection end is the generic entity. *)
type end_role =
  | Assoc_end
  | Whole_end  (** part-of, declared on the whole; target is the part type *)
  | Part_end  (** part-of, declared on the part; target is the whole *)
  | Generic_end  (** instance-of, on the generic; target is the instance *)
  | Instance_end  (** instance-of, on the instance; target is the generic *)
[@@deriving show, eq, ord]

let role_of_relationship (r : relationship) : end_role =
  match (r.rel_kind, r.rel_card) with
  | Association, _ -> Assoc_end
  | Part_of, Some _ -> Whole_end
  | Part_of, None -> Part_end
  | Instance_of, Some _ -> Generic_end
  | Instance_of, None -> Instance_end

let empty_interface name =
  {
    i_name = name;
    i_supertypes = [];
    i_extent = None;
    i_keys = [];
    i_attrs = [];
    i_rels = [];
    i_ops = [];
  }

let empty_schema name = { s_name = name; s_interfaces = [] }

(** [base_name t] is the named type underlying [t], if any — e.g. the element
    interface of a collection domain. *)
let rec base_name = function
  | D_named n -> Some n
  | D_collection (_, t) -> base_name t
  | D_int | D_float | D_string | D_char | D_boolean | D_void -> None

let collection_kind_name = function
  | Set -> "set"
  | List -> "list"
  | Bag -> "bag"
  | Array -> "array"
