(** Queries and functional updates over schemas.

    Schemas are small (hundreds of interfaces at most), so everything is
    implemented over the interface list directly; order of declaration is
    preserved by all updates. *)

open Types

let find_interface schema name =
  List.find_opt (fun i -> String.equal i.i_name name) schema.s_interfaces

let mem_interface schema name = Option.is_some (find_interface schema name)

exception Unknown_interface of type_name

(** [get_interface schema name] is the interface named [name].
    @raise Unknown_interface if absent. *)
let get_interface schema name =
  match find_interface schema name with
  | Some i -> i
  | None -> raise (Unknown_interface name)

let interface_names schema = List.map (fun i -> i.i_name) schema.s_interfaces

(** [update_interface schema name f] replaces the interface named [name] by
    [f] of it.  @raise Unknown_interface if absent. *)
let update_interface schema name f =
  if not (mem_interface schema name) then raise (Unknown_interface name);
  let replace i = if String.equal i.i_name name then f i else i in
  { schema with s_interfaces = List.map replace schema.s_interfaces }

(** [add_interface schema i] appends [i]; the caller must ensure the name is
    fresh (see {!mem_interface}). *)
let add_interface schema i =
  { schema with s_interfaces = schema.s_interfaces @ [ i ] }

let remove_interface schema name =
  {
    schema with
    s_interfaces =
      List.filter (fun i -> not (String.equal i.i_name name)) schema.s_interfaces;
  }

(* Component lookups within one interface. *)

let find_attr i name = List.find_opt (fun a -> String.equal a.attr_name name) i.i_attrs
let find_rel i name = List.find_opt (fun r -> String.equal r.rel_name name) i.i_rels
let find_op i name = List.find_opt (fun o -> String.equal o.op_name name) i.i_ops

let has_attr i name = Option.is_some (find_attr i name)
let has_rel i name = Option.is_some (find_rel i name)
let has_op i name = Option.is_some (find_op i name)

(* Generalization hierarchy queries.  All traversals carry a visited set so
   they terminate even on (invalid) cyclic ISA graphs. *)

let direct_supertypes schema name =
  match find_interface schema name with
  | None -> []
  | Some i -> List.filter (mem_interface schema) i.i_supertypes

let direct_subtypes schema name =
  schema.s_interfaces
  |> List.filter (fun i -> List.mem name i.i_supertypes)
  |> List.map (fun i -> i.i_name)

let rec closure next visited frontier =
  match frontier with
  | [] -> List.rev visited
  | n :: rest ->
      if List.mem n visited then closure next visited rest
      else closure next (n :: visited) (next n @ rest)

(** Proper ancestors of [name] in ISA order (nearest first, duplicates
    removed); [name] itself is excluded. *)
let ancestors schema name =
  closure (direct_supertypes schema) [] (direct_supertypes schema name)

(** Proper descendants of [name]; [name] itself is excluded. *)
let descendants schema name =
  closure (direct_subtypes schema) [] (direct_subtypes schema name)

(** [same_isa_line schema a b] holds when [a] and [b] lie on one
    ancestor/descendant line of the generalization hierarchy (including
    [a = b]).  This is the paper's "semantic stability" relation: information
    may only move between such interfaces. *)
let same_isa_line schema a b =
  String.equal a b
  || List.mem b (ancestors schema a)
  || List.mem b (descendants schema a)

(** Interfaces without supertypes — the roots of generalization hierarchies. *)
let isa_roots schema =
  schema.s_interfaces
  |> List.filter (fun i ->
         not (List.exists (mem_interface schema) i.i_supertypes))
  |> List.map (fun i -> i.i_name)

(* Inheritance: collect inherited instance properties top-down so that a
   subtype redefinition overrides (by name) what a supertype declares. *)

let topo_ancestors schema name =
  (* ancestors from the most distant down to the interface itself *)
  List.rev (name :: ancestors schema name)

let dedup_by key xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    xs

(** All attributes visible on [name], inherited ones first; a redefinition in
    a subtype shadows the supertype's attribute of the same name. *)
let visible_attrs schema name =
  topo_ancestors schema name
  |> List.concat_map (fun n ->
         match find_interface schema n with None -> [] | Some i -> i.i_attrs)
  |> List.rev
  |> dedup_by (fun a -> a.attr_name)
  |> List.rev

let visible_rels schema name =
  topo_ancestors schema name
  |> List.concat_map (fun n ->
         match find_interface schema n with None -> [] | Some i -> i.i_rels)
  |> List.rev
  |> dedup_by (fun r -> r.rel_name)
  |> List.rev

let visible_ops schema name =
  topo_ancestors schema name
  |> List.concat_map (fun n ->
         match find_interface schema n with None -> [] | Some i -> i.i_ops)
  |> List.rev
  |> dedup_by (fun o -> o.op_name)
  |> List.rev

(** All [(owner, relationship)] pairs in the schema. *)
let all_relationships schema =
  List.concat_map (fun i -> List.map (fun r -> (i, r)) i.i_rels) schema.s_interfaces

(** Relationships (with their owners) whose target is [name]. *)
let relationships_targeting schema name =
  all_relationships schema
  |> List.filter (fun (_, r) -> String.equal r.rel_target name)

(** The declared inverse of [(owner, r)], if present on the target. *)
let inverse_of schema (r : relationship) =
  match find_interface schema r.rel_target with
  | None -> None
  | Some target -> (
      match find_rel target r.rel_inverse with
      | Some inv -> Some (target, inv)
      | None -> None)

let count_constructs schema =
  List.fold_left
    (fun (a, r, o) i ->
      (a + List.length i.i_attrs, r + List.length i.i_rels, o + List.length i.i_ops))
    (0, 0, 0) schema.s_interfaces

let size schema =
  let a, r, o = count_constructs schema in
  List.length schema.s_interfaces + a + r + o
