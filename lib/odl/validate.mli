(** Well-formedness checking for extended-ODL schemas.

    Diagnostics carry the knowledge-component classification of the paper:
    structural, hierarchy, semantic and naming categories, at error or
    warning severity.  A schema is {e valid} when it has no error-level
    diagnostics; warnings are designer feedback (e.g. multi-root
    generalization hierarchies, suspicious overriding). *)

type severity = Error | Warning

type category =
  | Structural  (** dangling references, inverse mismatches, end shapes *)
  | Hierarchy  (** cycles, multi-root components, branching chains *)
  | Semantic  (** keys, order-by, overriding, domains *)
  | Naming  (** uniqueness and identifier validity *)

type diagnostic = {
  severity : severity;
  category : category;
  subject : string;  (** the construct at fault, e.g. ["Employee.works_in"] *)
  message : string;
}

val equal_diagnostic : diagnostic -> diagnostic -> bool
val compare_diagnostic : diagnostic -> diagnostic -> int
val category_name : category -> string

val pp_diagnostic_line : Format.formatter -> diagnostic -> unit
(** One-line rendering: ["error [structural] A.r: unknown target type B"]. *)

(** {1 The check code, abstracted over its lookup backend}

    Every check is written once, against {!LOOKUP}.  The naive backend below
    scans the interface list; [Core.Schema_index] instantiates the same
    functor over its adjacency maps, so both checkers produce identical
    diagnostics (same order, same messages) by construction. *)

module type LOOKUP = sig
  type t

  val schema : t -> Types.schema
  val find_interface : t -> Types.type_name -> Types.interface option
  val mem_interface : t -> Types.type_name -> bool

  val direct_supertypes : t -> Types.type_name -> Types.type_name list
  (** Declared supertypes that exist, in declaration order. *)

  val direct_subtypes : t -> Types.type_name -> Types.type_name list
  (** Interfaces listing the name as a supertype, in schema declaration
      order (check results depend on this order). *)

  val ancestors : t -> Types.type_name -> Types.type_name list
  val visible_attrs : t -> Types.type_name -> Types.attribute list
end

module Checks (L : LOOKUP) : sig
  val naming_global : L.t -> diagnostic list
  (** Duplicate interface names (the only schema-global naming check). *)

  val naming_interface : Types.interface -> diagnostic list
  (** Naming checks local to one interface; needs no schema context, so its
      results can be cached per interface record. *)

  val structural_interface : L.t -> Types.interface -> diagnostic list
  val hierarchy : L.t -> diagnostic list

  val semantic_global : L.t -> diagnostic list
  (** Duplicate extent names (the only schema-global semantic check). *)

  val semantic_interface : L.t -> Types.interface -> diagnostic list

  val check : L.t -> diagnostic list
  (** [naming_global @ naming_interface* @ structural_interface* @ hierarchy
      @ semantic_global @ semantic_interface*], the canonical order. *)

  val part_of_children : L.t -> Types.type_name -> Types.type_name list
  val instance_of_children : L.t -> Types.type_name -> Types.type_name list
  val isa_components : L.t -> Types.type_name list list
end

val check : Types.schema -> diagnostic list
(** All diagnostics, naming checks first. *)

val errors : Types.schema -> diagnostic list
val warnings : Types.schema -> diagnostic list

val is_valid : Types.schema -> bool
(** No error-level diagnostics. *)

(**/**)

(* Exposed for the decomposition algorithms. *)
val part_of_children : Types.schema -> Types.type_name -> Types.type_name list
val instance_of_children : Types.schema -> Types.type_name -> Types.type_name list
val isa_components : Types.schema -> Types.type_name list list
