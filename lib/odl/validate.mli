(** Well-formedness checking for extended-ODL schemas.

    Diagnostics carry the knowledge-component classification of the paper:
    structural, hierarchy, semantic and naming categories, at error or
    warning severity.  A schema is {e valid} when it has no error-level
    diagnostics; warnings are designer feedback (e.g. multi-root
    generalization hierarchies, suspicious overriding). *)

type severity = Error | Warning

type category =
  | Structural  (** dangling references, inverse mismatches, end shapes *)
  | Hierarchy  (** cycles, multi-root components, branching chains *)
  | Semantic  (** keys, order-by, overriding, domains *)
  | Naming  (** uniqueness and identifier validity *)

type diagnostic = {
  severity : severity;
  category : category;
  subject : string;  (** the construct at fault, e.g. ["Employee.works_in"] *)
  message : string;
}

val equal_diagnostic : diagnostic -> diagnostic -> bool
val compare_diagnostic : diagnostic -> diagnostic -> int
val category_name : category -> string

val pp_diagnostic_line : Format.formatter -> diagnostic -> unit
(** One-line rendering: ["error [structural] A.r: unknown target type B"]. *)

val check : Types.schema -> diagnostic list
(** All diagnostics, naming checks first. *)

val errors : Types.schema -> diagnostic list
val warnings : Types.schema -> diagnostic list

val is_valid : Types.schema -> bool
(** No error-level diagnostics. *)

(**/**)

(* Exposed for the decomposition algorithms. *)
val part_of_children : Types.schema -> Types.type_name -> Types.type_name list
val instance_of_children : Types.schema -> Types.type_name -> Types.type_name list
val isa_components : Types.schema -> Types.type_name list list
