(* P14: group commit under concurrent writers.

   The claim under test: batching concurrent writers' journal records into
   one fsync amortizes the dominant write cost, so write throughput scales
   with the writer count instead of being pinned at ~1/fsync-latency.
   One variant, W writer connections ([1; 8; 16]), each looping one
   mutation at a time (the protocol allows one in-flight op per
   connection, so W is also the largest batch a flush can see).  Each
   cell runs for a fixed wall-clock window and is measured twice: with
   group commit (the default) and with [group_commit = false], the
   per-record-fsync baseline.

   The repository lives on the in-memory filesystem with an injected
   per-fsync delay (default 5 ms) modelling a real disk, wrapped outside
   the serializing [Io.locked] layer so it stalls only the fsyncing
   thread.  Writers alternate adding and deleting a per-writer attribute,
   so the schema — and the cost of an engine step — stays the same size
   however long the cell runs.

   Reported per cell: writes/s, write p99.  Two regression gates (exit 1):

   - throughput: group commit must deliver >= 10x the per-op-fsync
     writes/s at the 16-writer cell.  With one op in flight per writer
     the best possible speedup at W writers is W, so the ">=10x at 8+
     writers" claim is evaluated at the 16-writer level; the 8-writer
     ratio is reported (its ceiling is 8x).
   - latency: group-commit write p99 at 16 writers must stay within one
     batch interval — linger + 2 fsyncs (a writer landing just after a
     flush started waits out that flush, its own batch's linger, and its
     own batch's fsync) — plus a small scheduling allowance.

   Knobs: SWSD_COMMITS_SECS (seconds per cell, default 2.0),
   SWSD_COMMITS_FSYNC_MS (injected fsync delay, default 5). *)

module Io = Repository.Io
module Repo = Repository.Repo
module Service = Server.Service
module Protocol = Server.Protocol

let schema_text =
  "interface Person { attribute string name; attribute int age; };\n\
   interface Course { attribute string title; attribute string code; };"

let levels = [ 1; 8; 16 ]
let gate_level = 16

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( match float_of_string_opt s with Some f -> f | None -> default)
  | None -> default

let cell_secs () = env_float "SWSD_COMMITS_SECS" 2.0
let fsync_delay () = env_float "SWSD_COMMITS_FSYNC_MS" 5.0 /. 1000.0
let linger = 0.002

let config ~group =
  {
    Service.default_config with
    Service.use_file_locks = false;
    group_commit = group;
    flush_linger = linger;
    (* every writer fits in one batch and nobody is shed: the cell
       measures the commit path, not admission control *)
    flush_max_batch = 64;
    max_waiters = 64;
    request_deadline = 30.0;
  }

(* A one-variant mem-fs service whose fsyncs stall like a disk's.  The
   delay wraps *outside* the serializing [Io.locked] layer, so it blocks
   only the fsyncing thread (as a real fsync would), not all I/O. *)
let fresh_service ~group =
  let m = Io.mem_create () in
  let io = Io.locked (Io.mem_io m) in
  (match Repo.init ~io "/repo" (Odl.Parser.parse_schema schema_text) with
  | Ok repo -> (
      match Repo.create_variant repo "v" with
      | Ok _ -> ()
      | Error e -> failwith e)
  | Error e -> failwith e);
  let d = fsync_delay () in
  let io =
    { io with Io.fsync = (fun p -> Thread.delay d; io.Io.fsync p) }
  in
  match Service.open_service ~config:(config ~group) ~obs:Obs.noop ~io "/repo" with
  | Ok t -> t
  | Error e -> failwith e

let must t c line =
  let r = Service.request t c line in
  match r.Protocol.status with
  | Protocol.Ok -> ()
  | _ -> failwith (Printf.sprintf "%s failed: %s" line (Protocol.to_string r))

(* Writer [w] alternately adds and deletes its own attribute: every op is
   accepted, every op journals exactly one record, and the schema size is
   constant (undo is unusable here — it pops the session-global op, not
   the connection's own). *)
let write_line ~w k =
  if k land 1 = 0 then
    Printf.sprintf "apply add_attribute(Person, string, 8, w%d)" w
  else Printf.sprintf "apply delete_attribute(Person, w%d)" w

type lats = { mutable xs : float list; mutable n : int }

let lats () = { xs = []; n = 0 }

let observe l dt =
  l.xs <- dt :: l.xs;
  l.n <- l.n + 1

let timed t c line l =
  let t0 = Unix.gettimeofday () in
  must t c line;
  observe l (Unix.gettimeofday () -. t0)

let p99_ms l =
  match l.xs with
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      a.(min (n - 1) (int_of_float (ceil (0.99 *. float_of_int n)) - 1))
      *. 1000.0

type cell = {
  writers : int;
  group : bool;
  writes : int;
  writes_per_s : float;
  write_p99_ms : float;
}

let measure ~writers ~group =
  let t = fresh_service ~group in
  let secs = cell_secs () in
  let per_writer = Array.init writers (fun _ -> lats ()) in
  let ready = Atomic.make 0 and go = Atomic.make false in
  let t_end = ref infinity in
  let threads =
    Array.mapi
      (fun w l ->
        Thread.create
          (fun () ->
            let c = Service.connect t in
            must t c "@open v";
            must t c "focus ww:Person";
            (* untimed warmup: bootstrap the commit lane, let the batch
               heuristics calibrate, and absorb first-touch costs (thread
               stacks, heap growth) outside the measured window; one
               add/delete pair leaves the schema as found *)
            must t c (write_line ~w 0);
            must t c (write_line ~w 1);
            Atomic.incr ready;
            while not (Atomic.get go) do
              Thread.yield ()
            done;
            let k = ref 0 in
            while Unix.gettimeofday () < !t_end do
              timed t c (write_line ~w !k) l;
              incr k
            done;
            Service.disconnect t c)
          ())
      per_writer
  in
  while Atomic.get ready < writers do
    Thread.yield ()
  done;
  t_end := Unix.gettimeofday () +. secs;
  Atomic.set go true;
  Array.iter Thread.join threads;
  ignore (Service.shutdown t);
  let all = lats () in
  Array.iter (fun l -> List.iter (observe all) l.xs) per_writer;
  {
    writers;
    group;
    writes = all.n;
    writes_per_s = float_of_int all.n /. secs;
    write_p99_ms = p99_ms all;
  }

let run ~json_path () =
  Printf.printf
    "P14: group commit, concurrent writers, one variant, %.0f ms injected \
     fsync\n"
    (fsync_delay () *. 1000.0);
  Printf.printf "  %-8s %-8s %12s %15s\n" "writers" "mode" "writes/s"
    "write p99 (ms)";
  let cells =
    List.concat_map
      (fun writers ->
        List.map
          (fun group ->
            let c = measure ~writers ~group in
            Printf.printf "  %-8d %-8s %12.0f %15.3f\n%!" c.writers
              (if c.group then "group" else "per-op")
              c.writes_per_s c.write_p99_ms;
            c)
          [ true; false ])
      levels
  in
  let find ~writers ~group =
    List.find (fun c -> c.writers = writers && c.group = group) cells
  in
  let speedup_at w =
    let g = find ~writers:w ~group:true
    and p = find ~writers:w ~group:false in
    if p.writes_per_s > 0.0 then g.writes_per_s /. p.writes_per_s else 0.0
  in
  let speedup8 = speedup_at 8 and speedup16 = speedup_at gate_level in
  Printf.printf
    "\n  write speedup, group vs per-op: %.2fx at 8 writers (ceiling 8x), \
     %.2fx at %d writers\n"
    speedup8 speedup16 gate_level;
  (* gate 1: amortization must actually happen at scale *)
  let min_speedup = 10.0 in
  let too_slow = speedup16 < min_speedup in
  (* gate 2: a batched writer's p99 stays within one batch interval *)
  let g16 = find ~writers:gate_level ~group:true in
  let interval_ms = ((2.0 *. fsync_delay ()) +. linger) *. 1000.0 in
  let budget_ms = interval_ms +. 3.0 (* scheduling allowance *) in
  let too_laggy = g16.write_p99_ms > budget_ms in
  Printf.printf
    "  write p99 at %d writers (group): %.3f ms; batch interval %.3f ms \
     (budget %.3f ms)\n"
    gate_level g16.write_p99_ms interval_ms budget_ms;
  let entry c =
    Printf.sprintf
      "    { \"writers\": %d, \"mode\": \"%s\", \"writes\": %d, \
       \"writes_per_s\": %.1f, \"write_p99_ms\": %.3f }"
      c.writers
      (if c.group then "group" else "per-op")
      c.writes c.writes_per_s c.write_p99_ms
  in
  let json =
    String.concat "\n"
      [
        "{";
        "  \"benchmark\": \"P14 group commit (concurrent writers)\",";
        "  \"setup\": \"one variant, mem fs with injected fsync delay; W \
         writer connections each looping one accepted mutation at a time; \
         group commit vs per-record fsync\",";
        Printf.sprintf "  \"seconds_per_cell\": %.2f," (cell_secs ());
        Printf.sprintf "  \"fsync_delay_ms\": %.1f,"
          (fsync_delay () *. 1000.0);
        Printf.sprintf "  \"flush_linger_ms\": %.1f," (linger *. 1000.0);
        Printf.sprintf "  \"write_speedup_8\": %.2f," speedup8;
        Printf.sprintf "  \"write_speedup_%d\": %.2f," gate_level speedup16;
        Printf.sprintf
          "  \"throughput_gate\": { \"writers\": %d, \"speedup\": %.2f, \
           \"min_speedup\": %.1f, \"passed\": %b },"
          gate_level speedup16 min_speedup (not too_slow);
        Printf.sprintf
          "  \"p99_gate\": { \"writers\": %d, \"write_p99_ms\": %.3f, \
           \"batch_interval_ms\": %.3f, \"budget_ms\": %.3f, \"passed\": \
           %b },"
          gate_level g16.write_p99_ms interval_ms budget_ms (not too_laggy);
        "  \"results\": [";
        String.concat ",\n" (List.map entry cells);
        "  ]";
        "}";
        "";
      ]
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" json_path;
  if too_slow then
    Printf.printf
      "FAIL: group-commit write throughput at %d writers is %.2fx the \
       per-op-fsync baseline (< %.1fx)\n"
      gate_level speedup16 min_speedup;
  if too_laggy then
    Printf.printf
      "FAIL: group-commit write p99 at %d writers (%.3f ms) exceeds one \
       batch interval (budget %.3f ms)\n"
      gate_level g16.write_p99_ms budget_ms;
  if too_slow || too_laggy then exit 1
