(** Regeneration of the paper's tables and figures from the implementation.

    Nothing here is transcribed from the paper: Table 1 is computed from the
    permission engine, Tables 2 and 3 from the coverage enumeration, and the
    figures from the decomposition of the bundled schemas — so these outputs
    drift if and only if the implementation drifts. *)

let line = String.make 78 '-'

let heading title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

(* --- Table 1: operations per concept schema type ------------------------ *)

let kinds =
  [
    (Core.Concept.Wagon_wheel, "WW");
    (Core.Concept.Generalization, "GH");
    (Core.Concept.Aggregation, "AH");
    (Core.Concept.Instance_chain, "IH");
  ]

let table1 () =
  heading
    "Table 1 -- operations allowed per concept schema type (computed from \
     Permission)";
  Printf.printf "%-38s %4s %4s %4s %4s\n" "operation" "WW" "GH" "AH" "IH";
  List.iter
    (fun op_name ->
      let cells =
        List.map
          (fun (k, _) ->
            if Core.Permission.allowed_name k op_name then "yes" else "-")
          kinds
      in
      match cells with
      | [ a; b; c; d ] ->
          Printf.printf "%-38s %4s %4s %4s %4s\n" op_name a b c d
      | _ -> assert false)
    Core.Permission.all_op_names

(* --- Tables 2 and 3: coverage of the ODL candidates --------------------- *)

let print_coverage title rows =
  heading title;
  Printf.printf "%-26s %-34s %s\n" "candidate group" "field" "operation";
  List.iter
    (fun (group, field, op) -> Printf.printf "%-26s %-34s %s\n" group field op)
    rows

let table2 () =
  print_coverage
    "Table 2a -- addition operations on ODL candidates (computed from Coverage)"
    Core.Coverage.addition_table;
  print_coverage "Table 2b -- deletion operations on ODL candidates"
    Core.Coverage.deletion_table

let table3 () =
  print_coverage "Table 3 -- modify operations on ODL candidates"
    Core.Coverage.modification_table

(* --- Figures ------------------------------------------------------------ *)

let concept_of schema id =
  match Core.Decompose.find (Core.Decompose.decompose schema) id with
  | Some c -> c
  | None -> failwith ("missing concept schema " ^ id)

let figure3 () =
  heading "Figure 3 -- course offering wagon wheel";
  let u = Schemas.University.v () in
  print_string (Core.Render.concept u (concept_of u "ww:Course_Offering"))

let figure4 () =
  heading "Figure 4 -- student generalization hierarchy";
  let u = Schemas.University.v () in
  (* the paper's figure roots the view at Student; our decomposition roots
     hierarchies at Person, so render the Student subtree *)
  print_string
    (Core.Render.generalization u
       (Core.Decompose.generalization_hierarchy u "Student"))

let figure5 () =
  heading "Figure 5 -- house aggregation hierarchy";
  let l = Schemas.Lumber.v () in
  print_string (Core.Render.concept l (concept_of l "ah:House"))

let figure6 () =
  heading "Figure 6 -- software instance-of sequence";
  let e = Schemas.Emsl.v () in
  print_string (Core.Render.concept e (concept_of e "ih:Application"))

let parse_ops texts = List.map Core.Op_parser.parse texts

let must = function
  | Ok v -> v
  | Error e -> failwith (Core.Apply.error_to_string e)

let figure7 () =
  heading "Figure 7 -- elaborated course offering (Schedule aggregate added)";
  let u = Schemas.University.v () in
  let session = Result.get_ok (Core.Session.create u) in
  let steps =
    List.combine
      [ Core.Concept.Wagon_wheel; Core.Concept.Wagon_wheel; Core.Concept.Aggregation ]
      (parse_ops
         [
           "add_type_definition(Schedule)";
           "add_attribute(Schedule, string, 10, term_label)";
           "add_part_of_relationship(Schedule, set<Course_Offering>, slots, \
            scheduled_in)";
         ])
  in
  let session =
    List.fold_left
      (fun s (kind, op) -> must (Core.Session.apply s ~kind op) |> fst)
      session steps
  in
  let w = Core.Session.workspace session in
  print_string
    (Core.Render.concept w
       (Option.get
          (Core.Decompose.find
             (Core.Session.current_concepts session)
             "ww:Course_Offering")))

let figure8 () =
  heading "Figure 8 -- modify relationship target type (Employee -> Person)";
  let u = Schemas.University.v () in
  let session = Result.get_ok (Core.Session.create u) in
  let before i = Odl.Printer.interface_to_string (Odl.Schema.get_interface u i) in
  Printf.printf "before:\n%s\n%s\n" (before "Department") (before "Employee");
  let op =
    Core.Op_parser.parse
      "modify_relationship_target_type(Department, has, Employee, Person)"
  in
  let session, _ =
    must (Core.Session.apply session ~kind:Core.Concept.Generalization op)
  in
  let w = Core.Session.workspace session in
  let after i = Odl.Printer.interface_to_string (Odl.Schema.get_interface w i) in
  Printf.printf "after:\n%s\n%s\n" (after "Department") (after "Person")

let figures9_11 () =
  heading "Figures 9-11 -- the ACEDB schema family object-type graphs";
  List.iter
    (fun s -> print_string (Core.Render.object_type_graph s ^ "\n"))
    [
      Schemas.Genome.acedb_v ();
      Schemas.Genome.sacchdb_v ();
      Schemas.Genome.aatdb_v ();
    ];
  Printf.printf "object types common to all three: %s\n"
    (String.concat ", " (Schemas.Genome.common_object_types ()));
  print_newline ();
  print_endline
    "semantic affinity matrix (type-name overlap x mean structural \
     similarity of shared types):";
  print_string
    (Core.Affinity.matrix
       [
         Schemas.Genome.acedb_v (); Schemas.Genome.sacchdb_v ();
         Schemas.Genome.aatdb_v ();
       ]);
  print_newline ();
  print_endline "structural descriptors:";
  List.iter
    (fun s ->
      print_endline
        ("  " ^ Core.Affinity.descriptor_to_string (Core.Affinity.descriptor s)))
    [
      Schemas.Genome.acedb_v (); Schemas.Genome.sacchdb_v ();
      Schemas.Genome.aatdb_v ();
    ];
  print_newline ();
  print_endline
    "inferred customization scripts (Diff.infer, replayable operation logs):";
  List.iter
    (fun (name, target) ->
      let steps, _, converged =
        Core.Diff.infer ~original:(Schemas.Genome.acedb_v ()) ~target
      in
      Printf.printf "  ACEDB -> %s: %d operations, converged: %b\n" name
        (List.length steps) converged)
    [ ("AAtDB", Schemas.Genome.aatdb_v ()); ("SacchDB", Schemas.Genome.sacchdb_v ()) ]

let all () =
  table1 ();
  table2 ();
  table3 ();
  figure3 ();
  figure4 ();
  figure5 ();
  figure6 ();
  figure7 ();
  figure8 ();
  figures9_11 ()
