(* P17: incrementally maintained query views vs from-scratch evaluation.

   The claim under test: maintaining each variant's materialized
   {!Query.View} incrementally from the session's dirty set makes
   [@query] answers cheap — the view is refreshed once per committed op
   (a cost proportional to the op's neighbourhood), and every query then
   evaluates against ready-made indexes.  The naive alternative rebuilds
   the whole view per request ({!Query.Eval.run_fresh}) — a cost
   proportional to the schema, paid on every query.

   Setup: one synthetic schema (default 1000 interfaces, the paper-scale
   stress point), 200 committed ops each followed by an incremental
   refresh (the write path's cost, reported separately), then a battery
   of representative queries — point and glob name lookups, attribute
   search with inheritance, ISA and part-of closures, a wagon wheel —
   evaluated both ways over identical state.  ([diff] is absent: history
   slices only exist on a maintained view — a from-scratch rebuild has no
   stamps to slice, which is its own argument for the views.)

   Reported: per-op maintain cost, per-query latency for both paths, and
   the aggregate speedup = naive / materialized.  The run FAILS (exit 1)
   below 5x: at that point the views would not be paying for their
   maintenance.

   Both paths produce answers over the same view/session, and the bench
   asserts they are line-identical before timing anything — a speedup
   over wrong answers would be worthless.

   Knobs: SWSD_QUERY_TYPES (schema size, default 1000),
   SWSD_QUERY_OPS (committed ops, default 200),
   SWSD_QUERY_ROUNDS (battery repetitions per path, default 20). *)

module View = Query.View
module Eval = Query.Eval
module Parser = Query.Parser

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

let n_types () = env_int "SWSD_QUERY_TYPES" 1000
let n_ops () = env_int "SWSD_QUERY_OPS" 200
let rounds () = env_int "SWSD_QUERY_ROUNDS" 20

let session_of schema =
  match Core.Session.create schema with
  | Ok s -> s
  | Error _ -> failwith "synth schema should be valid"

let apply session text =
  match
    Core.Session.apply session ~kind:Core.Concept.Wagon_wheel
      (Core.Op_parser.parse text)
  with
  | Ok (s, _) -> s
  | Error e -> failwith (text ^ ": " ^ Core.Apply.error_to_string e)

(* the battery: one of each access path, over names the generator emits *)
let battery =
  [
    "name T1";
    "name \"T1*\"";
    "name \"*7\"";
    "attr a1_0";
    "attr \"a1_*\" inherited";
    "attr \"bench_*\"";
    "isa T0";
    "isa T1 up";
    "partof T0";
    "wheel T1";
  ]

let atom q =
  match Parser.parse q with
  | Ok p -> p.Query.Ast.q_atom
  | Error m -> failwith (q ^ ": " ^ m)

let lines_of = function
  | Ok ls -> ls
  | Error m -> [ "error: " ^ m ]

type timing = { query : string; mat_us : float; naive_us : float }

let run ~json_path () =
  let types = n_types () and ops = n_ops () and reps = rounds () in
  Printf.printf "P17: materialized query views, %d interfaces, %d ops\n" types
    ops;
  let schema = Schemas.Synth.(generate (default_params ~n_types:types)) in
  let session = ref (session_of schema) in
  let view = ref (View.build ~stamp:1 !session) in
  (* the write path: each committed op refreshes the view from its dirty
     neighbourhood; this is the price of keeping queries cheap *)
  let maintain_total = ref 0.0 in
  let stamp = ref 1 in
  for k = 1 to ops do
    let target = (k * 7919) mod types in
    !session
    |> Fun.flip apply
         (Printf.sprintf "add_attribute(T%d, string, 8, bench_%d)" target k)
    |> fun s ->
    session := s;
    incr stamp;
    let t0 = Unix.gettimeofday () in
    view := View.refresh !view ~stamp:!stamp !session;
    maintain_total := !maintain_total +. (Unix.gettimeofday () -. t0)
  done;
  let maintain_us = !maintain_total /. float_of_int ops *. 1e6 in
  Printf.printf "  maintain: %.1f us/op over %d ops (%d refreshes)\n"
    maintain_us ops
    (View.refresh_count !view);
  (* both paths must answer identically before any timing matters *)
  List.iter
    (fun q ->
      let a = atom q in
      let mat = lines_of (Eval.run !view a)
      and fresh = lines_of (Eval.run_fresh ~stamp:!stamp !session a) in
      if mat <> fresh then
        failwith (Printf.sprintf "%s: materialized and fresh answers differ" q))
    battery;
  let time_one f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e6
  in
  Printf.printf "  %-22s %14s %14s %9s\n" "query" "mat (us)" "naive (us)"
    "speedup";
  let timings =
    List.map
      (fun q ->
        let a = atom q in
        let mat_us = time_one (fun () -> Eval.run !view a) in
        let naive_us =
          time_one (fun () -> Eval.run_fresh ~stamp:!stamp !session a)
        in
        Printf.printf "  %-22s %14.1f %14.1f %8.1fx\n%!" q mat_us naive_us
          (if mat_us > 0.0 then naive_us /. mat_us else 0.0);
        { query = q; mat_us; naive_us })
      battery
  in
  let total which = List.fold_left (fun s t -> s +. which t) 0.0 timings in
  let mat_total = total (fun t -> t.mat_us)
  and naive_total = total (fun t -> t.naive_us) in
  let speedup = if mat_total > 0.0 then naive_total /. mat_total else 0.0 in
  let passed = speedup >= 5.0 in
  Printf.printf "\n  battery: %.1f us materialized, %.1f us naive — %.1fx\n"
    mat_total naive_total speedup;
  let entry t =
    Printf.sprintf
      "    { \"query\": %S, \"materialized_us\": %.2f, \"naive_us\": %.2f }"
      t.query t.mat_us t.naive_us
  in
  let json =
    String.concat "\n"
      [
        "{";
        "  \"benchmark\": \"P17 incrementally maintained query views\",";
        "  \"setup\": \"synthetic schema; per-op incremental refresh, then \
         a query battery evaluated on the materialized view vs a \
         from-scratch rebuild per request\",";
        Printf.sprintf "  \"n_types\": %d," types;
        Printf.sprintf "  \"ops\": %d," ops;
        Printf.sprintf "  \"rounds\": %d," reps;
        Printf.sprintf "  \"maintain_us_per_op\": %.2f," maintain_us;
        Printf.sprintf "  \"battery_materialized_us\": %.2f," mat_total;
        Printf.sprintf "  \"battery_naive_us\": %.2f," naive_total;
        Printf.sprintf
          "  \"speedup_gate\": { \"speedup\": %.2f, \"floor\": 5.0, \
           \"passed\": %b },"
          speedup passed;
        "  \"results\": [";
        String.concat ",\n" (List.map entry timings);
        "  ]";
        "}";
        "";
      ]
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" json_path;
  if not passed then begin
    Printf.printf
      "FAIL: battery speedup %.2fx is below the 5x floor — the views are \
       not paying for their maintenance\n"
      speedup;
    exit 1
  end
