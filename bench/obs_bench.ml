(* P12: observability overhead.

   What does full instrumentation cost on the request path?  Two identical
   services over in-memory filesystems — one with a live [Obs.t] (every
   counter, histogram, and trace recording), one opened with [Obs.noop]
   (every instrument a load-and-branch no-op) — serve the P11 workload
   (8 sessions, 2:1 mutate:read) in small alternating batches.

   Two things make the comparison honest on a noisy shared machine:

   - Fine-grained interleaving and a robust estimator.  Ambient load
     swings throughput far more between moments than instrumentation could
     ever cost, so the sides alternate every ~100 ms (order flipping each
     pair, which cancels linear drift), every request is timed
     individually, and the score compares the sides' median request
     latencies — scheduler stalls and GC pauses land in the tail, which a
     median never sees.
   - Hook hygiene.  The session/journal observation hooks are process-wide
     globals; with both services in one process the enabled side's hooks
     would fire during the disabled side's batches and bias the overhead
     toward zero.  Each batch re-arms or disarms them explicitly
     ({!Service.rearm_hooks} / {!Service.disarm_hooks}).

   The budget is 3%: if enabling observability costs more than that in
   aggregate throughput, the instrumentation is too hot for production
   defaults. *)

module Io = Repository.Io
module Repo = Repository.Repo
module Service = Server.Service
module Protocol = Server.Protocol

let schema_text =
  "interface Person { attribute string name; attribute int age; };\n\
   interface Course { attribute string title; attribute string code; };"

let parse text = Odl.Parser.parse_schema text

let sessions = 8
let per_batch = 25  (* requests per session per batch *)
let pairs = 40

let config = { Service.default_config with Service.use_file_locks = false }

let fresh_service obs =
  let m = Io.mem_create () in
  let io = Io.locked (Io.mem_io m) in
  (match Repo.init ~io "/repo" (parse schema_text) with
  | Ok repo ->
      for i = 0 to sessions - 1 do
        match Repo.create_variant repo (Printf.sprintf "v%02d" i) with
        | Ok _ -> ()
        | Error e -> failwith e
      done
  | Error e -> failwith e);
  match Service.open_service ~config ~io ~obs "/repo" with
  | Ok t -> t
  | Error e -> failwith e

let must t c line =
  let r = Service.request t c line in
  match r.Protocol.status with
  | Protocol.Ok -> ()
  | _ -> failwith (Printf.sprintf "%s failed: %s" line (Protocol.to_string r))

type side = {
  svc : Service.t;
  conns : Service.conn array;  (* one per session, kept open throughout *)
  enabled : bool;
  lat : float array;  (* per-request latencies of the scored batches *)
  mutable filled : int;
  mutable elapsed : float;  (* summed scored batch time, seconds *)
}

let make_side ~enabled obs =
  let svc = fresh_service obs in
  let conns =
    Array.init sessions (fun i ->
        let c = Service.connect svc in
        must svc c (Printf.sprintf "@open v%02d" i);
        must svc c "focus ww:Person";
        c)
  in
  {
    svc;
    conns;
    enabled;
    lat = Array.make (pairs * sessions * per_batch) 0.0;
    filled = 0;
    elapsed = 0.0;
  }

(* Batches draw attribute names from one process-wide sequence, so the two
   sides apply structurally identical operations without name collisions
   within a side. *)
let serial = ref 0

(* One batch; [scored] batches record per-request latencies. *)
let batch ?(scored = true) side =
  incr serial;
  let s = !serial in
  if side.enabled then Service.rearm_hooks side.svc
  else Service.disarm_hooks ();
  let base = side.filled in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init sessions (fun i ->
        Thread.create
          (fun () ->
            for j = 0 to per_batch - 1 do
              let line =
                if j mod 3 = 2 then "log"
                else
                  Printf.sprintf
                    "apply add_attribute(Person, string, 8, b%d_%d_%d)" s i j
              in
              let r0 = Unix.gettimeofday () in
              must side.svc side.conns.(i) line;
              if scored then
                side.lat.(base + (i * per_batch) + j) <-
                  Unix.gettimeofday () -. r0
            done)
          ())
  in
  List.iter Thread.join threads;
  if scored then begin
    side.filled <- base + (sessions * per_batch);
    side.elapsed <- side.elapsed +. (Unix.gettimeofday () -. t0)
  end

let run ~json_path () =
  Printf.printf
    "P12: observability overhead (%d sessions, %d paired batches of %d \
     requests/session)\n"
    sessions pairs per_batch;
  let on = make_side ~enabled:true (Obs.create ()) in
  let off = make_side ~enabled:false Obs.noop in
  (* a discarded warmup pair gets lazy init and page faults out of the way *)
  batch ~scored:false on;
  batch ~scored:false off;
  for p = 0 to pairs - 1 do
    if p mod 2 = 0 then begin
      batch on;
      batch off
    end
    else begin
      batch off;
      batch on
    end
  done;
  let requests = pairs * sessions * per_batch in
  let rate elapsed = float_of_int requests /. elapsed in
  let median side =
    Array.sort compare side.lat;
    side.lat.(requests / 2)
  in
  let m_on = median on and m_off = median off in
  let overhead_pct = (m_on -. m_off) /. m_off *. 100.0 in
  Printf.printf "  enabled:  median %8.1f us/req   (%8.0f req/s aggregate)\n"
    (m_on *. 1e6) (rate on.elapsed);
  Printf.printf "  disabled: median %8.1f us/req   (%8.0f req/s aggregate)\n"
    (m_off *. 1e6) (rate off.elapsed);
  Printf.printf "  median-latency overhead: %+.2f%% (budget 3%%)\n" overhead_pct;
  ignore (Service.shutdown on.svc);
  ignore (Service.shutdown off.svc);
  let json =
    String.concat "\n"
      [
        "{";
        "  \"benchmark\": \"P12 observability overhead\",";
        Printf.sprintf
          "  \"setup\": \"%d sessions, 2:1 mutate:read mix, in-memory fs, \
           %d interleaved enabled/disabled batch pairs (order alternating) \
           after a warmup, scored on median request latency\","
          sessions pairs;
        Printf.sprintf "  \"requests_per_side\": %d," requests;
        Printf.sprintf "  \"enabled_median_us\": %.1f," (m_on *. 1e6);
        Printf.sprintf "  \"disabled_median_us\": %.1f," (m_off *. 1e6);
        Printf.sprintf "  \"enabled_req_per_s\": %.1f," (rate on.elapsed);
        Printf.sprintf "  \"disabled_req_per_s\": %.1f," (rate off.elapsed);
        Printf.sprintf "  \"overhead_pct\": %.2f," overhead_pct;
        "  \"budget_pct\": 3.0";
        "}";
        "";
      ]
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote %s\n" json_path
