(* P11: concurrent design service throughput.

   How does the multi-session service scale with concurrent designers?
   Each of [1; 8; 32] clients opens its own variant of a small university
   repository (distinct variants run in parallel; the per-variant lock
   only serializes within one variant) and issues a fixed mix of requests:
   two mutations (journalled, fsync'd, acknowledged only once durable) to
   one read-only query.  The repository lives on the in-memory filesystem
   so the numbers characterize the service layer — locks, admission,
   retry, journal encoding — not the disk.

   Reported per level: aggregate requests/sec and p99 request latency. *)

module Io = Repository.Io
module Repo = Repository.Repo
module Service = Server.Service
module Protocol = Server.Protocol

let schema_text =
  "interface Person { attribute string name; attribute int age; };\n\
   interface Course { attribute string title; attribute string code; };"

let parse text = Odl.Parser.parse_schema text

let levels = [ 1; 8; 32 ]
let requests_per_client = 300

let config =
  { Service.default_config with Service.use_file_locks = false }

(* A service over a fresh in-memory repository with one variant per client. *)
let fresh_service n_variants =
  let m = Io.mem_create () in
  let io = Io.locked (Io.mem_io m) in
  (match Repo.init ~io "/repo" (parse schema_text) with
  | Ok repo ->
      for i = 0 to n_variants - 1 do
        match Repo.create_variant repo (Printf.sprintf "v%02d" i) with
        | Ok _ -> ()
        | Error e -> failwith e
      done
  | Error e -> failwith e);
  match Service.open_service ~config ~io "/repo" with
  | Ok t -> t
  | Error e -> failwith e

let must t c line =
  let r = Service.request t c line in
  match r.Protocol.status with
  | Protocol.Ok -> ()
  | _ -> failwith (Printf.sprintf "%s failed: %s" line (Protocol.to_string r))

(* One client's workload; returns the latency of every request (seconds). *)
let client_run t ~client ~variant =
  let c = Service.connect t in
  must t c (Printf.sprintf "@open %s" variant);
  must t c "focus ww:Person";
  let lat = Array.make requests_per_client 0.0 in
  for i = 0 to requests_per_client - 1 do
    let line =
      if i mod 3 = 2 then "log"
      else Printf.sprintf "apply add_attribute(Person, string, 8, c%d_%d)" client i
    in
    let t0 = Unix.gettimeofday () in
    must t c line;
    lat.(i) <- Unix.gettimeofday () -. t0
  done;
  Service.disconnect t c;
  lat

type row = { sessions : int; requests : int; req_per_s : float; p99_ms : float }

let measure_level sessions =
  let t = fresh_service sessions in
  let results = Array.make sessions [||] in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init sessions (fun i ->
        Thread.create
          (fun () ->
            results.(i) <- client_run t ~client:i ~variant:(Printf.sprintf "v%02d" i))
          ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  ignore (Service.shutdown t);
  let lats = Array.concat (Array.to_list results) in
  Array.sort compare lats;
  let n = Array.length lats in
  let p99 = lats.(min (n - 1) (int_of_float (ceil (0.99 *. float_of_int n)) - 1)) in
  {
    sessions;
    requests = n;
    req_per_s = float_of_int n /. wall;
    p99_ms = p99 *. 1000.0;
  }

let run ~json_path () =
  Printf.printf
    "P11: concurrent design service (2:1 mutate:read, %d requests/client)\n"
    requests_per_client;
  Printf.printf "  %-10s %12s %12s\n" "sessions" "req/s" "p99 (ms)";
  let rows = List.map measure_level levels in
  List.iter
    (fun r -> Printf.printf "  %-10d %12.0f %12.3f\n" r.sessions r.req_per_s r.p99_ms)
    rows;
  let entry r =
    Printf.sprintf
      "    { \"sessions\": %d, \"requests\": %d, \"req_per_s\": %.1f, \
       \"p99_ms\": %.3f }"
      r.sessions r.requests r.req_per_s r.p99_ms
  in
  let json =
    String.concat "\n"
      [
        "{";
        "  \"benchmark\": \"P11 concurrent design service throughput\",";
        "  \"setup\": \"N clients, one variant each, 2:1 mutate:read mix, \
         in-memory fs, fsync'd journal appends acknowledged before reply\",";
        Printf.sprintf "  \"requests_per_client\": %d," requests_per_client;
        "  \"results\": [";
        String.concat ",\n" (List.map entry rows);
        "  ]";
        "}";
        "";
      ]
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote %s\n" json_path
