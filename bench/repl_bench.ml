(* P16: follower read scale-out and promotion-to-first-ack.

   Two claims under test.

   First, read scale-out: an swsd process is one OCaml runtime — its
   threads interleave on a single core, so read throughput has a
   single-process ceiling however cheap the lock-free snapshot reads are.
   Followers replicate the published state into separate processes, so
   spreading read-only clients over K followers multiplies the read
   pipelines while the leader keeps absorbing writes.  Cells run K in
   [0; 1; 2]: K = 0 serves every reader from the leader (the ceiling);
   K >= 1 spreads the same readers round-robin over the followers.  One
   writer thread drives the leader throughout, so followers are applying
   the live stream while they serve.

   Second, promotion-to-first-ack: after the K = 2 cell the leader is
   killed with SIGKILL and the clock runs until a write is acknowledged
   on the promoted follower (supervisor tick, fsck recovery of the dead
   leader's journal, era fence, socket takeover, connect, @open, apply).

   Topology per cell: a real-filesystem repository and a
   {!Server.Replication.Pool} of real [swsd serve] processes (the leader
   with --replicate, followers with --follow), exactly what `swsd serve
   --replicas K` runs.  6 read clients issue `quality` (an
   analysis-heavy read, over a 40-attribute pre-grown schema, so the
   server core and not the bench client is the measured ceiling) over
   their readonly attach; the writer alternates add/delete on the
   leader.

   Reported per cell: aggregate reads/s, read p99, writes/s.  Regression
   gates (exit 1): K = 2 aggregate reads/s must be >= 1.3x the K = 0
   cell — binding only when >= 4 cores are visible, since the claim is
   about escaping one process's core and needs leader, followers, and
   client on cores of their own — and promotion-to-first-ack must land
   inside its budget (always binding).

   Knobs: SWSD_REPL_SECS (seconds per cell, default 2.0),
   SWSD_REPL_PROMOTE_BUDGET_S (promotion budget, default 15). *)

module Repo = Repository.Repo
module Protocol = Server.Protocol
module Replication = Server.Replication
module Client = Server.Client

let schema_text =
  "interface Person { attribute string name; attribute int age; };\n\
   interface Course { attribute string title; attribute string code; };"

let levels = [ 0; 1; 2 ]
let readers = 6
let min_speedup = 1.3

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( match float_of_string_opt s with Some f -> f | None -> default)
  | None -> default

let cell_secs () = env_float "SWSD_REPL_SECS" 2.0
let promote_budget () = env_float "SWSD_REPL_PROMOTE_BUDGET_S" 15.0

let swsd_exe () =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/swsd.exe"

let tmp_dir () =
  let f = Filename.temp_file "swsd_repl" "" in
  Sys.remove f;
  f

let rec rm_rf p =
  if (try Sys.is_directory p with Sys_error _ -> false) then begin
    Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
    Sys.rmdir p
  end
  else if Sys.file_exists p then Sys.remove p

type lats = { mutable xs : float list; mutable n : int }

let lats () = { xs = []; n = 0 }

let observe l dt =
  l.xs <- dt :: l.xs;
  l.n <- l.n + 1

let p99_ms l =
  match l.xs with
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      a.(min (n - 1) (int_of_float (ceil (0.99 *. float_of_int n)) - 1))
      *. 1000.0

let must c line =
  match Client.request c line with
  | Some lines when List.mem "!ok" lines -> ()
  | Some lines ->
      failwith (Printf.sprintf "%s: %s" line (String.concat " | " lines))
  | None -> failwith (line ^ ": server hung up")

(* Attach readonly, riding out the window where a follower has not yet
   replicated the variant (bootstrap races the bench's connect). *)
let attach_readonly ~deadline c =
  let rec go () =
    match Client.request c "@open v readonly" with
    | Some lines when List.mem "!ok" lines -> ()
    | Some _ when Unix.gettimeofday () < deadline ->
        Thread.delay 0.05;
        go ()
    | Some lines ->
        failwith ("@open v readonly: " ^ String.concat " | " lines)
    | None -> failwith "@open v readonly: server hung up"
  in
  go ()

type cell = {
  replicas : int;
  reads : int;
  reads_per_s : float;
  read_p99_ms : float;
  writes_per_s : float;
}

let with_pool ~replicas f =
  let dir = tmp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (match Repo.init dir (Odl.Parser.parse_schema schema_text) with
      | Ok repo -> (
          match Repo.create_variant repo "v" with
          | Ok _ -> ()
          | Error e -> failwith e)
      | Error e -> failwith e);
      let pool =
        Replication.Pool.create ~exe:(swsd_exe ()) ~dir ~replicas ()
      in
      (match Replication.Pool.start pool with
      | Ok () -> ()
      | Error m ->
          Replication.Pool.stop pool;
          failwith m);
      Fun.protect ~finally:(fun () -> Replication.Pool.stop pool) (fun () ->
          f pool))

(* One measured cell: a writer hammers the leader while [readers] read
   clients issue `quality` over their readonly attach — on the leader
   when K = 0, round-robin over the followers otherwise.  The read is
   deliberately analysis-heavy and the schema pre-grown, so the measured
   ceiling is the server process's core, not the bench client's. *)
let grow_schema pool =
  let c =
    match
      Client.connect ~retry_for:10.0 (Replication.Pool.leader_socket pool)
    with
    | Ok c -> c
    | Error m -> failwith m
  in
  ignore (Client.read_response c);
  must c "@open v";
  must c "focus ww:Person";
  for k = 0 to 39 do
    must c (Printf.sprintf "apply add_attribute(Person, string, 8, g%d)" k)
  done;
  Client.close c

let measure ~replicas =
  with_pool ~replicas (fun pool ->
      grow_schema pool;
      let secs = cell_secs () in
      let read_socket k =
        if replicas = 0 then Replication.Pool.leader_socket pool
        else Replication.Pool.follower_socket pool (k mod replicas)
      in
      let read_lats = Array.init readers (fun _ -> lats ()) in
      let writes = Atomic.make 0 in
      let ready = Atomic.make 0 and go = Atomic.make false in
      let t_end = ref infinity in
      let stop_writer = Atomic.make false in
      let deadline = Unix.gettimeofday () +. 30.0 in
      let writer =
        Thread.create
          (fun () ->
            let c =
              match
                Client.connect ~retry_for:10.0
                  (Replication.Pool.leader_socket pool)
              with
              | Ok c -> c
              | Error m -> failwith m
            in
            ignore (Client.read_response c);
            must c "@open v";
            must c "focus ww:Person";
            Atomic.incr ready;
            let k = ref 0 in
            while not (Atomic.get stop_writer) do
              let line =
                if !k land 1 = 0 then
                  Printf.sprintf "apply add_attribute(Person, string, 8, w%d)"
                    !k
                else Printf.sprintf "apply delete_attribute(Person, w%d)" (!k - 1)
              in
              must c line;
              Atomic.incr writes;
              incr k
            done;
            Client.close c)
          ()
      in
      let threads =
        List.init readers (fun k ->
            Thread.create
              (fun () ->
                let c =
                  match Client.connect ~retry_for:10.0 (read_socket k) with
                  | Ok c -> c
                  | Error m -> failwith m
                in
                ignore (Client.read_response c);
                attach_readonly ~deadline c;
                must c "quality" (* untimed warmup *);
                Atomic.incr ready;
                while not (Atomic.get go) do
                  Thread.yield ()
                done;
                while Unix.gettimeofday () < !t_end do
                  let t0 = Unix.gettimeofday () in
                  must c "quality";
                  observe read_lats.(k) (Unix.gettimeofday () -. t0)
                done;
                Client.close c)
              ())
      in
      while Atomic.get ready < readers + 1 do
        Thread.yield ()
      done;
      let w0 = Atomic.get writes in
      t_end := Unix.gettimeofday () +. secs;
      Atomic.set go true;
      List.iter Thread.join threads;
      let w1 = Atomic.get writes in
      Atomic.set stop_writer true;
      Thread.join writer;
      let all = lats () in
      Array.iter (fun l -> List.iter (observe all) l.xs) read_lats;
      {
        replicas;
        reads = all.n;
        reads_per_s = float_of_int all.n /. secs;
        read_p99_ms = p99_ms all;
        writes_per_s = float_of_int (w1 - w0) /. secs;
      })

(* SIGKILL the leader of a running pool and time the road back to an
   acknowledged write on the promoted follower. *)
let measure_promotion () =
  with_pool ~replicas:2 (fun pool ->
      (* some durable history so promotion has a journal to recover *)
      let c =
        match
          Client.connect ~retry_for:10.0 (Replication.Pool.leader_socket pool)
        with
        | Ok c -> c
        | Error m -> failwith m
      in
      ignore (Client.read_response c);
      must c "@open v";
      must c "focus ww:Person";
      for k = 0 to 19 do
        must c (Printf.sprintf "apply add_attribute(Person, string, 8, h%d)" k)
      done;
      Client.close c;
      let t0 = Unix.gettimeofday () in
      (match Replication.Pool.kill_leader pool with
      | Ok () -> ()
      | Error m -> failwith ("promotion: " ^ m));
      let c =
        match
          Client.connect ~retry_for:30.0 (Replication.Pool.leader_socket pool)
        with
        | Ok c -> c
        | Error m -> failwith ("promoted leader unreachable: " ^ m)
      in
      ignore (Client.read_response c);
      must c "@open v";
      must c "focus ww:Person";
      must c "apply add_attribute(Person, string, 8, after_promotion)";
      let dt = Unix.gettimeofday () -. t0 in
      Client.close c;
      (* the acked history must be on the new writer *)
      let promoted_dir = Replication.Pool.leader_dir pool in
      let log =
        In_channel.with_open_bin
          (Filename.concat promoted_dir "variants/v/log.ops")
          In_channel.input_all
      in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          if i + nn > nh then false
          else String.sub hay i nn = needle || go (i + 1)
        in
        go 0
      in
      for k = 0 to 19 do
        let needle = Printf.sprintf ", h%d)" k in
        if not (contains log needle) then
          failwith ("acked write lost across promotion: " ^ needle)
      done;
      dt)

let run ~json_path () =
  Printf.printf
    "P16: follower read scale-out, %d read clients + 1 writer, K replicas\n"
    readers;
  Printf.printf "  %-8s %10s %14s %10s\n" "replicas" "reads/s" "read p99 (ms)"
    "writes/s";
  let cells =
    List.map
      (fun replicas ->
        let c = measure ~replicas in
        Printf.printf "  %-8d %10.0f %14.3f %10.0f\n%!" c.replicas
          c.reads_per_s c.read_p99_ms c.writes_per_s;
        c)
      levels
  in
  let rate k = (List.find (fun c -> c.replicas = k) cells).reads_per_s in
  let speedup k = if rate 0 > 0.0 then rate k /. rate 0 else 0.0 in
  let s1 = speedup 1 and s2 = speedup 2 in
  Printf.printf "\n  read speedup over the leader-only cell: %.2fx at 1, %.2fx at 2\n"
    s1 s2;
  (* The scale-out claim is about escaping one process's core; proving it
     needs the leader, both followers, and the bench client on cores of
     their own.  On smaller machines the cells still run (followers must
     keep serving under load) but the speedup gate cannot bind — extra
     processes on a shared core only add context switches. *)
  let cores = Domain.recommended_domain_count () in
  let scaling_binding = cores >= 4 in
  if not scaling_binding then
    Printf.printf
      "  note: %d core(s) visible; the >= %.1fx gate needs >= 4 cores \
       (leader, 2 followers, client) and is not binding here\n"
      cores min_speedup;
  let promote_s = measure_promotion () in
  let budget = promote_budget () in
  Printf.printf "  promotion to first acked write: %.2f s (budget %.0f s)\n"
    promote_s budget;
  let scale_failed = scaling_binding && s2 < min_speedup in
  let promote_failed = promote_s > budget in
  let entry c =
    Printf.sprintf
      "    { \"replicas\": %d, \"reads\": %d, \"reads_per_s\": %.1f, \
       \"read_p99_ms\": %.3f, \"writes_per_s\": %.1f }"
      c.replicas c.reads c.reads_per_s c.read_p99_ms c.writes_per_s
  in
  let json =
    String.concat "\n"
      [
        "{";
        "  \"benchmark\": \"P16 journal-shipping replication (follower \
         read scale-out, promotion)\",";
        "  \"setup\": \"real-fs repo; a supervised pool of swsd processes \
         (leader --replicate, K followers --follow); 6 readonly clients \
         issuing quality round-robin over the followers (the leader when K \
         = 0) while one writer drives the leader; then SIGKILL the leader \
         and time the road to an acked write on the promoted follower\",";
        Printf.sprintf "  \"seconds_per_cell\": %.2f," (cell_secs ());
        Printf.sprintf "  \"read_clients\": %d," readers;
        Printf.sprintf "  \"speedup_1\": %.2f," s1;
        Printf.sprintf "  \"speedup_2\": %.2f," s2;
        Printf.sprintf
          "  \"scaling_gate\": { \"replicas\": 2, \"speedup\": %.2f, \
           \"min_speedup\": %.1f, \"cores\": %d, \"binding\": %b, \
           \"passed\": %b },"
          s2 min_speedup cores scaling_binding (not scale_failed);
        Printf.sprintf
          "  \"promotion\": { \"to_first_ack_s\": %.3f, \"budget_s\": %.1f, \
           \"passed\": %b },"
          promote_s budget (not promote_failed);
        "  \"results\": [";
        String.concat ",\n" (List.map entry cells);
        "  ]";
        "}";
        "";
      ]
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" json_path;
  if scale_failed then
    Printf.printf
      "FAIL: 2-follower aggregate read throughput is %.2fx the leader-only \
       cell (< %.1fx)\n"
      s2 min_speedup;
  if promote_failed then
    Printf.printf "FAIL: promotion took %.2f s (budget %.0f s)\n" promote_s
      budget;
  if scale_failed || promote_failed then exit 1
