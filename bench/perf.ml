(** Performance characterization (experiments P1-P5 of EXPERIMENTS.md).

    The paper reports no performance numbers — its evaluation is
    qualitative — so these benches characterize our implementation of its
    algorithms across synthetic shrink wrap schemas of growing size:

    - P1 decompose: full concept-schema decomposition
    - P2 apply: a representative operation applied under full constraint
      checking and propagation
    - P3 check: the complete consistency check
    - P4 parse: ODL text -> schema
    - P5 custom: custom schema generation + mapping derivation
    - P6 diff: operation-log inference between two schemas
    - P7 affinity: semantic affinity between two schemas
    - P8 index: incremental (dirty-set) consistency re-check vs a full
      naive check, and the indexed vs naive apply engine
    - P9 migrate: instance migration through a customization
    - P10 journal: appending one durable record to an n-record operation
      journal vs rewriting the whole log (the persistence cost per accepted
      operation before and after incremental persistence)
*)

open Bechamel
open Toolkit

let sizes = [ 10; 25; 50; 100 ]

let schema_of n = Schemas.Synth.generate (Schemas.Synth.default_params ~n_types:n)

let staged_for n =
  let schema = schema_of n in
  let text = Odl.Printer.schema_to_string schema in
  let session = Result.get_ok (Core.Session.create schema) in
  let op =
    Core.Modop.Add_attribute ("T0", Odl.Types.D_string, Some 12, "bench_attr")
  in
  [
    Test.make
      ~name:(Printf.sprintf "decompose/%d" n)
      (Staged.stage (fun () -> ignore (Core.Decompose.decompose schema)));
    Test.make
      ~name:(Printf.sprintf "apply/%d" n)
      (Staged.stage (fun () ->
           ignore
             (Core.Apply.apply ~original:schema ~kind:Core.Concept.Wagon_wheel
                schema op)));
    Test.make
      ~name:(Printf.sprintf "check/%d" n)
      (Staged.stage (fun () -> ignore (Odl.Validate.check schema)));
    Test.make
      ~name:(Printf.sprintf "parse/%d" n)
      (Staged.stage (fun () -> ignore (Odl.Parser.parse_schema text)));
    Test.make
      ~name:(Printf.sprintf "custom/%d" n)
      (Staged.stage (fun () ->
           ignore (Core.Session.custom_schema session);
           ignore (Core.Session.mapping session)));
    (let other =
       Schemas.Synth.generate
         { (Schemas.Synth.default_params ~n_types:n) with seed = 7 }
     in
     Test.make
       ~name:(Printf.sprintf "diff/%d" n)
       (Staged.stage (fun () ->
            ignore (Core.Diff.infer ~original:schema ~target:other))));
    (let other =
       Schemas.Synth.generate
         { (Schemas.Synth.default_params ~n_types:n) with seed = 7 }
     in
     Test.make
       ~name:(Printf.sprintf "affinity/%d" n)
       (Staged.stage (fun () ->
            ignore (Core.Affinity.semantic_affinity schema other))));
  ]

(* Ablations: the cost of the guarantees, measured by running the machinery
   with a guarantee-providing stage removed. *)
let ablations_for n =
  let schema = schema_of n in
  let op =
    Core.Modop.Add_attribute ("T0", Odl.Types.D_string, Some 12, "bench_attr")
  in
  [
    (* A1: apply without post-validation and propagation — the marginal cost
       of the validity-preservation guarantee is apply/N minus this *)
    Test.make
      ~name:(Printf.sprintf "ablate-primary-only/%d" n)
      (Staged.stage (fun () -> ignore (Core.Apply.primary ~original:schema schema op)));
    (* A2: the propagation fixpoint on an already-closed schema — the
       steady-state overhead of cascade repair *)
    Test.make
      ~name:(Printf.sprintf "ablate-repair-noop/%d" n)
      (Staged.stage (fun () -> ignore (Core.Propagate.repair schema)));
    (* A3: wagon wheels only vs the full decomposition *)
    Test.make
      ~name:(Printf.sprintf "ablate-wheels-only/%d" n)
      (Staged.stage (fun () -> ignore (Core.Decompose.wagon_wheels schema)));
  ]

(* P8: the schema index — one interface of a warm-indexed schema is
   modified, then consistency is re-established.  check-full pays a naive
   whole-schema check; check-incremental pays the index update plus the
   dirty-set re-check.  apply vs apply-indexed measures the same contrast
   through the full operation engine (constraint check + propagation). *)
let index_checks_for n =
  let schema = schema_of n in
  let probe i =
    {
      i with
      Odl.Types.i_attrs =
        { Odl.Types.attr_name = "bench_ix"; attr_type = D_int; attr_size = None }
        :: i.Odl.Types.i_attrs;
    }
  in
  let updated = Odl.Schema.update_interface schema "T0" probe in
  let warm = Core.Schema_index.build schema in
  ignore (Core.Schema_index.diagnostics warm);
  let op =
    Core.Modop.Add_attribute ("T0", Odl.Types.D_string, Some 12, "bench_attr")
  in
  [
    Test.make
      ~name:(Printf.sprintf "check-full/%d" n)
      (Staged.stage (fun () -> ignore (Odl.Validate.check updated)));
    Test.make
      ~name:(Printf.sprintf "check-incremental/%d" n)
      (Staged.stage (fun () ->
           let idx = Core.Schema_index.update_interface warm "T0" probe in
           ignore (Core.Schema_index.diagnostics idx)));
    Test.make
      ~name:(Printf.sprintf "apply-indexed/%d" n)
      (Staged.stage (fun () ->
           ignore
             (Core.Apply.Indexed.apply ~original:warm
                ~kind:Core.Concept.Wagon_wheel warm op)));
  ]

(* P9: instance migration — a store of [3n] objects migrated through a
   customization that deletes one type *)
let migration_bench n =
  let schema = schema_of n in
  let store =
    (* one object per type, keyed, plus links along the instance chain *)
    List.fold_left
      (fun st i ->
        match Objects.Store.new_object st i.Odl.Types.i_name with
        | Ok (st, oid) -> (
            match i.Odl.Types.i_attrs with
            | a :: _ when a.attr_type = Odl.Types.D_int -> (
                match Objects.Store.set_attr st oid a.attr_name (Objects.Value.V_int oid) with
                | Ok st -> st
                | Error _ -> st)
            | _ -> st)
        | Error _ -> st)
      (Objects.Store.create schema) schema.s_interfaces
  in
  let custom =
    match
      Core.Apply.apply ~original:schema ~kind:Core.Concept.Wagon_wheel schema
        (Core.Modop.Delete_type_definition "T0")
    with
    | Ok (s, _) -> s
    | Error _ -> schema
  in
  Test.make
    ~name:(Printf.sprintf "migrate/%d" n)
    (Staged.stage (fun () -> ignore (Objects.Migrate.migrate store ~custom)))

let tests () =
  Test.make_grouped ~name:"swsd"
    (List.concat_map staged_for sizes
    @ List.concat_map ablations_for sizes
    @ List.concat_map index_checks_for sizes
    @ List.map migration_bench sizes)

(* Run a bechamel test tree and return (name, ns/run) rows, sorted. *)
let measure_rows tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> est
        | _ -> Float.nan
      in
      (name, ns) :: acc)
    results []
  |> List.sort compare

let print_rows title rows =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '-') title
    (String.make 78 '-');
  Printf.printf "%-32s %16s %14s\n" "benchmark" "ns/run" "us/run";
  List.iter
    (fun (name, ns) ->
      Printf.printf "%-32s %16.0f %14.2f\n" name ns (ns /. 1_000.))
    rows

let run_and_print () =
  print_rows "Performance characterization (ns/run, OLS on monotonic clock)"
    (measure_rows (tests ()))

(* P10: the durable journal on the real filesystem — appending one fsync'd
   record to a log already holding [n] records vs atomically rewriting all
   [n].  Append should stay flat as [n] grows; the rewrite pays O(n). *)
let journal_sizes = [ 10; 100; 1000 ]

let journal_benches_for ~dirs n =
  let io = Repository.Io.unix in
  let op =
    Core.Modop.Add_attribute ("T0", Odl.Types.D_string, Some 12, "bench_attr")
  in
  let entries =
    List.init n (fun _ -> Repository.Journal.Op (Core.Concept.Wagon_wheel, op))
  in
  let dir = Filename.temp_file "swsd_bench_journal" "" in
  Sys.remove dir;
  Repository.Io.mkdir_p io dir;
  dirs := dir :: !dirs;
  let log_path = Filename.concat dir "log.ops" in
  Repository.Journal.rewrite io log_path entries;
  [
    Test.make
      ~name:(Printf.sprintf "append/%d" n)
      (Staged.stage (fun () ->
           Repository.Journal.append io log_path
             (Repository.Journal.Op (Core.Concept.Wagon_wheel, op))));
    Test.make
      ~name:(Printf.sprintf "rewrite/%d" n)
      (Staged.stage (fun () -> Repository.Journal.rewrite io log_path entries));
  ]

(* P8 baseline: incremental vs full checking, recorded as JSON so later
   work can compare against a committed reference. *)
let run_index ~json_path () =
  let rows =
    measure_rows
      (Test.make_grouped ~name:"index" (List.concat_map index_checks_for sizes))
  in
  print_rows "P8: incremental vs full consistency check (ns/run)" rows;
  let strip name =
    (* "index/check-full/100" -> "check-full/100" *)
    match String.index_opt name '/' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let entry (name, ns) =
    Printf.sprintf "    { \"name\": \"%s\", \"ns_per_run\": %.1f }" (strip name)
      ns
  in
  let json =
    String.concat "\n"
      [
        "{";
        "  \"benchmark\": \"P8 incremental vs full consistency check\",";
        "  \"schema\": \"Schemas.Synth.default_params, sizes below\",";
        Printf.sprintf "  \"sizes\": [%s],"
          (String.concat ", " (List.map string_of_int sizes));
        "  \"unit\": \"ns/run\",";
        "  \"results\": [";
        String.concat ",\n" (List.map entry rows);
        "  ]";
        "}";
        "";
      ]
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote %s\n" json_path

(* P10 baseline: journal append vs whole-log rewrite, recorded as JSON so
   the O(1)-ish append per accepted operation stays an auditable claim. *)
let run_journal ~json_path () =
  let dirs = ref [] in
  let rows =
    measure_rows
      (Test.make_grouped ~name:"journal"
         (List.concat_map (journal_benches_for ~dirs) journal_sizes))
  in
  List.iter
    (fun d ->
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
      Sys.rmdir d)
    !dirs;
  print_rows "P10: journal append vs whole-log rewrite (ns/run)" rows;
  let strip name =
    match String.index_opt name '/' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let entry (name, ns) =
    Printf.sprintf "    { \"name\": \"%s\", \"ns_per_run\": %.1f }" (strip name)
      ns
  in
  let json =
    String.concat "\n"
      [
        "{";
        "  \"benchmark\": \"P10 journal append vs whole-log rewrite\",";
        "  \"setup\": \"one fsync'd append to an n-record log vs an atomic \
         rewrite of all n records, real filesystem\",";
        Printf.sprintf "  \"sizes\": [%s],"
          (String.concat ", " (List.map string_of_int journal_sizes));
        "  \"unit\": \"ns/run\",";
        "  \"results\": [";
        String.concat ",\n" (List.map entry rows);
        "  ]";
        "}";
        "";
      ]
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote %s\n" json_path
