(** Performance characterization (experiments P1-P5 of EXPERIMENTS.md).

    The paper reports no performance numbers — its evaluation is
    qualitative — so these benches characterize our implementation of its
    algorithms across synthetic shrink wrap schemas of growing size:

    - P1 decompose: full concept-schema decomposition
    - P2 apply: a representative operation applied under full constraint
      checking and propagation
    - P3 check: the complete consistency check
    - P4 parse: ODL text -> schema
    - P5 custom: custom schema generation + mapping derivation
    - P6 diff: operation-log inference between two schemas
    - P7 affinity: semantic affinity between two schemas
*)

open Bechamel
open Toolkit

let sizes = [ 10; 25; 50; 100 ]

let schema_of n = Schemas.Synth.generate (Schemas.Synth.default_params ~n_types:n)

let staged_for n =
  let schema = schema_of n in
  let text = Odl.Printer.schema_to_string schema in
  let session = Result.get_ok (Core.Session.create schema) in
  let op =
    Core.Modop.Add_attribute ("T0", Odl.Types.D_string, Some 12, "bench_attr")
  in
  [
    Test.make
      ~name:(Printf.sprintf "decompose/%d" n)
      (Staged.stage (fun () -> ignore (Core.Decompose.decompose schema)));
    Test.make
      ~name:(Printf.sprintf "apply/%d" n)
      (Staged.stage (fun () ->
           ignore
             (Core.Apply.apply ~original:schema ~kind:Core.Concept.Wagon_wheel
                schema op)));
    Test.make
      ~name:(Printf.sprintf "check/%d" n)
      (Staged.stage (fun () -> ignore (Odl.Validate.check schema)));
    Test.make
      ~name:(Printf.sprintf "parse/%d" n)
      (Staged.stage (fun () -> ignore (Odl.Parser.parse_schema text)));
    Test.make
      ~name:(Printf.sprintf "custom/%d" n)
      (Staged.stage (fun () ->
           ignore (Core.Session.custom_schema session);
           ignore (Core.Session.mapping session)));
    (let other =
       Schemas.Synth.generate
         { (Schemas.Synth.default_params ~n_types:n) with seed = 7 }
     in
     Test.make
       ~name:(Printf.sprintf "diff/%d" n)
       (Staged.stage (fun () ->
            ignore (Core.Diff.infer ~original:schema ~target:other))));
    (let other =
       Schemas.Synth.generate
         { (Schemas.Synth.default_params ~n_types:n) with seed = 7 }
     in
     Test.make
       ~name:(Printf.sprintf "affinity/%d" n)
       (Staged.stage (fun () ->
            ignore (Core.Affinity.semantic_affinity schema other))));
  ]

(* Ablations: the cost of the guarantees, measured by running the machinery
   with a guarantee-providing stage removed. *)
let ablations_for n =
  let schema = schema_of n in
  let op =
    Core.Modop.Add_attribute ("T0", Odl.Types.D_string, Some 12, "bench_attr")
  in
  [
    (* A1: apply without post-validation and propagation — the marginal cost
       of the validity-preservation guarantee is apply/N minus this *)
    Test.make
      ~name:(Printf.sprintf "ablate-primary-only/%d" n)
      (Staged.stage (fun () -> ignore (Core.Apply.primary ~original:schema schema op)));
    (* A2: the propagation fixpoint on an already-closed schema — the
       steady-state overhead of cascade repair *)
    Test.make
      ~name:(Printf.sprintf "ablate-repair-noop/%d" n)
      (Staged.stage (fun () -> ignore (Core.Propagate.repair schema)));
    (* A3: wagon wheels only vs the full decomposition *)
    Test.make
      ~name:(Printf.sprintf "ablate-wheels-only/%d" n)
      (Staged.stage (fun () -> ignore (Core.Decompose.wagon_wheels schema)));
  ]

(* P8: instance migration — a store of [3n] objects migrated through a
   customization that deletes one type *)
let migration_bench n =
  let schema = schema_of n in
  let store =
    (* one object per type, keyed, plus links along the instance chain *)
    List.fold_left
      (fun st i ->
        match Objects.Store.new_object st i.Odl.Types.i_name with
        | Ok (st, oid) -> (
            match i.Odl.Types.i_attrs with
            | a :: _ when a.attr_type = Odl.Types.D_int -> (
                match Objects.Store.set_attr st oid a.attr_name (Objects.Value.V_int oid) with
                | Ok st -> st
                | Error _ -> st)
            | _ -> st)
        | Error _ -> st)
      (Objects.Store.create schema) schema.s_interfaces
  in
  let custom =
    match
      Core.Apply.apply ~original:schema ~kind:Core.Concept.Wagon_wheel schema
        (Core.Modop.Delete_type_definition "T0")
    with
    | Ok (s, _) -> s
    | Error _ -> schema
  in
  Test.make
    ~name:(Printf.sprintf "migrate/%d" n)
    (Staged.stage (fun () -> ignore (Objects.Migrate.migrate store ~custom)))

let tests () =
  Test.make_grouped ~name:"swsd"
    (List.concat_map staged_for sizes
    @ List.concat_map ablations_for sizes
    @ List.map migration_bench sizes)

let run_and_print () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> est
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '-')
    "Performance characterization (ns/run, OLS on monotonic clock)"
    (String.make 78 '-');
  Printf.printf "%-32s %16s %14s\n" "benchmark" "ns/run" "us/run";
  List.iter
    (fun (name, ns) ->
      Printf.printf "%-32s %16.0f %14.2f\n" name ns (ns /. 1_000.))
    rows
