(* P15: multi-shard scaling behind the variant-hashing router.

   The claim under test: a worker process has exactly ONE commit pipeline
   — the group-commit flusher thread writes lane batches sequentially
   (P14) — so once distinct variants keep that pipeline busy, a single
   process is pinned at ~(lanes x fsync)/cycle however many clients it
   serves.  Sharding the service across N worker processes multiplies the
   commit pipelines: with variants spread over the shards, aggregate
   throughput scales with N.

   Topology per cell: a real-filesystem repository, a {!Shard_pool} of N
   [swsd serve] workers (N in [1; 2; 4]) with a 5 ms injected fsync
   (--fsync-delay-ms, the P13/P14 disk model), and an in-process
   {!Router} on a Unix socket.  8 client threads drive 8 distinct
   variants through the router in a 2:1 write:read mix (one connection,
   one in-flight op each — the protocol's limit).  Every cell, including
   N=1, runs the full router topology, so the comparison isolates shard
   count from routing overhead.

   Variants are assigned to clients round-robin over the shards (names
   are searched so client i's variant rendezvous-hashes to shard i mod
   N): the bench measures pipeline scaling under an even spread, not the
   hash's balance at tiny populations (the router suite pins that
   separately, over 1000 names).

   Reported per cell: aggregate req/s, writes/s, write p99, read p99.
   Regression gate (exit 1): 4-shard aggregate req/s must be >= 2.5x the
   1-shard cell (the paper-facing table claims ~Nx; the gate leaves CI
   headroom).

   Knobs: SWSD_SHARDS_SECS (seconds per cell, default 2.0),
   SWSD_SHARDS_FSYNC_MS (injected fsync delay, default 5). *)

module Io = Repository.Io
module Repo = Repository.Repo
module Protocol = Server.Protocol
module Router = Server.Router
module Shard_pool = Server.Shard_pool
module Client = Server.Client

let schema_text =
  "interface Person { attribute string name; attribute int age; };\n\
   interface Course { attribute string title; attribute string code; };"

let levels = [ 1; 2; 4 ]
let clients = 8
let min_speedup = 2.5

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( match float_of_string_opt s with Some f -> f | None -> default)
  | None -> default

let cell_secs () = env_float "SWSD_SHARDS_SECS" 2.0
let fsync_ms () = env_float "SWSD_SHARDS_FSYNC_MS" 5.0

(* the daemon next to this benchmark in _build *)
let swsd_exe () =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/swsd.exe"

let tmp_dir () =
  let f = Filename.temp_file "swsd_shards" "" in
  Sys.remove f;
  f

let rec rm_rf p =
  if (try Sys.is_directory p with Sys_error _ -> false) then begin
    Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
    Sys.rmdir p
  end
  else if Sys.file_exists p then Sys.remove p

(* distinct names, client i's hashing to shard i mod N *)
let pick_variants ~shards =
  let used = Hashtbl.create 16 in
  List.init clients (fun i ->
      let target = i mod shards in
      let rec go j =
        let n = Printf.sprintf "v%d" j in
        if (not (Hashtbl.mem used n)) && Router.shard_of ~shards n = target
        then begin
          Hashtbl.add used n ();
          n
        end
        else go (j + 1)
      in
      go 0)

let write_line ~w k =
  if k land 1 = 0 then
    Printf.sprintf "apply add_attribute(Person, string, 8, w%d)" w
  else Printf.sprintf "apply delete_attribute(Person, w%d)" w

type lats = { mutable xs : float list; mutable n : int }

let lats () = { xs = []; n = 0 }

let observe l dt =
  l.xs <- dt :: l.xs;
  l.n <- l.n + 1

let p99_ms l =
  match l.xs with
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      a.(min (n - 1) (int_of_float (ceil (0.99 *. float_of_int n)) - 1))
      *. 1000.0

type cell = {
  shards : int;
  requests : int;
  req_per_s : float;
  writes_per_s : float;
  write_p99_ms : float;
  read_p99_ms : float;
}

let must c line =
  match Client.request c line with
  | Some lines when List.mem "!ok" lines -> ()
  | Some lines ->
      failwith (Printf.sprintf "%s: %s" line (String.concat " | " lines))
  | None -> failwith (line ^ ": router hung up")

let measure ~shards =
  let dir = tmp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let variants = pick_variants ~shards in
      (match Repo.init dir (Odl.Parser.parse_schema schema_text) with
      | Ok repo ->
          List.iter
            (fun v ->
              match Repo.create_variant repo v with
              | Ok _ -> ()
              | Error e -> failwith e)
            variants
      | Error e -> failwith e);
      let pool =
        Shard_pool.create
          ~worker_args:
            [ "--fsync-delay-ms"; Printf.sprintf "%g" (fsync_ms ()) ]
          ~exe:(swsd_exe ()) ~dir ~shards ()
      in
      (match Shard_pool.start pool with
      | Ok () -> ()
      | Error m ->
          Shard_pool.stop pool;
          failwith m);
      let listen = Protocol.Unix_path (Filename.concat dir "front.sock") in
      let router =
        match Router.create ~obs:Obs.noop ~listen pool with
        | Ok r -> r
        | Error m ->
            Shard_pool.stop pool;
            failwith m
      in
      let runner = Thread.create (fun () -> Router.run router) () in
      Fun.protect
        ~finally:(fun () ->
          Router.stop router;
          Thread.join runner;
          Shard_pool.stop pool)
        (fun () ->
          let secs = cell_secs () in
          let writes = Array.init clients (fun _ -> lats ())
          and reads = Array.init clients (fun _ -> lats ()) in
          let ready = Atomic.make 0 and go = Atomic.make false in
          let t_end = ref infinity in
          let threads =
            List.mapi
              (fun w variant ->
                Thread.create
                  (fun () ->
                    let c =
                      match Client.connect_to ~retry_for:10.0 listen with
                      | Ok c -> c
                      | Error m -> failwith m
                    in
                    ignore (Client.read_response c);
                    must c ("@open " ^ variant);
                    must c "focus ww:Person";
                    (* untimed warmup: prime the worker's session and lane,
                       leave the schema as found *)
                    must c (write_line ~w 0);
                    must c (write_line ~w 1);
                    must c "summary";
                    Atomic.incr ready;
                    while not (Atomic.get go) do
                      Thread.yield ()
                    done;
                    let k = ref 0 and wk = ref 0 in
                    (* 2:1 write:read, one op in flight; the add/delete
                       alternation tracks its own counter so the
                       interleaved reads never break its parity *)
                    while Unix.gettimeofday () < !t_end do
                      let line, l =
                        if !k mod 3 = 2 then ("summary", reads.(w))
                        else begin
                          let line = write_line ~w !wk in
                          incr wk;
                          (line, writes.(w))
                        end
                      in
                      let t0 = Unix.gettimeofday () in
                      must c line;
                      observe l (Unix.gettimeofday () -. t0);
                      incr k
                    done;
                    Client.close c)
                  ())
              variants
          in
          while Atomic.get ready < clients do
            Thread.yield ()
          done;
          t_end := Unix.gettimeofday () +. secs;
          Atomic.set go true;
          List.iter Thread.join threads;
          let all_w = lats () and all_r = lats () in
          Array.iter (fun l -> List.iter (observe all_w) l.xs) writes;
          Array.iter (fun l -> List.iter (observe all_r) l.xs) reads;
          let total = all_w.n + all_r.n in
          {
            shards;
            requests = total;
            req_per_s = float_of_int total /. secs;
            writes_per_s = float_of_int all_w.n /. secs;
            write_p99_ms = p99_ms all_w;
            read_p99_ms = p99_ms all_r;
          }))

let run ~json_path () =
  Printf.printf
    "P15: sharded service behind the router, %d clients, %d variants, 2:1 \
     write:read, %.0f ms injected fsync\n"
    clients clients (fsync_ms ());
  Printf.printf "  %-8s %10s %10s %15s %14s\n" "shards" "req/s" "writes/s"
    "write p99 (ms)" "read p99 (ms)";
  let cells =
    List.map
      (fun shards ->
        let c = measure ~shards in
        Printf.printf "  %-8d %10.0f %10.0f %15.3f %14.3f\n%!" c.shards
          c.req_per_s c.writes_per_s c.write_p99_ms c.read_p99_ms;
        c)
      levels
  in
  let rate n = (List.find (fun c -> c.shards = n) cells).req_per_s in
  let speedup n = if rate 1 > 0.0 then rate n /. rate 1 else 0.0 in
  let s2 = speedup 2 and s4 = speedup 4 in
  Printf.printf "\n  aggregate speedup over 1 shard: %.2fx at 2, %.2fx at 4\n"
    s2 s4;
  let failed = s4 < min_speedup in
  let entry c =
    Printf.sprintf
      "    { \"shards\": %d, \"requests\": %d, \"req_per_s\": %.1f, \
       \"writes_per_s\": %.1f, \"write_p99_ms\": %.3f, \"read_p99_ms\": \
       %.3f }"
      c.shards c.requests c.req_per_s c.writes_per_s c.write_p99_ms
      c.read_p99_ms
  in
  let json =
    String.concat "\n"
      [
        "{";
        "  \"benchmark\": \"P15 sharded service (variant-hashing router)\",";
        "  \"setup\": \"real-fs repo; N swsd workers with injected fsync \
         delay behind an in-process router on a unix socket; 8 clients on \
         8 variants spread round-robin over the shards, 2:1 write:read, \
         one op in flight per connection\",";
        Printf.sprintf "  \"seconds_per_cell\": %.2f," (cell_secs ());
        Printf.sprintf "  \"fsync_delay_ms\": %.1f," (fsync_ms ());
        Printf.sprintf "  \"clients\": %d," clients;
        Printf.sprintf "  \"speedup_2\": %.2f," s2;
        Printf.sprintf "  \"speedup_4\": %.2f," s4;
        Printf.sprintf
          "  \"scaling_gate\": { \"shards\": 4, \"speedup\": %.2f, \
           \"min_speedup\": %.1f, \"passed\": %b },"
          s4 min_speedup (not failed);
        "  \"results\": [";
        String.concat ",\n" (List.map entry cells);
        "  ]";
        "}";
        "";
      ]
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" json_path;
  if failed then begin
    Printf.printf
      "FAIL: 4-shard aggregate throughput is %.2fx the 1-shard cell (< \
       %.1fx)\n"
      s4 min_speedup;
    exit 1
  end
