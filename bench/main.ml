(* Benchmark harness: regenerates every table and figure of the paper from
   the implementation, then characterizes performance.

     dune exec bench/main.exe              everything
     dune exec bench/main.exe -- --tables  tables and figures only
     dune exec bench/main.exe -- --perf    performance benches only
     dune exec bench/main.exe -- --index   P8 only; writes BENCH_index.json
     dune exec bench/main.exe -- --journal P10 only; writes BENCH_journal.json
     dune exec bench/main.exe -- --server  P11 only; writes BENCH_server.json
     dune exec bench/main.exe -- --obs     P12 only; writes BENCH_obs.json
     dune exec bench/main.exe -- --reads   P13 only; writes BENCH_reads.json
     dune exec bench/main.exe -- --commits P14 only; writes BENCH_commits.json
     dune exec bench/main.exe -- --shards  P15 only; writes BENCH_shards.json
                                           (needs bin/swsd.exe built)
     dune exec bench/main.exe -- --repl    P16 only; writes BENCH_repl.json
                                           (needs bin/swsd.exe built)
     dune exec bench/main.exe -- --query   P17 only; writes BENCH_query.json
     dune exec bench/main.exe -- --merge   P18 only; writes BENCH_merge.json
*)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let tables = args = [] || List.mem "--tables" args in
  let perf = args = [] || List.mem "--perf" args in
  let index = List.mem "--index" args in
  let journal = List.mem "--journal" args in
  let server = List.mem "--server" args in
  let obs = List.mem "--obs" args in
  let reads = List.mem "--reads" args in
  let commits = List.mem "--commits" args in
  let shards = List.mem "--shards" args in
  let repl = List.mem "--repl" args in
  let query = List.mem "--query" args in
  let merge = List.mem "--merge" args in
  if tables then Tables.all ();
  if perf then Perf.run_and_print ();
  if index then Perf.run_index ~json_path:"BENCH_index.json" ();
  if journal then Perf.run_journal ~json_path:"BENCH_journal.json" ();
  if server then Server_bench.run ~json_path:"BENCH_server.json" ();
  if obs then Obs_bench.run ~json_path:"BENCH_obs.json" ();
  if reads then Reads_bench.run ~json_path:"BENCH_reads.json" ();
  if commits then Commits_bench.run ~json_path:"BENCH_commits.json" ();
  if shards then Shards_bench.run ~json_path:"BENCH_shards.json" ();
  if repl then Repl_bench.run ~json_path:"BENCH_repl.json" ();
  if query then Query_bench.run ~json_path:"BENCH_query.json" ();
  if merge then Merge_bench.run ~json_path:"BENCH_merge.json" ()
