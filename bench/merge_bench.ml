(* P18: op-log rebase cost vs branch-log length.

   The claim under test: merging a branch is priced by what the branch
   did, not by what the repository holds — {!Core.Oplog.rebase} replays
   only the ops past the fork point, each through the permission matrix
   and the incremental checker, so its cost should track a plain
   sequential apply of the same ops (the floor: what a designer would pay
   re-typing their branch onto the moved-ahead base by hand).  The
   classification bookkeeping — recorded-impact comparison, verdicts, the
   report — must stay a constant factor, not a second algorithm.

   Setup: a synthetic schema; the base moves ahead by a handful of type
   definitions after the fork; the branch applies n in {10, 100, 1000}
   attribute ops.  For each n: time the rebase, time the bare sequential
   apply of the same entries on the same base, and time a full
   server-side [@merge --dry-run] round trip (mem-fs service) — the
   latency a designer pays to ask "what would this merge do?".

   The run FAILS (exit 1) if the rebases in aggregate exceed 2x their
   sequential applies: at that point the classification machinery has
   stopped being bookkeeping and started being an algorithm of its own.
   (The gate is aggregate across the lengths, not per length: a rebase
   pays one O(schema) constant for the report's shrink-wrap mapping,
   which dwarfs a 10-op replay but vanishes by 1000 — per-n ratios are
   still reported for the curve.)

   Knobs: SWSD_MERGE_TYPES (schema size, default 200),
   SWSD_MERGE_REPS (repetitions per timing, default 5). *)

module Io = Repository.Io
module Repo = Repository.Repo
module Service = Server.Service
module Protocol = Server.Protocol
module Session = Core.Session
module Oplog = Core.Oplog

let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

let n_types () = env_int "SWSD_MERGE_TYPES" 200
let reps () = env_int "SWSD_MERGE_REPS" 5
let lens = [ 10; 100; 1000 ]

let session_of schema =
  match Session.create schema with
  | Ok s -> s
  | Error _ -> failwith "synth schema should be valid"

let apply session text =
  match
    Session.apply session ~kind:Core.Concept.Wagon_wheel
      (Core.Op_parser.parse text)
  with
  | Ok (s, _) -> s
  | Error e -> failwith (text ^ ": " ^ Core.Apply.error_to_string e)

let branch_op types k =
  Printf.sprintf "add_attribute(T%d, string, 8, m_%d)" ((k * 7919) mod types) k

let time_one ~reps f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e6

(* --- the server-side dry run ----------------------------------------------- *)

let config = { Service.default_config with Service.use_file_locks = false }

let must t c line =
  let r = Service.request t c line in
  match r.Protocol.status with
  | Protocol.Ok -> ()
  | _ -> failwith (Printf.sprintf "%s failed: %s" line (Protocol.to_string r))

(* A mem-fs service holding variant [v] plus a branch [w] that applied
   [n] ops since the fork; returns the mean [@merge --dry-run] latency. *)
let dry_run_us ~schema_text ~types ~n ~reps =
  let m = Io.mem_create () in
  let io = Io.locked (Io.mem_io m) in
  (match Repo.init ~io "/repo" (Odl.Parser.parse_schema schema_text) with
  | Ok repo -> (
      match Repo.create_variant repo "v" with
      | Ok _ -> ()
      | Error e -> failwith e)
  | Error e -> failwith e);
  let t =
    match Service.open_service ~config ~io "/repo" with
    | Ok t -> t
    | Error e -> failwith e
  in
  let c = Service.connect t in
  must t c "@open v";
  must t c "focus ww:T0";
  must t c "@close";
  must t c "@branch v w";
  must t c "@open w";
  must t c "focus ww:T0";
  for k = 1 to n do
    must t c ("apply " ^ branch_op types k)
  done;
  must t c "@close";
  must t c "@open v";
  must t c "focus ww:T0";
  must t c "apply add_type_definition(Basemovedahead)";
  must t c "@close";
  let us = time_one ~reps (fun () -> must t c "@merge w into v --dry-run") in
  ignore (Service.shutdown t);
  us

(* --- results ---------------------------------------------------------------- *)

type row = {
  n : int;
  rebase_us : float;
  sequential_us : float;
  dry_us : float;
}

let ratio r =
  if r.sequential_us > 0.0 then r.rebase_us /. r.sequential_us else 0.0

let run ~json_path () =
  let types = n_types () and reps = reps () in
  Printf.printf "P18: op-log rebase vs branch-log length, %d interfaces\n"
    types;
  let schema = Schemas.Synth.(generate (default_params ~n_types:types)) in
  let schema_text = Fmt.str "%a" Odl.Printer.pp_schema schema in
  let root = session_of schema in
  (* the base moves ahead after the fork: fresh type definitions the
     generated branch ops can never touch *)
  let base =
    List.fold_left
      (fun s k -> apply s (Printf.sprintf "add_type_definition(Basemoved%d)" k))
      root [ 1; 2; 3; 4; 5 ]
  in
  Printf.printf "  %-6s %14s %14s %8s %14s\n" "n" "rebase (us)" "seq (us)"
    "ratio" "dry run (us)";
  let rows =
    List.map
      (fun n ->
        let branch =
          List.init n (fun k -> branch_op types (k + 1))
          |> List.fold_left apply root
        in
        let branch_ops = Oplog.branch_entries ~base ~branch in
        if List.length branch_ops <> n then
          failwith (Printf.sprintf "expected %d branch ops" n);
        let rebase_us =
          time_one ~reps (fun () ->
              let report = Oplog.rebase ~base ~branch_ops in
              if report.Oplog.r_conflict > 0 then
                failwith "bench histories must be conflict-free";
              report)
        in
        let sequential_us =
          time_one ~reps (fun () ->
              List.fold_left
                (fun s (e : Oplog.entry) ->
                  match Session.apply s ~kind:e.Oplog.e_kind e.e_op with
                  | Ok (s', _) -> s'
                  | Error e ->
                      failwith (Core.Apply.error_to_string e))
                base branch_ops)
        in
        let dry_us = dry_run_us ~schema_text ~types ~n ~reps in
        let row = { n; rebase_us; sequential_us; dry_us } in
        Printf.printf "  %-6d %14.1f %14.1f %7.2fx %14.1f\n%!" n rebase_us
          sequential_us (ratio row) dry_us;
        row)
      lens
  in
  let total which = List.fold_left (fun s r -> s +. which r) 0.0 rows in
  let rebase_total = total (fun r -> r.rebase_us)
  and sequential_total = total (fun r -> r.sequential_us) in
  let aggregate =
    if sequential_total > 0.0 then rebase_total /. sequential_total else 0.0
  in
  let passed = aggregate <= 2.0 in
  Printf.printf "\n  aggregate rebase/sequential ratio: %.2fx (ceiling 2x)\n"
    aggregate;
  let entry r =
    Printf.sprintf
      "    { \"branch_ops\": %d, \"rebase_us\": %.2f, \"sequential_us\": \
       %.2f, \"ratio\": %.3f, \"dry_run_us\": %.2f }"
      r.n r.rebase_us r.sequential_us (ratio r) r.dry_us
  in
  let json =
    String.concat "\n"
      [
        "{";
        "  \"benchmark\": \"P18 op-log rebase vs branch-log length\",";
        "  \"setup\": \"synthetic schema; base moved ahead by 5 type \
         definitions; branch applies n attribute ops; rebase vs bare \
         sequential apply of the same entries, plus a server-side @merge \
         --dry-run round trip over the in-memory fs\",";
        Printf.sprintf "  \"n_types\": %d," types;
        Printf.sprintf "  \"reps\": %d," reps;
        Printf.sprintf
          "  \"ratio_gate\": { \"aggregate_ratio\": %.3f, \"ceiling\": 2.0, \
           \"passed\": %b },"
          aggregate passed;
        "  \"results\": [";
        String.concat ",\n" (List.map entry rows);
        "  ]";
        "}";
        "";
      ]
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" json_path;
  if not passed then begin
    Printf.printf
      "FAIL: rebase is %.2fx its sequential apply — classification has \
       stopped being bookkeeping\n"
      aggregate;
    exit 1
  end
