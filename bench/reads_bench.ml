(* P13: lock-free read path under a 95/5 read/write mix.

   The claim under test: publishing each variant's immutable session
   through an atomic snapshot lets read-only requests scale past the
   writer instead of convoying behind it.  One variant, N connections
   ([1; 8; 32]): at N=1 a single connection interleaves the 95/5 mix
   (every 20th request is a mutation); at N>1 one dedicated connection
   writes continuously and the other N-1 read continuously.  Each cell
   runs for a fixed wall-clock window.

   The repository lives on the in-memory filesystem with an injected
   per-fsync delay (default 5 ms) modelling a real disk: writes are
   journalled and fsync'd before the ack, so the writer spends most of
   its time stalled in "I/O" — exactly the window in which snapshot
   readers should keep running.  Every cell is measured twice: with the
   lock-free read path (the default) and with [lockfree_reads = false],
   which forces every read through the per-variant writer lock (the
   pre-snapshot behavior).

   Reported per cell: reads/s, read p99, writes/s, write p99.  The run
   FAILS (exit 1) if the lock-free read p99 at one connection regresses
   beyond 1.5x the locked baseline: a single interleaved client gains
   nothing from snapshots, so any slowdown there is pure read-path
   overhead.

   Knobs: SWSD_READS_SECS (seconds per cell, default 2.0),
   SWSD_READS_FSYNC_MS (injected fsync delay, default 5). *)

module Io = Repository.Io
module Repo = Repository.Repo
module Service = Server.Service
module Protocol = Server.Protocol

let schema_text =
  "interface Person { attribute string name; attribute int age; };\n\
   interface Course { attribute string title; attribute string code; };"

let levels = [ 1; 8; 32 ]

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( match float_of_string_opt s with Some f -> f | None -> default)
  | None -> default

let cell_secs () = env_float "SWSD_READS_SECS" 2.0
let fsync_delay () = env_float "SWSD_READS_FSYNC_MS" 5.0 /. 1000.0

let config ~lockfree =
  {
    Service.default_config with
    Service.use_file_locks = false;
    lockfree_reads = lockfree;
    (* the locked baseline queues every read behind the writer: give the
       queue room for all 32 connections and don't shed on latency *)
    max_waiters = 64;
    request_deadline = 30.0;
  }

(* A one-variant mem-fs service whose fsyncs stall like a disk's.  The
   delay wraps *outside* the serializing [Io.locked] layer, so it blocks
   only the fsyncing thread (as a real fsync would), not all I/O. *)
let fresh_service ~lockfree =
  let m = Io.mem_create () in
  let io = Io.locked (Io.mem_io m) in
  (match Repo.init ~io "/repo" (Odl.Parser.parse_schema schema_text) with
  | Ok repo -> (
      match Repo.create_variant repo "v" with
      | Ok _ -> ()
      | Error e -> failwith e)
  | Error e -> failwith e);
  let d = fsync_delay () in
  let io =
    { io with Io.fsync = (fun p -> Thread.delay d; io.Io.fsync p) }
  in
  match Service.open_service ~config:(config ~lockfree) ~io "/repo" with
  | Ok t -> t
  | Error e -> failwith e

let must t c line =
  let r = Service.request t c line in
  match r.Protocol.status with
  | Protocol.Ok -> ()
  | _ -> failwith (Printf.sprintf "%s failed: %s" line (Protocol.to_string r))

(* Alternating apply/undo keeps the schema the same size however long the
   cell runs, so read cost doesn't drift with the clock. *)
let write_line k =
  if k land 1 = 0 then
    Printf.sprintf "apply add_attribute(Person, string, 8, w_%d)" k
  else "undo"

let read_line = "summary"

type lats = { mutable xs : float list; mutable n : int }

let lats () = { xs = []; n = 0 }

let observe l dt =
  l.xs <- dt :: l.xs;
  l.n <- l.n + 1

let timed t c line l =
  let t0 = Unix.gettimeofday () in
  must t c line;
  observe l (Unix.gettimeofday () -. t0)

let p99_ms l =
  match l.xs with
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      a.(min (n - 1) (int_of_float (ceil (0.99 *. float_of_int n)) - 1))
      *. 1000.0

type cell = {
  conns : int;
  lockfree : bool;
  reads : int;
  reads_per_s : float;
  read_p99_ms : float;
  writes_per_s : float;
  write_p99_ms : float;
}

let measure ~conns ~lockfree =
  let t = fresh_service ~lockfree in
  let secs = cell_secs () in
  let reads = lats () and writes = lats () in
  (if conns = 1 then begin
     (* one connection, 95/5 interleaved *)
     let c = Service.connect t in
     must t c "@open v";
     must t c "focus ww:Person";
     let t_end = Unix.gettimeofday () +. secs in
     let k = ref 0 and i = ref 0 in
     while Unix.gettimeofday () < t_end do
       incr i;
       if !i mod 20 = 0 then begin
         timed t c (write_line !k) writes;
         incr k
       end
       else timed t c read_line reads
     done;
     Service.disconnect t c
   end
   else begin
     (* One dedicated writer, the rest read continuously.  Everyone
        attaches before the clock starts (a continuously-writing
        connection would starve late attachers of the writer lock), and
        readers pause ~0.2 ms between requests: real clients sit behind
        sockets and parse responses, but on one core an in-process spin
        loop would instead hog the runtime lock for whole scheduler
        ticks and starve the writer of CPU, polluting its p99 with
        artifacts of the harness rather than the service. *)
     let reader_lats = Array.init (conns - 1) (fun _ -> lats ()) in
     let ready = Atomic.make 0 and go = Atomic.make false in
     let t_end = ref infinity in
     let wait_go () =
       Atomic.incr ready;
       while not (Atomic.get go) do
         Thread.yield ()
       done
     in
     let writer =
       Thread.create
         (fun () ->
           let c = Service.connect t in
           must t c "@open v";
           must t c "focus ww:Person";
           wait_go ();
           let k = ref 0 in
           while Unix.gettimeofday () < !t_end do
             timed t c (write_line !k) writes;
             incr k;
             Thread.yield ()
           done;
           Service.disconnect t c)
         ()
     in
     let rs =
       Array.mapi
         (fun ri l ->
           Thread.create
             (fun () ->
               let c = Service.connect t in
               must t c (if ri land 1 = 0 then "@open v readonly" else "@open v");
               wait_go ();
               while Unix.gettimeofday () < !t_end do
                 timed t c read_line l;
                 Thread.delay 0.0002
               done;
               Service.disconnect t c)
             ())
         reader_lats
     in
     while Atomic.get ready < conns do
       Thread.yield ()
     done;
     t_end := Unix.gettimeofday () +. secs;
     Atomic.set go true;
     Thread.join writer;
     Array.iter Thread.join rs;
     Array.iter (fun l -> List.iter (observe reads) l.xs) reader_lats
   end);
  ignore (Service.shutdown t);
  {
    conns;
    lockfree;
    reads = reads.n;
    reads_per_s = float_of_int reads.n /. secs;
    read_p99_ms = p99_ms reads;
    writes_per_s = float_of_int writes.n /. secs;
    write_p99_ms = p99_ms writes;
  }

let run ~json_path () =
  Printf.printf
    "P13: lock-free reads, 95/5 mix, one variant, %.0f ms injected fsync\n"
    (fsync_delay () *. 1000.0);
  Printf.printf "  %-6s %-9s %12s %14s %12s %15s\n" "conns" "mode" "reads/s"
    "read p99 (ms)" "writes/s" "write p99 (ms)";
  let cells =
    List.concat_map
      (fun conns ->
        List.map
          (fun lockfree ->
            let c = measure ~conns ~lockfree in
            Printf.printf "  %-6d %-9s %12.0f %14.3f %12.0f %15.3f\n%!"
              c.conns
              (if c.lockfree then "lockfree" else "locked")
              c.reads_per_s c.read_p99_ms c.writes_per_s c.write_p99_ms;
            c)
          [ true; false ])
      levels
  in
  let find ~conns ~lockfree =
    List.find (fun c -> c.conns = conns && c.lockfree = lockfree) cells
  in
  let lf1 = find ~conns:1 ~lockfree:true
  and lk1 = find ~conns:1 ~lockfree:false
  and lf32 = find ~conns:32 ~lockfree:true in
  let scaling =
    if lf1.reads_per_s > 0.0 then lf32.reads_per_s /. lf1.reads_per_s else 0.0
  in
  Printf.printf "\n  read scaling, 32 conns vs 1 (lockfree): %.2fx\n" scaling;
  (* regression gate: at one connection the snapshot path can't win
     anything, so it must not cost anything either *)
  let budget = lk1.read_p99_ms *. 1.5 in
  let regressed = lk1.read_p99_ms > 0.0 && lf1.read_p99_ms > budget in
  let entry c =
    Printf.sprintf
      "    { \"conns\": %d, \"mode\": \"%s\", \"reads\": %d, \
       \"reads_per_s\": %.1f, \"read_p99_ms\": %.3f, \"writes_per_s\": \
       %.1f, \"write_p99_ms\": %.3f }"
      c.conns
      (if c.lockfree then "lockfree" else "locked")
      c.reads c.reads_per_s c.read_p99_ms c.writes_per_s c.write_p99_ms
  in
  let json =
    String.concat "\n"
      [
        "{";
        "  \"benchmark\": \"P13 lock-free read path (95/5 mix)\",";
        "  \"setup\": \"one variant, mem fs with injected fsync delay; \
         N=1 interleaves 95/5 on one connection, N>1 is one continuous \
         writer plus N-1 readers; lockfree vs forced-locked reads\",";
        Printf.sprintf "  \"seconds_per_cell\": %.2f," (cell_secs ());
        Printf.sprintf "  \"fsync_delay_ms\": %.1f,"
          (fsync_delay () *. 1000.0);
        Printf.sprintf "  \"read_scaling_32_vs_1\": %.2f," scaling;
        Printf.sprintf "  \"single_conn_p99_gate\": { \"lockfree_ms\": \
                        %.3f, \"locked_ms\": %.3f, \"budget_ms\": %.3f, \
                        \"passed\": %b },"
          lf1.read_p99_ms lk1.read_p99_ms budget (not regressed);
        "  \"results\": [";
        String.concat ",\n" (List.map entry cells);
        "  ]";
        "}";
        "";
      ]
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" json_path;
  if regressed then begin
    Printf.printf
      "FAIL: lock-free read p99 at 1 connection (%.3f ms) exceeds 1.5x the \
       locked baseline (%.3f ms)\n"
      lf1.read_p99_ms lk1.read_p99_ms;
    exit 1
  end
